"""Legacy setup shim.

``pip install -e .`` requires the ``wheel`` package for PEP 660 editable
builds; fully offline environments that lack it can fall back to::

    python setup.py develop

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
