#!/usr/bin/env python3
"""Run the kernel benchmarks and write machine-readable results.

Drives ``benchmarks/bench_kernels.py`` (the hot-kernel suite, including
the engine-parametrized epoch benchmarks and the phase-attribution
benchmark) through pytest-benchmark, then
condenses the raw report into ``BENCH_kernels.json`` — one stable
record per benchmark with the timing stats a trend dashboard needs.
Each run also appends a timestamped record to ``BENCH_history.json``
(kept in-repo), so the repository itself carries the performance
trajectory — **including failed runs**, which append a record marked
``"status": "failed"`` so a gap in the trajectory is visible instead of
silent.  Unless ``--no-profile`` is given, each record additionally
carries deterministic cost data from one small in-process profiled run
(work counters, per-phase seconds and the hottest kernel spans — see
``repro.obs.perf``), so the history can attribute a wall-clock trend to
an algorithmic change.  ``--check`` compares the fresh run against the
previous successful history record and fails when any kernel's median
slowed by more than the threshold (default 20%).  CI uploads both
files as artifacts, so every merge leaves a point on the trajectory.

Run:  python scripts/run_benchmarks.py [--out BENCH_kernels.json]
                                       [--history BENCH_history.json]
                                       [--check] [--threshold 0.20]
                                       [--no-profile]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_TARGET = "benchmarks/bench_kernels.py"


def run_pytest_benchmark(raw_path: pathlib.Path, pytest_args: list[str]) -> int:
    """Run the kernel suite with ``--benchmark-json``; returns exit code."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        BENCH_TARGET,
        "-q",
        "--benchmark-only",
        f"--benchmark-json={raw_path}",
        *pytest_args,
    ]
    print("$", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def machine_fingerprint() -> dict:
    """CPU model + core count + python version for this machine.

    Stamped into every history record so ``--check`` can tell whether
    the previous record came from comparable hardware: wall-clock
    medians from a different CPU are not a regression signal, so across
    differing fingerprints the check warns instead of failing.
    """
    cpu = platform.processor() or platform.machine()
    try:
        # platform.processor() is often empty on Linux; /proc/cpuinfo
        # carries the human-readable model name.
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "cpu_model": cpu,
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
    }


def condense(raw: dict) -> dict:
    """The subset of pytest-benchmark's report worth keeping per commit."""
    machine = raw.get("machine_info", {})
    benchmarks = []
    for bench in raw.get("benchmarks", ()):
        stats = bench.get("stats", {})
        params = bench.get("params") or {}
        benchmarks.append(
            {
                "name": bench.get("name"),
                "group": bench.get("group"),
                # Engine-parametrized benchmarks keep the engine in both
                # the name (``test_full_epoch_step[columnar]``) and this
                # field, so ``--check`` — which matches records by name —
                # always compares an engine against itself, and dashboards
                # can split trajectories per engine without parsing names.
                "engine": params.get("engine", "scalar"),
                "rounds": stats.get("rounds"),
                "iterations": stats.get("iterations"),
                "mean_s": stats.get("mean"),
                "stddev_s": stats.get("stddev"),
                "median_s": stats.get("median"),
                "min_s": stats.get("min"),
                "max_s": stats.get("max"),
                "ops": stats.get("ops"),
            }
        )
    benchmarks.sort(key=lambda b: b["name"] or "")
    return {
        "suite": BENCH_TARGET,
        "datetime": raw.get("datetime"),
        "machine": {
            "node": machine.get("node"),
            "processor": machine.get("processor"),
            "machine": machine.get("machine"),
            "python_version": machine.get("python_version"),
        },
        "machine_fingerprint": machine_fingerprint(),
        "benchmarks": benchmarks,
    }


def perf_attribution(epochs: int = 30, seed: int = 42) -> dict | None:
    """Deterministic cost data from one small in-process profiled run.

    Work counters are bit-identical across machines for a given seed,
    so a history record carrying them can say whether a wall-clock
    trend is an algorithmic change (counters moved too) or a machine
    difference (counters identical).  Failures here never fail the
    benchmark run — the attribution is an annotation, not a gate.
    """
    try:
        src = str(REPO_ROOT / "src")
        if src not in sys.path:
            sys.path.insert(0, src)
        from repro.config import SimulationConfig
        from repro.experiments.scenarios import random_query_scenario
        from repro.obs.perf import profile_scenario

        scenario = random_query_scenario(SimulationConfig(seed=seed), epochs=epochs)
        profile = profile_scenario("rfh", scenario, allocations=False)
        return {
            "policy": "rfh",
            "scenario": scenario.name,
            "seed": seed,
            "epochs": epochs,
            "work_counters": profile.counters,
            "phase_s": {
                name: stats.get("total") for name, stats in profile.phases.items()
            },
            "hottest": [
                {
                    "stack": ";".join(node["stack"]),
                    "self_s": node["self_s"],
                    "count": node["count"],
                }
                for node in profile.hottest(5)
            ],
        }
    except Exception as exc:  # noqa: BLE001 - annotation only, never a gate
        print(f"warning: perf attribution skipped: {exc}", file=sys.stderr)
        return None


def load_history(path: pathlib.Path) -> list[dict]:
    """The history file is a JSON list of condensed records, oldest
    first; a missing or unreadable file is an empty history."""
    if not path.exists():
        return []
    try:
        history = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"warning: ignoring unreadable {path}: {exc}", file=sys.stderr)
        return []
    return history if isinstance(history, list) else []


def check_regressions(
    previous: dict, current: dict, threshold: float
) -> list[tuple[str, float, float, float]]:
    """Kernels whose median slowed by more than ``threshold`` vs the
    previous record, as ``(name, prev_s, cur_s, ratio)`` rows.

    Median, not mean — a single noisy outlier round must not fail CI.
    Kernels present in only one record are skipped (suite changed).
    """
    prev_by_name = {
        b["name"]: b for b in previous.get("benchmarks", ()) if b.get("median_s")
    }
    regressions = []
    for bench in current.get("benchmarks", ()):
        prev = prev_by_name.get(bench["name"])
        cur_median = bench.get("median_s")
        if prev is None or not cur_median:
            continue
        ratio = cur_median / prev["median_s"]
        if ratio > 1.0 + threshold:
            regressions.append((bench["name"], prev["median_s"], cur_median, ratio))
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_kernels.json",
        help="condensed output path (default: BENCH_kernels.json)",
    )
    parser.add_argument(
        "--history",
        default="BENCH_history.json",
        help="append the condensed record to this JSON list "
        "(default: BENCH_history.json; empty string disables)",
    )
    parser.add_argument(
        "--history-limit",
        type=int,
        default=200,
        help="keep at most this many history records (default 200)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when any kernel's median slowed by more "
        "than --threshold vs the previous history record",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="--check regression threshold as a fraction (default 0.20)",
    )
    parser.add_argument(
        "--no-profile",
        action="store_true",
        help="skip the in-process perf-attribution run (work counters "
        "and phase attribution attached to each history record)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = pathlib.Path(tmp) / "raw_benchmark.json"
        code = run_pytest_benchmark(raw_path, args.pytest_args)
        raw = {}
        if raw_path.exists():
            try:
                raw = json.loads(raw_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(f"warning: unreadable raw report: {exc}", file=sys.stderr)
        if code != 0:
            print(f"benchmark run failed (exit {code})", file=sys.stderr)

    condensed = condense(raw)
    condensed["status"] = "ok" if code == 0 else "failed"
    if code != 0:
        condensed["exit_code"] = code
    if not args.no_profile:
        attribution = perf_attribution()
        if attribution is not None:
            condensed["perf"] = attribution

    out = pathlib.Path(args.out)
    out.write_text(json.dumps(condensed, indent=1) + "\n")
    print(f"wrote {out} ({len(condensed['benchmarks'])} benchmarks)")
    for bench in condensed["benchmarks"]:
        mean_ms = (bench["mean_s"] or 0.0) * 1e3
        print(f"  {bench['name']:<44} mean {mean_ms:9.3f} ms")

    regressions = []
    cross_machine = False
    if args.history:
        history_path = pathlib.Path(args.history)
        history = load_history(history_path)
        # A usable comparison point is a *successful* record with
        # benchmark rows; a fresh clone (empty/short/placeholder
        # history) or a string of failed runs must not gate.
        comparable = [
            record
            for record in history
            if isinstance(record, dict)
            and record.get("benchmarks")
            and record.get("status", "ok") == "ok"
        ]
        if args.check and code == 0:
            if comparable:
                previous = comparable[-1]
                regressions = check_regressions(
                    previous, condensed, args.threshold
                )
                # Timing medians only gate against the same hardware:
                # a record without a fingerprint (pre-stamping history)
                # or with a different one is advisory, not a failure.
                cross_machine = (
                    previous.get("machine_fingerprint")
                    != condensed["machine_fingerprint"]
                )
            else:
                print(
                    "note: --check skipped, no prior record in "
                    f"{history_path} to compare against (fresh clone?); "
                    "this run seeds the history"
                )
        # Every run leaves a record — failed runs included, so a hole
        # in the trajectory is a visible "failed" entry, never silence.
        history.append(condensed)
        history = history[-max(1, args.history_limit):]
        history_path.write_text(json.dumps(history, indent=1) + "\n")
        print(f"appended to {history_path} ({len(history)} records)")
    elif args.check:
        print("--check needs --history; nothing to compare against", file=sys.stderr)

    if code != 0:
        return code
    if regressions:
        verb = "WARNING" if cross_machine else "REGRESSED"
        print(
            f"\n{verb}: {len(regressions)} kernel(s) slowed by more "
            f"than {args.threshold:.0%} vs the previous record:",
            file=sys.stderr,
        )
        for name, prev_s, cur_s, ratio in regressions:
            print(
                f"  {name:<44} {prev_s * 1e3:9.3f} ms -> {cur_s * 1e3:9.3f} ms "
                f"({ratio - 1.0:+.1%})",
                file=sys.stderr,
            )
        if cross_machine:
            print(
                "note: the previous record came from a different machine "
                "fingerprint (CPU model / core count / python version); "
                "treating the slowdown as a warning, not a failure",
                file=sys.stderr,
            )
            return 0
        return 1
    if args.check:
        print("check: no kernel regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
