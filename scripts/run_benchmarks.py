#!/usr/bin/env python3
"""Run the kernel benchmarks and write machine-readable results.

Drives ``benchmarks/bench_kernels.py`` (the hot-kernel suite, including
the phase-attribution benchmark) through pytest-benchmark, then
condenses the raw report into ``BENCH_kernels.json`` — one stable
record per benchmark with the timing stats a trend dashboard needs.
CI uploads the file as an artifact, so every merge leaves a point on
the performance trajectory.

Run:  python scripts/run_benchmarks.py [--out BENCH_kernels.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_TARGET = "benchmarks/bench_kernels.py"


def run_pytest_benchmark(raw_path: pathlib.Path, pytest_args: list[str]) -> int:
    """Run the kernel suite with ``--benchmark-json``; returns exit code."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        BENCH_TARGET,
        "-q",
        "--benchmark-only",
        f"--benchmark-json={raw_path}",
        *pytest_args,
    ]
    print("$", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def condense(raw: dict) -> dict:
    """The subset of pytest-benchmark's report worth keeping per commit."""
    machine = raw.get("machine_info", {})
    benchmarks = []
    for bench in raw.get("benchmarks", ()):
        stats = bench.get("stats", {})
        benchmarks.append(
            {
                "name": bench.get("name"),
                "group": bench.get("group"),
                "rounds": stats.get("rounds"),
                "iterations": stats.get("iterations"),
                "mean_s": stats.get("mean"),
                "stddev_s": stats.get("stddev"),
                "median_s": stats.get("median"),
                "min_s": stats.get("min"),
                "max_s": stats.get("max"),
                "ops": stats.get("ops"),
            }
        )
    benchmarks.sort(key=lambda b: b["name"] or "")
    return {
        "suite": BENCH_TARGET,
        "datetime": raw.get("datetime"),
        "machine": {
            "node": machine.get("node"),
            "processor": machine.get("processor"),
            "machine": machine.get("machine"),
            "python_version": machine.get("python_version"),
        },
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_kernels.json",
        help="condensed output path (default: BENCH_kernels.json)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = pathlib.Path(tmp) / "raw_benchmark.json"
        code = run_pytest_benchmark(raw_path, args.pytest_args)
        if code != 0:
            print(f"benchmark run failed (exit {code})", file=sys.stderr)
            return code
        raw = json.loads(raw_path.read_text())

    condensed = condense(raw)
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(condensed, indent=1) + "\n")
    print(f"wrote {out} ({len(condensed['benchmarks'])} benchmarks)")
    for bench in condensed["benchmarks"]:
        mean_ms = (bench["mean_s"] or 0.0) * 1e3
        print(f"  {bench['name']:<44} mean {mean_ms:9.3f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
