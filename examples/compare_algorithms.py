#!/usr/bin/env python3
"""Full four-algorithm comparison under the random query setting.

One recorded trace, four simulations, and a digest of every steady-state
metric the paper plots in Figs. 3–9(a).  The orderings to look for:

* utilization:      rfh > request > owner > random           (Fig. 3a)
* replica count:    random > owner > rfh > request           (Fig. 4a)
* replication cost: random worst                             (Fig. 5a)
* migrations:       request ≫ rfh;  owner = random = 0       (Fig. 6a)
* load imbalance:   rfh best                                 (Fig. 8a)
* path length:      owner longest                            (Fig. 9a)

Run:  python examples/compare_algorithms.py
"""

from repro import SimulationConfig
from repro.experiments import compare_policies, random_query_scenario

EPOCHS = 250
POLICIES = ("rfh", "request", "owner", "random")


def main() -> None:
    config = SimulationConfig(seed=42)
    scenario = random_query_scenario(config, epochs=EPOCHS)
    print(
        f"Replaying one {EPOCHS}-epoch random-query trace "
        f"({scenario.trace.total_queries()} queries) through 4 algorithms..."
    )
    cmp = compare_policies(scenario, policies=POLICIES)

    columns = (
        ("utilization", "util", "{:.3f}"),
        ("total_replicas", "replicas", "{:.0f}"),
        ("path_length", "hops", "{:.2f}"),
        ("load_imbalance", "imbalance", "{:.2f}"),
        ("unserved", "blocked/ep", "{:.1f}"),
    )
    header = f"{'policy':>9} | " + " ".join(f"{label:>10}" for _, label, _ in columns)
    header += f" {'repl.cost':>10} {'migrations':>10}"
    print("\n" + header)
    print("-" * len(header))
    for policy in POLICIES:
        res = cmp[policy]
        cells = " ".join(
            f"{fmt.format(res.steady(name)):>10}" for name, _, fmt in columns
        )
        print(
            f"{policy:>9} | {cells} "
            f"{res.series('replication_cost').sum():>10.1f} "
            f"{res.series('migration_count').sum():>10.0f}"
        )

    print("\nOrderings (steady state):")
    print("  utilization :", " > ".join(cmp.ranking("utilization")))
    print("  replicas    :", " > ".join(cmp.ranking("total_replicas")))
    print("  imbalance   :", " < ".join(reversed(cmp.ranking("load_imbalance"))))
    print("  path length :", " > ".join(cmp.ranking("path_length")))


if __name__ == "__main__":
    main()
