#!/usr/bin/env python3
"""Consistency maintenance under RFH — the paper's future work, explored.

Section V: "we ... plan to focus on the research of consistency
maintenance."  This study runs RFH with the optional consistency tracker
and asks: how stale do replicas get as the write ratio grows, and what
does keeping them fresh cost under lazy anti-entropy (fanout-limited)
versus eager propagation?

Run:  python examples/consistency_study.py
"""

from repro import Simulation, SimulationConfig
from repro.consistency import ConsistencyConfig

EPOCHS = 200
WRITE_RATIOS = (0.05, 0.2, 0.5)
FANOUTS = (1, 2, None)  # None = eager


def run(write_ratio: float, fanout: int | None) -> dict[str, float]:
    sim = Simulation(
        SimulationConfig(seed=42),
        policy="rfh",
        consistency=ConsistencyConfig(write_ratio=write_ratio, fanout=fanout),
    )
    metrics = sim.run(EPOCHS)
    tail = 40
    return {
        "staleness": metrics.series("mean_staleness").tail_mean(tail),
        "stale_reads": metrics.series("stale_read_fraction").tail_mean(tail),
        "transfers": metrics.series("propagation_transfers").tail_mean(tail),
        "cost": metrics.array("propagation_cost").sum(),
    }


def main() -> None:
    print("RFH + consistency tracker: staleness vs propagation effort\n")
    print(
        f"{'writes/query':>12} {'fanout':>7} | {'mean lag':>9} "
        f"{'stale reads':>11} {'pushes/ep':>10} {'total cost':>11}"
    )
    print("-" * 68)
    for ratio in WRITE_RATIOS:
        for fanout in FANOUTS:
            row = run(ratio, fanout)
            label = "eager" if fanout is None else str(fanout)
            print(
                f"{ratio:>12.2f} {label:>7} | {row['staleness']:>9.2f} "
                f"{row['stale_reads']:>11.3f} {row['transfers']:>10.1f} "
                f"{row['cost']:>11.1f}"
            )
        print()
    print(
        "Reading the table: lazy anti-entropy (fanout 1-2) caps propagation"
        " traffic but lets version lag grow with the write rate; eager"
        " propagation holds stale reads near zero at proportionally higher"
        " push cost.  Placement dynamics are identical in every row — the"
        " tracker is a pure observer, so these numbers isolate the"
        " consistency policy."
    )


if __name__ == "__main__":
    main()
