#!/usr/bin/env python3
"""Using the simulator as a capacity-planning tool.

A question a storage operator actually asks: *how does the replica
footprint and the blocked-query rate grow as the query load scales?*
We sweep the Poisson arrival rate λ from half to triple the paper's
default and let RFH size the system, reporting the resources it settles
on — the "resilient" part of RFH is exactly that this sizing is
automatic.

Run:  python examples/capacity_planning.py
"""

from repro import Simulation, SimulationConfig, WorkloadParameters

EPOCHS = 200
RATES = (150.0, 300.0, 600.0, 900.0)


def run_at_rate(lam: float) -> dict[str, float]:
    config = SimulationConfig(
        seed=42,
        workload=WorkloadParameters(queries_per_epoch_mean=lam),
    )
    sim = Simulation(config, policy="rfh")
    metrics = sim.run(EPOCHS)
    tail = 30
    storage = sum(s.storage_used_mb for s in sim.cluster.servers)
    return {
        "replicas": metrics.series("total_replicas").last(),
        "per_partition": metrics.series("avg_replicas").last(),
        "utilization": metrics.series("utilization").tail_mean(tail),
        "blocked": metrics.series("unserved").tail_mean(tail),
        "blocked_pct": 100.0
        * metrics.array("unserved")[-tail:].sum()
        / max(1.0, metrics.array("queries")[-tail:].sum()),
        "storage_mb": storage,
    }


def main() -> None:
    print(f"RFH self-sizing across query rates ({EPOCHS} epochs each):\n")
    print(
        f"{'λ (q/epoch)':>11} | {'replicas':>8} {'per part':>8} {'util':>6} "
        f"{'blocked %':>9} {'storage MB':>10}"
    )
    print("-" * 62)
    for lam in RATES:
        row = run_at_rate(lam)
        print(
            f"{lam:>11.0f} | {row['replicas']:>8.0f} {row['per_partition']:>8.2f} "
            f"{row['utilization']:>6.3f} {row['blocked_pct']:>9.2f} "
            f"{row['storage_mb']:>10.1f}"
        )
    print(
        "\nThe replica footprint tracks demand roughly linearly and the"
        " blocked fraction stays small until the highest rate, where the"
        " fleet's aggregate service capacity itself becomes the limit —"
        " capacity follows load, which is the resource-allocation argument"
        " of the paper's introduction."
    )


if __name__ == "__main__":
    main()
