#!/usr/bin/env python3
"""Quickstart: simulate RFH on the paper's default deployment.

Builds the 10-datacenter / 100-server world of Table I, runs the RFH
replication algorithm for 150 epochs of Poisson(300) queries, and prints
the headline metrics.  Everything is seeded — rerunning prints identical
numbers.

Run:  python examples/quickstart.py
"""

from repro import Simulation, SimulationConfig


def main() -> None:
    config = SimulationConfig(seed=42)
    sim = Simulation(config, policy="rfh")

    print("World:")
    print(f"  datacenters : {sim.cluster.num_datacenters}")
    print(f"  servers     : {sim.cluster.num_servers}")
    print(f"  partitions  : {sim.replicas.num_partitions}")
    print(f"  r_min       : {sim.rmin}  (availability floor, Eq. 14)")
    print()

    metrics = sim.run(epochs=150)

    tail = 30
    print("RFH after 150 epochs (steady state = last 30 epochs):")
    print(f"  replica utilization : {metrics.series('utilization').tail_mean(tail):.3f}")
    print(f"  total replicas      : {metrics.series('total_replicas').last():.0f}")
    print(f"  replicas/partition  : {metrics.series('avg_replicas').last():.2f}")
    print(f"  mean lookup hops    : {metrics.series('path_length').tail_mean(tail):.2f}")
    print(f"  blocked queries/ep  : {metrics.series('unserved').tail_mean(tail):.2f}")
    print(f"  load imbalance (CV) : {metrics.series('load_imbalance').tail_mean(tail):.2f}")
    print(f"  replication cost    : {metrics.array('replication_cost').sum():.1f}")
    print(f"  migrations          : {metrics.array('migration_count').sum():.0f}")
    print(f"  suicides            : {metrics.array('suicide_count').sum():.0f}")


if __name__ == "__main__":
    main()
