#!/usr/bin/env python3
"""The paper's headline scenario: a four-stage flash crowd.

80 % of queries come from near H/I/J (Asia) for the first quarter of the
run, then jump to A/B/C (US), then E/F/G, then spread out evenly
(Section III-A).  All four algorithms replay the *identical* query
trace; the table shows per-stage replica utilization — watch the
request-oriented algorithm collapse at the first shift while RFH dips
once and recovers.

Run:  python examples/flash_crowd.py
"""

import numpy as np

from repro import SimulationConfig
from repro.experiments import compare_policies, flash_crowd_scenario

EPOCHS = 400
POLICIES = ("rfh", "request", "owner", "random")


def stage_mean(series: np.ndarray, stage: int) -> float:
    """Mean over the settled back half of one flash-crowd stage."""
    length = EPOCHS // 4
    start = stage * length + length // 2
    return float(series[start : (stage + 1) * length].mean())


def main() -> None:
    config = SimulationConfig(seed=42)
    scenario = flash_crowd_scenario(config, epochs=EPOCHS)
    print(f"Replaying one {EPOCHS}-epoch flash-crowd trace through 4 algorithms...")
    comparison = compare_policies(scenario, policies=POLICIES)

    print("\nReplica utilization by stage (hot origins per stage):")
    print(f"{'policy':>9} | {'H/I/J':>7} {'A/B/C':>7} {'E/F/G':>7} {'uniform':>8}")
    print("-" * 46)
    for policy in POLICIES:
        util = comparison[policy].series("utilization")
        row = " ".join(f"{stage_mean(util, s):>7.3f}" for s in range(3))
        print(f"{policy:>9} | {row} {stage_mean(util, 3):>8.3f}")

    print("\nAdaptation cost over the whole run:")
    print(f"{'policy':>9} | {'replicas@end':>12} {'migrations':>11} {'migr cost':>10}")
    print("-" * 48)
    for policy in POLICIES:
        res = comparison[policy]
        print(
            f"{policy:>9} | {res.final('total_replicas'):>12.0f} "
            f"{res.series('migration_count').sum():>11.0f} "
            f"{res.series('migration_cost').sum():>10.1f}"
        )

    shift = EPOCHS // 4
    rfh_util = comparison["rfh"].series("utilization")
    dip = rfh_util[shift : shift + 15].mean()
    print(
        f"\nRFH at the first shift (epoch {shift}): utilization dips to "
        f"{dip:.3f} and recovers to {stage_mean(rfh_util, 1):.3f} within the stage"
        " — the paper's 'decreases only once ... adjusts very quickly'."
    )


if __name__ == "__main__":
    main()
