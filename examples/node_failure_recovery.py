#!/usr/bin/env python3
"""Fig. 10's resilience story: mass failure and self-healing.

RFH runs under the random query workload; at epoch 290 thirty random
servers die (taking their replicas with them).  The availability branch
of the decision tree rebuilds the floor and the load branch regrows
capacity — the replica count returns to its pre-failure level.

Run:  python examples/node_failure_recovery.py
"""

import numpy as np

from repro import SimulationConfig
from repro.experiments import failure_recovery_scenario, run_experiment

EPOCHS = 500
FAILURE_EPOCH = 290
FAILURES = 30


def sparkline(values: np.ndarray, width: int = 72) -> str:
    """Console sparkline of a series."""
    blocks = "▁▂▃▄▅▆▇█"
    bucket = max(1, len(values) // width)
    sampled = [values[i : i + bucket].mean() for i in range(0, len(values), bucket)]
    lo, hi = min(sampled), max(sampled)
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled)


def main() -> None:
    config = SimulationConfig(seed=42)
    scenario = failure_recovery_scenario(
        config, epochs=EPOCHS, failure_epoch=FAILURE_EPOCH, failure_count=FAILURES
    )
    print(f"Running RFH for {EPOCHS} epochs; {FAILURES} servers die at {FAILURE_EPOCH}...")
    result = run_experiment("rfh", scenario)

    replicas = result.series("total_replicas")
    alive = result.series("alive_servers")
    availability = result.series("mean_availability")

    print("\ntotal replicas over time:")
    print("  " + sparkline(replicas))
    print("alive servers over time:")
    print("  " + sparkline(alive))

    pre = replicas[FAILURE_EPOCH - 30 : FAILURE_EPOCH].mean()
    drop = replicas[FAILURE_EPOCH]
    final = replicas[-30:].mean()
    print(f"\n  replicas before failure : {pre:.0f}")
    print(f"  replicas at failure     : {drop:.0f}  ({pre - drop:.0f} copies lost)")
    print(f"  replicas at end         : {final:.0f}  ({final / pre:.0%} of pre-failure)")
    print(f"  min availability seen   : {availability.min():.4f}")
    lost = result.series("lost_partitions").sum()
    print(f"  cold-archive restores   : {lost:.0f} partitions lost every copy")


if __name__ == "__main__":
    main()
