"""Fig. 9 — lookup path length.

Paper shape: every curve drops sharply once replicas appear;
owner-oriented stays the longest (replicas hug the holder); RFH ends
shorter than owner in both settings.
"""

from repro.experiments import fig9_path_length

from conftest import assert_shape, report, run_once


def test_fig9_path_length(benchmark, paper_config):
    result = run_once(benchmark, fig9_path_length, paper_config)
    report(result)
    assert_shape(result)
