"""Fig. 6 — cumulative migration times.

Paper shape: request-oriented migrates by far the most (its replicas
chase the requesters), random never migrates, owner's condition never
fires without membership churn, RFH stays well below request.
"""

from repro.experiments import fig6_migration_times

from conftest import assert_shape, report, run_once


def test_fig6_migration_times(benchmark, paper_config):
    result = run_once(benchmark, fig6_migration_times, paper_config)
    report(result)
    assert_shape(result)
