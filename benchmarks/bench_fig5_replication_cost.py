"""Fig. 5 — cumulative replication cost (total and per replica).

Paper shape: random pays by far the most in both settings; RFH stays
below random, and request's per-replica cost inflates under flash crowd
(long-distance replication toward moving requesters).
"""

from repro.experiments import fig5_replication_cost

from conftest import assert_shape, report, run_once


def test_fig5_replication_cost(benchmark, paper_config):
    result = run_once(benchmark, fig5_replication_cost, paper_config)
    report(result)
    assert_shape(result)
