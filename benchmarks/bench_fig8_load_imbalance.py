"""Fig. 8 — load imbalance (normalised Eq. 26 over replicas).

Paper shape: RFH's lowest-blocking-probability placement gives the best
balance in both settings; the blind random placement the worst.  See
EXPERIMENTS.md for the normalisation note.
"""

from repro.experiments import fig8_load_imbalance

from conftest import assert_shape, report, run_once


def test_fig8_load_imbalance(benchmark, paper_config):
    result = run_once(benchmark, fig8_load_imbalance, paper_config)
    report(result)
    assert_shape(result)
