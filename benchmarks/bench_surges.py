"""Section II-F's two query-surge types, quantified.

The paper argues (but does not plot) how each algorithm copes with a
location shift (Tokyo -> Beijing) and a popularity shift (hot partition
cools, cold one heats).  These benches regenerate both and assert the
claims.
"""

from repro.experiments.surges import location_shift_surge, popularity_shift_surge

from conftest import run_once


def test_location_shift_surge(benchmark, paper_config):
    result = run_once(benchmark, location_shift_surge, paper_config)
    print("\n=== surge: location shift (Tokyo -> Beijing) ===")
    for name, value in result.notes.items():
        print(f"  {name}: {value:.3f}")
    assert result.passed, result.failed_checks()


def test_popularity_shift_surge(benchmark, paper_config):
    result = run_once(benchmark, popularity_shift_surge, paper_config)
    print("\n=== surge: popularity shift (hot partition rotates) ===")
    for name, value in result.notes.items():
        print(f"  {name}: {value:.3f}")
    assert result.passed, result.failed_checks()
