"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's figures through
:mod:`repro.experiments.figures` at full evaluation scale (Table I
parameters, paper epoch counts), times the regeneration once
(``benchmark.pedantic`` — the workload is deterministic, repeated rounds
would measure the same thing), prints the series the paper reports, and
asserts the figure's qualitative shape checks.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig


@pytest.fixture(scope="session")
def paper_config() -> SimulationConfig:
    """Table I parameters with the benchmark seed."""
    return SimulationConfig(seed=7)


def run_once(benchmark, func, *args, **kwargs):
    """Time ``func`` exactly once and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(result) -> None:
    """Print a figure result the way the paper tabulates it."""
    print(f"\n=== {result.figure} ===")
    for name, value in result.notes.items():
        print(f"  {name}: {value:.3f}")
    for name, ok in result.checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")


def assert_shape(result) -> None:
    failed = result.failed_checks()
    assert not failed, f"{result.figure} shape checks failed: {failed}"
