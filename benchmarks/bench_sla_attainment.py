"""SLA attainment (the introduction's 300 ms / 99.9 % motivation).

Not a numbered figure — this bench quantifies the paper's Section I
argument: request-oriented placement serves "just the majority", while
RFH reaches full-service SLA attainment with the smallest replica
footprint of the algorithms that do.
"""

from repro.experiments.sla import sla_comparison

from conftest import run_once


def test_sla_attainment(benchmark, paper_config):
    result = run_once(benchmark, sla_comparison, paper_config, epochs=250)
    print("\n=== SLA attainment (300 ms bound, random query) ===")
    print(f"{'policy':>9} {'attainment':>11} {'latency ms':>11} {'replicas':>9}")
    for policy in result.attainment:
        print(
            f"{policy:>9} {result.attainment[policy]:>11.4f} "
            f"{result.latency_ms[policy]:>11.1f} {result.replicas[policy]:>9.0f}"
        )
    assert result.passed, result.failed_checks()
