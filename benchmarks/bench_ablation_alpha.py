"""Ablation A1 — smoothing factor α (Eqs. 10–11) under the flash crowd.

Surfaces the stability/responsiveness trade-off behind Table I's
α = 0.2: heavier smoothing (small α) reacts slower but churns less;
lighter smoothing chases Poisson noise.
"""

from repro.experiments.ablations import alpha_sweep

from conftest import run_once


def test_ablation_alpha(benchmark, paper_config):
    results = run_once(
        benchmark, alpha_sweep, paper_config, alphas=(0.05, 0.2, 0.8), epochs=400
    )
    print("\n=== ablation A1: alpha sweep (flash crowd) ===")
    print(f"{'alpha':>6} {'util':>7} {'replicas':>9} {'churn':>7} {'unserved':>9}")
    for alpha, row in results.items():
        print(
            f"{alpha:>6.2f} {row['utilization']:>7.3f} {row['total_replicas']:>9.0f} "
            f"{row['churn']:>7.0f} {row['unserved']:>9.2f}"
        )
    # Lighter smoothing (larger alpha) must not *reduce* total churn.
    assert results[0.8]["churn"] >= results[0.05]["churn"] * 0.8
    # Every setting still serves the workload.
    for row in results.values():
        assert row["utilization"] > 0.2
