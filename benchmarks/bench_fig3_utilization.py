"""Fig. 3 — replica utilization rate (random query + flash crowd).

Regenerates both panels with all four algorithms on identical traces and
checks the paper's claims: RFH highest / random lowest under random
query; request-oriented collapse and RFH single-dip-and-recover under
flash crowd.
"""

from repro.experiments import fig3_utilization

from conftest import assert_shape, report, run_once


def test_fig3_utilization(benchmark, paper_config):
    result = run_once(benchmark, fig3_utilization, paper_config)
    report(result)
    assert_shape(result)
