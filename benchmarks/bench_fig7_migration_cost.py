"""Fig. 7 — cumulative migration cost (Eq. 1 with migration bandwidth).

Paper shape: mirrors Fig. 6 — request highest, random and owner zero,
RFH low; the flash crowd forces more (and costlier) migrations than the
random query setting.
"""

from repro.experiments import fig7_migration_cost

from conftest import assert_shape, report, run_once


def test_fig7_migration_cost(benchmark, paper_config):
    result = run_once(benchmark, fig7_migration_cost, paper_config)
    report(result)
    assert_shape(result)
