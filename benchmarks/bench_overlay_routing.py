"""Overlay lookup lengths on live replica layouts (Section II-B).

"The cost of routing is O(log n)" — measured on the ring the engine
actually runs, before and after RFH populates it with replicas: copies
on the greedy route intercept lookups and shorten them.
"""

import math

from repro.ring import OverlayAnalyzer
from repro.sim import Simulation

from conftest import run_once


def _measure(config):
    sim = Simulation(config, policy="rfh")
    analyzer = OverlayAnalyzer(sim.ring, sim.mapper)
    gateways = tuple(
        sim.cluster.alive_in_dc(dc)[0].sid for dc in range(sim.cluster.num_datacenters)
    )
    fresh = analyzer.survey(sim.replicas, gateways)
    sim.run(150)
    populated = analyzer.survey(sim.replicas, gateways)
    return fresh, populated, sim.ring.num_tokens


def test_overlay_lookup_lengths(benchmark, paper_config):
    fresh, populated, tokens = run_once(benchmark, _measure, paper_config)
    print("\n=== overlay lookups (O(log n) claim) ===")
    print(f"  tokens on ring        : {tokens}")
    print(f"  fresh layout          : mean {fresh.mean_hops:.2f}, max {fresh.max_hops}")
    print(
        f"  after 150 RFH epochs  : mean {populated.mean_hops:.2f}, "
        f"max {populated.max_hops}, intercepted {populated.intercepted_fraction:.0%}"
    )
    bound = 2 * math.log2(tokens) + 2
    assert fresh.max_hops <= bound
    assert populated.mean_hops <= fresh.mean_hops  # replicas only shorten
    assert populated.intercepted_fraction > fresh.intercepted_fraction
