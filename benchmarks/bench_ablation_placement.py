"""Ablation A3 — Eq. 18 lowest-blocking placement vs blind random in-DC.

Isolates the contribution of the blocking-probability server choice to
RFH's Fig. 8 load-balance win: same decision tree, same thresholds,
only the within-datacenter server pick differs.
"""

from repro.experiments.ablations import placement_ablation

from conftest import run_once


def test_ablation_placement(benchmark, paper_config):
    results = run_once(benchmark, placement_ablation, paper_config, epochs=300)
    print("\n=== ablation A3: placement rule (random query) ===")
    for name, row in results.items():
        print(
            f"  {name:>16}: imbalance={row['load_imbalance']:.3f} "
            f"util={row['utilization']:.3f} replicas={row['total_replicas']:.0f}"
        )
    # The Eq. 18 choice must not balance worse than blind placement.
    assert (
        results["lowest-blocking"]["load_imbalance"]
        <= results["random-in-dc"]["load_imbalance"] * 1.10
    )
