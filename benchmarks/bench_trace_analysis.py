"""Micro-benchmarks of the trace-analytics pipeline.

The analysis stages run post-hoc over traces that can reach millions of
events (a paper-scale compare emits ~10k events per policy per 400
epochs), so each stage's per-event cost matters.  One shared trace is
captured once per session and every stage is timed against it.
"""

import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.obs import RingBufferTracer
from repro.obs.analysis import (
    analyze_events,
    attribute_violations,
    build_lineage,
    detect_anomalies,
    registry_from_events,
    to_chrome_trace,
    to_prometheus,
)
from repro.sim import Simulation
from repro.sim.events import MassFailureEvent


@pytest.fixture(scope="module")
def trace_events():
    config = SimulationConfig(
        seed=5,
        workload=WorkloadParameters(
            queries_per_epoch_mean=250.0, num_partitions=32, zipf_exponent=0.9
        ),
    )
    tracer = RingBufferTracer(capacity=1_000_000)
    Simulation(
        config, tracer=tracer, events=[MassFailureEvent(epoch=60, count=30)]
    ).run(150)
    return list(tracer.events())


def test_lineage_stitching_kernel(benchmark, trace_events):
    lineage = benchmark(build_lineage, trace_events)
    assert lineage.lifecycles


def test_rootcause_attribution_kernel(benchmark, trace_events):
    attributions = benchmark(attribute_violations, trace_events, window=20)
    assert isinstance(attributions, list)


def test_anomaly_detection_kernel(benchmark, trace_events):
    anomalies = benchmark(detect_anomalies, trace_events)
    assert isinstance(anomalies, list)


def test_full_analysis_pipeline(benchmark, trace_events):
    analysis = benchmark(analyze_events, trace_events)
    assert analysis.policies


def test_chrome_trace_export_kernel(benchmark, trace_events):
    payload = benchmark(to_chrome_trace, trace_events)
    assert payload["traceEvents"]


def test_prometheus_export_kernel(benchmark, trace_events):
    text = benchmark(lambda: to_prometheus(registry_from_events(trace_events)))
    assert text.startswith("# HELP")
