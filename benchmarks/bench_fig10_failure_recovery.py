"""Fig. 10 — node failure and recovery (RFH resilience).

"30 servers are randomly removed at epoch 290, resulting in a sharp
decrease of replicas number ... The replica number increases as time
passes by, and reaches the same level as initial."
"""

from repro.experiments import fig10_failure_recovery

from conftest import assert_shape, report, run_once


def test_fig10_failure_recovery(benchmark, paper_config):
    result = run_once(benchmark, fig10_failure_recovery, paper_config)
    report(result)
    assert_shape(result)
