"""Fig. 4 — total and per-partition replica number.

Paper shape: random ~2x owner ~> RFH, request fewest; RFH count stays
near its random-query level under flash crowd while the others inflate.
"""

from repro.experiments import fig4_replica_number

from conftest import assert_shape, report, run_once


def test_fig4_replica_number(benchmark, paper_config):
    result = run_once(benchmark, fig4_replica_number, paper_config)
    report(result)
    assert_shape(result)
