"""Micro-benchmarks of the hot kernels (guide: measure before tuning).

These are the only benchmarks with multiple timing rounds — they exist
to catch performance regressions in the inner loops that every
experiment epoch exercises: the Eq. 2–8 service walk, Erlang-B, ring
lookups and one full engine epoch.
"""

import numpy as np
import pytest

from repro.config import ClusterParameters, SimulationConfig, WorkloadParameters
from repro.core.blocking import erlang_b
from repro.core.traffic import serve_epoch
from repro.geo import build_synthetic_hierarchy
from repro.net import Router, build_default_wan, build_ring_wan
from repro.ring import FingerTable, HashRing, stable_hash
from repro.sim import Simulation
from repro.sim.columnar import ColumnarSimulation
from repro.workload import QueryBatch, WorkloadTrace

#: The two epoch engines under test.  The scalar engine is the
#: reference implementation; the columnar one must produce bit-identical
#: trajectories (tests/test_columnar_equivalence.py), so these rows are
#: directly comparable — same work, different arithmetic route.
_ENGINES = {"scalar": Simulation, "columnar": ColumnarSimulation}


def test_serve_epoch_kernel(benchmark):
    """One epoch of the Eq. 2–8 walk at Table I scale."""
    _, wan = build_default_wan()
    router = Router(wan)
    rng = np.random.default_rng(3)
    counts = rng.poisson(0.5, size=(64, 10))
    batch = QueryBatch(0, counts)
    holders = [int(h) for h in rng.integers(0, 10, size=64)]
    layouts = []
    for p in range(64):
        layout = {}
        for dc in rng.choice(10, size=4, replace=False):
            layout[int(dc)] = [(int(dc) * 10 + k, 2.0) for k in range(2)]
        layouts.append(layout)
    result = benchmark(
        serve_epoch, batch, holders, layouts, router, 100, holder_sid=None
    )
    assert result.total_served > 0


def test_erlang_b_kernel(benchmark):
    def run():
        total = 0.0
        for a in range(1, 200):
            total += erlang_b(a * 0.25, 8)
        return total

    total = benchmark(run)
    assert total > 0


def test_ring_lookup_kernel(benchmark):
    ring = HashRing()
    for sid in range(100):
        ring.add_server(sid)
    ft = FingerTable(ring)
    keys = [stable_hash(f"k:{i}") for i in range(500)]

    def run():
        return sum(ft.lookup(k)[1] for k in keys)

    hops = benchmark(run)
    assert hops > 0


@pytest.mark.parametrize("engine", sorted(_ENGINES))
def test_full_epoch_step(benchmark, engine):
    """One complete engine epoch (workload -> route -> decide -> apply)."""
    sim = _ENGINES[engine](SimulationConfig(seed=7), policy="rfh")
    sim.run(50)  # warm state: replicas placed, signals warm

    def step():
        return sim.step()

    result = benchmark.pedantic(step, rounds=20, iterations=1)
    assert result.query_count >= 0


# Large-scale case: 100 datacenters (one server each), 10^5 partitions,
# heavy skew.  The workload is pre-sampled into a trace during setup so
# the timed region measures the *engine* (serve / observe / apply /
# record), not the Poisson/multinomial sampling both engines share.
_LARGE_DCS = 100
_LARGE_PARTITIONS = 100_000
_LARGE_WARM_EPOCHS = 14
_LARGE_ROUNDS = 5
_LARGE_SCALE: dict = {}


def _large_scale_config() -> SimulationConfig:
    return SimulationConfig(
        seed=7,
        cluster=ClusterParameters(
            rooms_per_datacenter=1, racks_per_room=1, servers_per_rack=1
        ),
        workload=WorkloadParameters(
            queries_per_epoch_mean=50_000.0,
            num_partitions=_LARGE_PARTITIONS,
            zipf_exponent=2.0,
        ),
    )


def _large_scale_trace() -> WorkloadTrace:
    """One shared trace, recorded from the engine's own generator."""
    if "trace" not in _LARGE_SCALE:
        hierarchy = build_synthetic_hierarchy(_LARGE_DCS)
        probe = Simulation(
            _large_scale_config(),
            policy="rfh",
            hierarchy=hierarchy,
            wan=build_ring_wan(hierarchy),
        )
        _LARGE_SCALE["trace"] = WorkloadTrace.record(
            probe.workload, _LARGE_WARM_EPOCHS + _LARGE_ROUNDS + 3
        )
    return _LARGE_SCALE["trace"]


@pytest.mark.parametrize("engine", sorted(_ENGINES))
def test_large_scale_epoch_step(benchmark, engine):
    """One engine epoch at 100 DCs / 10^5 partitions, traced workload.

    This is where the columnar rewrite pays: the scalar per-flow walk
    and per-partition decision loop scale with P x D, the columnar
    kernels with the number of nonzero flows.
    """
    trace = _large_scale_trace()
    hierarchy = build_synthetic_hierarchy(_LARGE_DCS)
    sim = _ENGINES[engine](
        _large_scale_config(),
        policy="rfh",
        hierarchy=hierarchy,
        wan=build_ring_wan(hierarchy),
        workload=trace,
    )
    sim.run(_LARGE_WARM_EPOCHS)  # warm state: replicas placed, signals warm

    def step():
        return sim.step()

    result = benchmark.pedantic(step, rounds=_LARGE_ROUNDS, iterations=1)
    assert result.query_count >= 0


def test_full_epoch_step_timeseries(benchmark):
    """One engine epoch with the time-series recorder attached at
    stride 1 — the recorder's per-epoch cost must stay within noise of
    ``test_full_epoch_step`` (the acceptance bar for always-on
    recording)."""
    from repro.obs.timeseries import TimeseriesRecorder

    recorder = TimeseriesRecorder(stride=1)
    sim = Simulation(SimulationConfig(seed=7), policy="rfh", timeseries=recorder)
    sim.run(50)  # warm state: replicas placed, signals warm

    def step():
        return sim.step()

    result = benchmark.pedantic(step, rounds=20, iterations=1)
    assert result.query_count >= 0
    assert len(recorder.artifact().epochs) > 0


def test_full_epoch_step_sanitized(benchmark):
    """One engine epoch with the determinism sanitizer attached — the
    per-epoch fingerprinting (replica map, storage, rng streams,
    metrics into a hash chain) must stay within noise of
    ``test_full_epoch_step`` so `--sanitize` can run in CI smoke jobs."""
    from repro.staticcheck import DeterminismSanitizer

    sanitizer = DeterminismSanitizer()
    sim = Simulation(SimulationConfig(seed=7), policy="rfh", sanitizer=sanitizer)
    sim.run(50)  # warm state: replicas placed, signals warm

    def step():
        return sim.step()

    result = benchmark.pedantic(step, rounds=20, iterations=1)
    assert result.query_count >= 0
    assert len(sanitizer.trail()) > 0


def test_full_epoch_step_counters(benchmark):
    """One engine epoch with work counters attached — the counting
    overhead (one predictable branch per hot-path site plus the RNG
    stream proxy) must stay within noise of ``test_full_epoch_step``
    so cost-model recording can ride along in CI runs."""
    from repro.obs.perf import WorkCounters

    work = WorkCounters()
    sim = Simulation(SimulationConfig(seed=7), policy="rfh", work=work)
    sim.run(50)  # warm state: replicas placed, signals warm

    def step():
        return sim.step()

    result = benchmark.pedantic(step, rounds=20, iterations=1)
    assert result.query_count >= 0
    assert work.decisions_evaluated > 0


def test_full_epoch_step_provenance(benchmark):
    """One engine epoch with the decision-provenance recorder attached —
    the per-decision draft capture (predicates, candidate sets, fates)
    must stay close enough to ``test_full_epoch_step`` that
    ``--provenance-out`` is viable in CI smoke jobs; the detached path
    is covered by ``test_full_epoch_step`` itself since the disabled
    recorder is a ``None`` check."""
    from repro.obs.provenance import ProvenanceRecorder

    recorder = ProvenanceRecorder()
    sim = Simulation(SimulationConfig(seed=7), policy="rfh", provenance=recorder)
    sim.run(50)  # warm state: replicas placed, signals warm

    def step():
        return sim.step()

    result = benchmark.pedantic(step, rounds=20, iterations=1)
    assert result.query_count >= 0
    assert len(recorder.records) > 0


def test_full_epoch_step_hot_profiler(benchmark):
    """One engine epoch under the hot-path profiler (phases + nested
    kernel spans) — the span overhead bounds what ``repro profile``
    costs in kernels mode."""
    from repro.obs.perf import HotPathProfiler

    profiler = HotPathProfiler()
    sim = Simulation(SimulationConfig(seed=7), policy="rfh", profiler=profiler)
    sim.run(50)
    profiler.reset()  # attribute the timed epochs only

    def step():
        return sim.step()

    result = benchmark.pedantic(step, rounds=20, iterations=1)
    assert result.query_count >= 0
    assert any(len(node["stack"]) > 1 for node in profiler.span_nodes())


def test_full_epoch_step_phase_attribution(benchmark):
    """The same epoch loop under the phase profiler: prints where the
    wall-time goes (membership/workload/serve/observe/apply/record) so a
    regression in ``test_full_epoch_step`` can be pinned to a phase."""
    from repro.obs import ENGINE_PHASES, PhaseProfiler

    profiler = PhaseProfiler()
    sim = Simulation(SimulationConfig(seed=7), policy="rfh", profiler=profiler)
    sim.run(50)
    profiler.reset()  # attribute the timed epochs only

    def step():
        return sim.step()

    result = benchmark.pedantic(step, rounds=20, iterations=1)
    assert result.query_count >= 0
    timings = profiler.phase_timings()
    assert tuple(timings) == ENGINE_PHASES
    print("\n" + profiler.render_table())


def test_lint_src_tree(benchmark):
    """The full analysis platform over ``src/repro`` — every per-file
    family (REP0/REP1/REP2) on every file.  This is the pre-commit and
    CI gate's cost; it must stay interactive (the platform parses each
    file once and shares the tree across analyzers).  Serial on purpose:
    ``jobs=1`` timing is stable on small CI boxes, and the parallel
    driver is proven byte-identical separately."""
    import pathlib

    from repro.staticcheck import lint_paths

    src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

    def lint():
        return lint_paths([src], jobs=1)

    result = benchmark.pedantic(lint, rounds=3, iterations=1)
    assert result.errors == []
    assert result.active == []  # the committed tree gates at zero
    assert result.files_checked > 100
