"""Ablation A2 — overload (β) and suicide (δ) thresholds, random query.

A lazier overload bar (larger β) tolerates more holder traffic and ends
with fewer replicas; an eager suicide bar (larger δ) reclaims harder.
"""

from repro.experiments.ablations import threshold_sweep

from conftest import run_once


def test_ablation_thresholds(benchmark, paper_config):
    results = run_once(
        benchmark,
        threshold_sweep,
        paper_config,
        betas=(1.5, 3.0),
        deltas=(0.1, 0.4),
        epochs=250,
    )
    print("\n=== ablation A2: beta/delta sweep (random query) ===")
    print(f"{'beta':>5} {'delta':>6} {'util':>7} {'replicas':>9} {'unserved':>9}")
    for (beta, delta), row in results.items():
        print(
            f"{beta:>5.1f} {delta:>6.1f} {row['utilization']:>7.3f} "
            f"{row['total_replicas']:>9.0f} {row['unserved']:>9.2f}"
        )
    # The blocked-queries trigger keeps service viable at every setting.
    for row in results.values():
        assert row["unserved"] < 25.0
