"""Differential equivalence suite: scalar vs columnar engine.

The columnar engine's correctness proof is *identity*, not tolerance:
for the same seed the DeterminismSanitizer fingerprint chain — which
hashes the replica map, storage ledger, RNG stream positions and every
recorded metric each epoch — must be bit-identical between engines.
This suite enforces that contract over the full policy matrix, three
scenario shapes, multiple seeds, every kernel code path (the serve
kernel picks between python and vectorized drain/tail branches by
survivor count), the exported metric CSVs and the decision-provenance
ledgers, plus a hypothesis sweep over random small clusters.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import ClusterParameters, SimulationConfig, WorkloadParameters
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import (
    Scenario,
    chaos_schedule,
    flash_crowd_scenario,
    random_query_scenario,
)
from repro.geo.hierarchy import DEFAULT_SITES, GeoHierarchy
from repro.metrics.export import to_csv
from repro.net.builder import build_wan
from repro.obs.provenance import ProvenanceRecorder, diff_provenance
from repro.sim.columnar import ColumnarSimulation
from repro.sim.columnar import kernels as columnar_kernels
from repro.sim.engine import Simulation
from repro.staticcheck.sanitizer import DeterminismSanitizer

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis ships with the image
    given = None  # type: ignore[assignment]

POLICIES = ("request", "owner", "random", "rfh")
SCENARIOS = ("default", "chaos", "flash-crowd")
SEEDS = (3, 7, 11, 23, 42)
ENGINES = ("scalar", "columnar")

#: Every Simulation hook ColumnarSimulation overrides.  This tuple is
#: the differential suite's coverage contract: the AUD001 lint auditor
#: statically requires each override to appear here, and
#: test_differential_hooks_match_overrides below asserts (by
#: reflection) that the tuple matches the real override set — so a new
#: override cannot ship without landing in this list, and a stale entry
#: cannot linger after a hook is removed.  The fingerprint chain each
#: equivalence test compares hashes the outputs of every one of these
#: hooks each epoch.
DIFFERENTIAL_HOOKS = (
    "_alive_mask_array",
    "_alive_server_count",
    "_availability_summary",
    "_blocking_probabilities",
    "_load_cv_value",
    "_replica_count_matrix",
    "_restore_lost_partitions",
    "_serve_epoch",
    "_server_capacity_array",
    "_server_imbalance_value",
    "_total_replicas",
    "_utilization_value",
)


def test_differential_hooks_match_overrides() -> None:
    """DIFFERENTIAL_HOOKS is exactly the set of Simulation methods
    ColumnarSimulation overrides (no gaps, no stale entries)."""
    overrides = sorted(
        name
        for name, member in vars(ColumnarSimulation).items()
        if callable(member)
        and not name.startswith("__")
        and callable(getattr(Simulation, name, None))
    )
    assert overrides == sorted(DIFFERENTIAL_HOOKS)


def _small_config(seed: int) -> SimulationConfig:
    """Fast but non-trivial: enough partitions and load that every
    decision branch (replicate / migrate / suicide) fires."""
    return SimulationConfig(
        seed=seed,
        workload=WorkloadParameters(queries_per_epoch_mean=120.0, num_partitions=24),
    )


def _scenario(name: str, seed: int, epochs: int) -> Scenario:
    config = _small_config(seed)
    if name == "flash-crowd":
        return flash_crowd_scenario(config, epochs=epochs)
    scenario = random_query_scenario(config, epochs=epochs)
    if name == "chaos":
        scenario = dataclasses.replace(
            scenario, chaos=chaos_schedule("rack-outage", epochs)
        )
    return scenario


def _chains(policy: str, scenario: Scenario, engine: str) -> list[str]:
    sanitizer = DeterminismSanitizer()
    run_experiment(policy, scenario, sanitizer=sanitizer, engine=engine)
    return [record.chain for record in sanitizer.trail().records]


@pytest.mark.parametrize("scenario_name", SCENARIOS)
@pytest.mark.parametrize("policy", POLICIES)
def test_fingerprint_chains_and_metric_csvs_match(
    policy: str, scenario_name: str, tmp_path
) -> None:
    """Every policy x scenario x seed: identical per-epoch chain and
    byte-identical metric CSV export between engines."""
    for seed in SEEDS:
        scenario = _scenario(scenario_name, seed, epochs=25)
        chains: dict[str, list[str]] = {}
        csv_bytes: dict[str, bytes] = {}
        for engine in ENGINES:
            sanitizer = DeterminismSanitizer()
            result = run_experiment(
                policy, scenario, sanitizer=sanitizer, engine=engine
            )
            path = tmp_path / f"{policy}-{scenario_name}-{seed}-{engine}.csv"
            to_csv(result.metrics, path)
            chains[engine] = [r.chain for r in sanitizer.trail().records]
            csv_bytes[engine] = path.read_bytes()
        context = f"policy={policy} scenario={scenario_name} seed={seed}"
        assert chains["scalar"] == chains["columnar"], f"chain diverged: {context}"
        assert csv_bytes["scalar"] == csv_bytes["columnar"], (
            f"metric CSV diverged: {context}"
        )


@pytest.mark.parametrize("scenario_name", SCENARIOS)
@pytest.mark.parametrize("policy", POLICIES)
def test_provenance_decision_sequences_match(
    policy: str, scenario_name: str
) -> None:
    """The decision ledgers align record for record (provenance disables
    the columnar decision prefilter, so both engines log every
    evaluation)."""
    for seed in SEEDS[:2]:
        scenario = _scenario(scenario_name, seed, epochs=20)
        artifacts = {}
        for engine in ENGINES:
            recorder = ProvenanceRecorder()
            run_experiment(policy, scenario, provenance=recorder, engine=engine)
            artifacts[engine] = recorder.artifact()
        report = diff_provenance(artifacts["scalar"], artifacts["columnar"])
        assert report.identical, (
            f"policy={policy} scenario={scenario_name} seed={seed}: "
            f"{report.describe()}"
        )


def test_every_kernel_branch_is_equivalent(monkeypatch) -> None:
    """Force each serve-kernel code path and re-prove identity.

    The kernel switches between a python small-drain loop and the
    vectorized batch drain at ``_SMALL_DRAIN`` flows, and between a
    python tail walk and the vectorized per-level loop at ``_PY_TAIL``
    survivors.  Default-scale runs only exercise the python branches, so
    this test pins the thresholds to force every combination.
    """
    scenario = _scenario("default", 7, epochs=20)
    reference = _chains("rfh", scenario, "scalar")
    combos = (
        (0, 0),  # vectorized drain + vectorized level loop
        (0, 10**9),  # vectorized drain + python tail
        (10**9, 0),  # python small-drain + vectorized level loop
    )
    for small_drain, py_tail in combos:
        monkeypatch.setattr(columnar_kernels, "_SMALL_DRAIN", small_drain)
        monkeypatch.setattr(columnar_kernels, "_PY_TAIL", py_tail)
        assert _chains("rfh", scenario, "columnar") == reference, (
            f"_SMALL_DRAIN={small_drain} _PY_TAIL={py_tail}"
        )


def test_wan_partition_fallback_is_equivalent() -> None:
    """Link cuts swap in a different router; the columnar engine falls
    back to the scalar serve path for those epochs and must still chain
    identically through the cut-and-restore cycle."""
    epochs = 25
    scenario = dataclasses.replace(
        random_query_scenario(_small_config(11), epochs=epochs),
        chaos=chaos_schedule("wan-partition", epochs),
    )
    for policy in ("rfh", "request"):
        assert _chains(policy, scenario, "scalar") == _chains(
            policy, scenario, "columnar"
        ), f"policy={policy}"


def test_engine_metadata_is_stamped() -> None:
    """Artifacts record which engine produced them (`run_benchmarks.py
    --check` and `repro diff` compare like with like via this key)."""
    scenario = _scenario("default", 3, epochs=5)
    for engine in ENGINES:
        sanitizer = DeterminismSanitizer()
        result = run_experiment(
            "rfh", scenario, sanitizer=sanitizer, engine=engine
        )
        assert result.engine == engine
        assert sanitizer.trail().meta["engine"] == engine


if given is not None:

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_partitions=st.integers(min_value=4, max_value=16),
        rate=st.integers(min_value=20, max_value=200),
        num_dcs=st.integers(min_value=3, max_value=10),
        racks=st.integers(min_value=1, max_value=2),
        servers=st.integers(min_value=1, max_value=3),
        policy=st.sampled_from(POLICIES),
    )
    def test_random_small_clusters_are_equivalent(
        seed: int,
        num_partitions: int,
        rate: int,
        num_dcs: int,
        racks: int,
        servers: int,
        policy: str,
    ) -> None:
        """Property: identity holds on arbitrary small topologies, not
        just the paper's 10-site deployment."""
        config = SimulationConfig(
            seed=seed,
            cluster=ClusterParameters(
                racks_per_room=racks, servers_per_rack=servers
            ),
            workload=WorkloadParameters(
                queries_per_epoch_mean=float(rate), num_partitions=num_partitions
            ),
        )
        hierarchy = GeoHierarchy(DEFAULT_SITES[:num_dcs])
        # A ring over the sliced sites (the default link set names all
        # ten letters, so sub-topologies need their own connected WAN).
        names = [site.name for site in hierarchy.sites]
        links = tuple(
            (names[i], names[(i + 1) % len(names)])
            for i in range(len(names) if len(names) > 2 else len(names) - 1)
        )
        wan = build_wan(hierarchy, links)
        chains: dict[str, list[str]] = {}
        for engine_cls in (Simulation, ColumnarSimulation):
            sanitizer = DeterminismSanitizer()
            sim = engine_cls(
                config,
                policy=policy,
                hierarchy=hierarchy,
                wan=wan,
                sanitizer=sanitizer,
            )
            sim.run(8)
            chains[engine_cls.__name__] = [
                r.chain for r in sanitizer.trail().records
            ]
        assert chains["Simulation"] == chains["ColumnarSimulation"]

else:  # pragma: no cover - hypothesis ships with the image

    @pytest.mark.skip(reason="hypothesis is not installed")
    def test_random_small_clusters_are_equivalent() -> None:
        pass
