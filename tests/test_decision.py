"""The RFH decision tree (Fig. 2), branch by branch."""

import numpy as np
import pytest

from repro.cluster import ReplicaMap
from repro.config import RFHParameters
from repro.core.decision import (
    SUICIDE_WARMUP_EPOCHS,
    RFHDecision,
    SUICIDE_IDLE_BAR,
)
from repro.sim.actions import Migrate, Replicate, Suicide
from repro.sim.observation import EpochObservation
from repro.workload import QueryBatch


@pytest.fixture
def params() -> RFHParameters:
    return RFHParameters()


@pytest.fixture
def world(cluster, router, params):
    """A one-partition world with holder on server 0 (DC A) and a
    helper to build observations with explicit signals."""
    replicas = ReplicaMap(cluster, num_partitions=1, partition_size_mb=0.5)
    replicas.bootstrap([0])

    def make_obs(
        *,
        traffic=None,
        holder_traffic=0.0,
        served=None,
        unserved=0.0,
        blocking=None,
        rmin=2,
        epoch=50,
    ) -> EpochObservation:
        queries = QueryBatch(epoch, np.zeros((1, 10), dtype=np.int64))
        return EpochObservation(
            epoch=epoch,
            queries=queries,
            traffic_dc=np.asarray(
                [traffic if traffic is not None else np.zeros(10)], dtype=np.float64
            ).reshape(1, 10),
            served_server=(
                served.reshape(1, -1)
                if served is not None
                else np.zeros((1, cluster.num_servers))
            ),
            unserved=np.array([unserved]),
            holder_traffic=np.array([holder_traffic]),
            blocking_probability=(
                blocking if blocking is not None else np.zeros(cluster.num_servers)
            ),
            replicas=replicas,
            cluster=cluster,
            router=router,
            rmin=rmin,
            params=RFHParameters(),
            partition_size_mb=0.5,
        )

    return replicas, make_obs


def _decide(params, obs, *, avg_query=1.0, traffic=None, holder_traffic=0.0,
            served=None, unserved=0.0, age=None):
    decision = RFHDecision(params)
    return decision.decide_partition(
        0,
        obs,
        avg_query,
        np.asarray(traffic if traffic is not None else np.zeros(10)),
        holder_traffic,
        served if served is not None else np.zeros(obs.cluster.num_servers),
        unserved,
        replica_age=age,
    )


class TestAvailabilityBranch:
    def test_replicates_when_below_rmin(self, world, params):
        replicas, make_obs = world
        traffic = np.zeros(10)
        traffic[4] = 9.0  # E is the most-forwarding node
        obs = make_obs(traffic=traffic)
        actions = _decide(params, obs, traffic=traffic)
        assert len(actions) == 1
        action = actions[0]
        assert isinstance(action, Replicate)
        assert action.reason == "availability"
        assert obs.cluster.dc_of(action.target_sid) == 4  # placed at E
        assert action.source_sid == 0

    def test_availability_branch_fires_even_without_overload(self, world, params):
        _, make_obs = world
        obs = make_obs()
        actions = _decide(params, obs)  # zero traffic everywhere
        assert any(
            isinstance(a, Replicate) and a.reason == "availability" for a in actions
        )

    def test_no_availability_action_at_rmin(self, world, params):
        replicas, make_obs = world
        replicas.add(0, 15)  # second copy -> rmin satisfied
        obs = make_obs()
        assert _decide(params, obs) == []


class TestLoadBranch:
    def _saturate_floor(self, replicas):
        # Second copy in the holder's own DC: satisfies rmin without
        # creating an outside-the-hubs migration candidate.
        replicas.add(0, 5)

    def test_no_action_when_not_overloaded(self, world, params):
        replicas, make_obs = world
        self._saturate_floor(replicas)
        traffic = np.full(10, 5.0)
        obs = make_obs(traffic=traffic, holder_traffic=1.0)
        assert _decide(params, obs, traffic=traffic, holder_traffic=1.0) == []

    def test_overload_needs_raw_and_smoothed(self, world, params):
        """Smoothed-only overload (post-relief decay) must not replicate."""
        replicas, make_obs = world
        self._saturate_floor(replicas)
        traffic = np.full(10, 5.0)
        obs = make_obs(traffic=traffic, holder_traffic=0.1)  # raw low
        actions = _decide(
            params, obs, traffic=traffic, holder_traffic=10.0  # smoothed high
        )
        assert actions == []

    def test_overloaded_replicates_to_top_hub(self, world, params):
        replicas, make_obs = world
        self._saturate_floor(replicas)
        traffic = np.zeros(10)
        traffic[4] = 9.0  # E: hot hub, no replica yet
        traffic[0] = 8.0  # holder DC
        obs = make_obs(traffic=traffic, holder_traffic=5.0)
        actions = _decide(params, obs, traffic=traffic, holder_traffic=5.0)
        assert len(actions) == 1
        assert isinstance(actions[0], Replicate)
        assert actions[0].reason == "traffic-hub"
        assert obs.cluster.dc_of(actions[0].target_sid) == 4

    def test_blocked_queries_trigger_growth(self, world, params):
        """Persistent unserved queries count as overload even when the
        beta threshold is not crossed."""
        replicas, make_obs = world
        self._saturate_floor(replicas)
        traffic = np.zeros(10)
        traffic[4] = 9.0
        obs = make_obs(traffic=traffic, holder_traffic=0.0, unserved=3.0)
        actions = _decide(
            params, obs, traffic=traffic, holder_traffic=0.0, unserved=3.0
        )
        assert len(actions) == 1
        assert isinstance(actions[0], Replicate)

    def test_local_relief_when_no_hub_qualifies(self, world, params):
        replicas, make_obs = world
        self._saturate_floor(replicas)
        traffic = np.full(10, 0.1)  # nobody clears gamma
        obs = make_obs(traffic=traffic, holder_traffic=5.0)
        actions = _decide(params, obs, traffic=traffic, holder_traffic=5.0)
        assert len(actions) == 1
        action = actions[0]
        assert action.reason == "local-relief"
        assert obs.cluster.dc_of(action.target_sid) == 0  # holder's own DC

    def test_migrates_outside_replica_to_hub(self, world, params):
        replicas, make_obs = world
        self._saturate_floor(replicas)
        replicas.add(0, 95)  # a replica parked at J (dc 9), cold
        traffic = np.zeros(10)
        traffic[4] = 9.0
        traffic[5] = 8.0
        traffic[3] = 7.0  # top-3 hubs: E, F, D
        obs = make_obs(traffic=traffic, holder_traffic=5.0)
        age = {(0, 95): SUICIDE_WARMUP_EPOCHS}
        actions = _decide(
            params, obs, traffic=traffic, holder_traffic=5.0, age=age
        )
        assert len(actions) == 1
        action = actions[0]
        assert isinstance(action, Migrate)
        assert action.source_sid == 95
        assert obs.cluster.dc_of(action.target_sid) == 4

    def test_young_replica_not_migrated(self, world, params):
        replicas, make_obs = world
        self._saturate_floor(replicas)
        replicas.add(0, 95)
        traffic = np.zeros(10)
        traffic[4] = 9.0
        obs = make_obs(traffic=traffic, holder_traffic=5.0)
        age = {(0, 95): 1}  # newborn
        actions = _decide(params, obs, traffic=traffic, holder_traffic=5.0, age=age)
        assert all(not isinstance(a, Migrate) for a in actions)

    def test_falls_through_saturated_hub(self, world, params):
        """When every server of the chosen hub already holds a copy, the
        next top hub is used instead of giving up."""
        replicas, make_obs = world
        self._saturate_floor(replicas)
        for sid in range(40, 50):  # fill all of E
            replicas.add(0, sid)
        traffic = np.zeros(10)
        traffic[4] = 9.0  # E (saturated)
        traffic[5] = 8.0  # F
        obs = make_obs(traffic=traffic, holder_traffic=5.0)
        # Mark the parked copies as warm so no migration interferes.
        age = {(0, sid): 0 for sid in range(40, 50)}
        actions = _decide(params, obs, traffic=traffic, holder_traffic=5.0, age=age)
        grows = [a for a in actions if isinstance(a, Replicate)]
        assert grows and obs.cluster.dc_of(grows[0].target_sid) == 5


class TestSuicideBranch:
    def test_idle_old_replica_dies(self, world, params):
        replicas, make_obs = world
        replicas.add(0, 15)
        replicas.add(0, 95)  # three copies; 95 is idle
        served = np.zeros(100)
        served[0] = 2.0
        served[15] = 2.0
        obs = make_obs(served=served)
        age = {(0, 95): SUICIDE_WARMUP_EPOCHS}
        actions = _decide(params, obs, served=served, age=age)
        assert actions == [Suicide(0, 95, reason="cold-replica")]

    def test_newborn_exempt(self, world, params):
        replicas, make_obs = world
        replicas.add(0, 15)
        replicas.add(0, 95)
        served = np.zeros(100)
        obs = make_obs(served=served)
        age = {(0, 95): 2, (0, 15): 2}
        assert _decide(params, obs, served=served, age=age) == []

    def test_never_below_rmin(self, world, params):
        replicas, make_obs = world
        replicas.add(0, 95)  # exactly rmin copies
        served = np.zeros(100)
        obs = make_obs(served=served)
        age = {(0, 95): SUICIDE_WARMUP_EPOCHS}
        assert _decide(params, obs, served=served, age=age) == []

    def test_holder_never_suicides(self, world, params):
        replicas, make_obs = world
        replicas.add(0, 15)
        replicas.add(0, 95)
        served = np.zeros(100)
        served[15] = 2.0
        served[95] = 2.0  # only the holder is idle
        obs = make_obs(served=served)
        age = {(0, 15): 99, (0, 95): 99}
        actions = _decide(params, obs, served=served, age=age)
        assert all(not isinstance(a, Suicide) for a in actions)

    def test_no_suicide_while_blocked(self, world, params):
        replicas, make_obs = world
        replicas.add(0, 15)
        replicas.add(0, 95)
        served = np.zeros(100)
        obs = make_obs(served=served, unserved=5.0)
        age = {(0, 95): 99, (0, 15): 99}
        actions = _decide(
            params, obs, served=served, unserved=5.0, avg_query=0.0, age=age
        )
        assert all(not isinstance(a, Suicide) for a in actions)

    def test_busy_replica_survives(self, world, params):
        replicas, make_obs = world
        replicas.add(0, 15)
        replicas.add(0, 95)
        served = np.zeros(100)
        served[95] = max(1.0, 10 * SUICIDE_IDLE_BAR)
        served[15] = 2.0
        served[0] = 2.0
        obs = make_obs(served=served)
        age = {(0, 95): 99, (0, 15): 99}
        assert _decide(params, obs, served=served, avg_query=10.0, age=age) == []


class TestLostPartition:
    def test_no_actions_for_lost_partition(self, world, params, cluster):
        replicas, make_obs = world
        cluster.fail_server(0)
        replicas.drop_server(0)
        obs = make_obs()
        assert _decide(params, obs) == []
