"""Golden-artifact regression: both engines reproduce committed bytes.

``tests/golden/`` holds a small scalar run's fingerprint trail
(``rfh-random-s1234.fp.json``) and metric CSV
(``rfh-random-s1234.csv``).  Every engine must reproduce both files
byte-for-byte from the same config — catching any drift in the engines
*or* in the artifact serialization formats.

Regenerate after an intentional format change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_artifacts.py
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.metrics.export import to_csv
from repro.sim.columnar import ColumnarSimulation
from repro.sim.engine import Simulation
from repro.staticcheck.sanitizer import DeterminismSanitizer

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
STEM = "rfh-random-s1234"
EPOCHS = 20

_ENGINES = {"scalar": Simulation, "columnar": ColumnarSimulation}


def _golden_config() -> SimulationConfig:
    return SimulationConfig(
        seed=1234,
        workload=WorkloadParameters(queries_per_epoch_mean=120.0, num_partitions=24),
    )


def _produce(engine: str, tmp_path: pathlib.Path) -> tuple[bytes, bytes]:
    """One run of the golden config; returns (fp.json bytes, csv bytes).

    The simulation is constructed directly (not via ``run_experiment``)
    so no engine-identity metadata lands in the trail — the bytes depend
    only on the simulated trajectory, which the equivalence contract
    pins across engines.
    """
    sanitizer = DeterminismSanitizer()
    sim = _ENGINES[engine](_golden_config(), policy="rfh", sanitizer=sanitizer)
    metrics = sim.run(EPOCHS)
    fp_path = tmp_path / f"{engine}.fp.json"
    csv_path = tmp_path / f"{engine}.csv"
    sanitizer.trail().save(fp_path)
    to_csv(metrics, csv_path)
    return fp_path.read_bytes(), csv_path.read_bytes()


@pytest.mark.parametrize("engine", sorted(_ENGINES))
def test_engine_reproduces_golden_artifacts(engine: str, tmp_path) -> None:
    fp_bytes, csv_bytes = _produce(engine, tmp_path)
    fp_golden = GOLDEN_DIR / f"{STEM}.fp.json"
    csv_golden = GOLDEN_DIR / f"{STEM}.csv"
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1" and engine == "scalar":
        GOLDEN_DIR.mkdir(exist_ok=True)
        fp_golden.write_bytes(fp_bytes)
        csv_golden.write_bytes(csv_bytes)
    assert fp_bytes == fp_golden.read_bytes(), (
        f"{engine} engine diverged from golden fingerprint trail "
        f"{fp_golden}; if the change is intentional, regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    assert csv_bytes == csv_golden.read_bytes(), (
        f"{engine} engine diverged from golden metric CSV {csv_golden}; "
        "if the change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )
