"""Geographic hierarchy: labels, availability levels, default sites."""

import pytest

from repro.errors import TopologyError
from repro.geo import (
    AvailabilityLevel,
    GeoLabel,
    availability_level,
    build_default_hierarchy,
)
from repro.geo.hierarchy import DatacenterSite, GeoHierarchy


class TestGeoLabel:
    def test_parse_paper_example(self):
        label = GeoLabel.parse("NA-USA-GA1-C01-R02-S5")
        assert label.continent == "NA"
        assert label.country == "USA"
        assert label.datacenter == "GA1"
        assert label.room == "C01"
        assert label.rack == "R02"
        assert label.server == "S5"

    def test_round_trip(self):
        text = "EU-CHE-F-C01-R01-S3"
        assert str(GeoLabel.parse(text)) == text

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(TopologyError):
            GeoLabel.parse("NA-USA-GA1-C01-R02")
        with pytest.raises(TopologyError):
            GeoLabel.parse("NA-USA-GA1-C01-R02-S5-extra")

    def test_empty_component_rejected(self):
        with pytest.raises(TopologyError):
            GeoLabel("NA", "", "GA1", "C01", "R02", "S5")

    def test_dash_in_component_rejected(self):
        with pytest.raises(TopologyError):
            GeoLabel("NA", "U-SA", "GA1", "C01", "R02", "S5")

    def test_shared_prefix_depth(self):
        a = GeoLabel.parse("NA-USA-GA1-C01-R02-S5")
        assert a.shared_prefix_depth(a) == 6
        b = a.with_server("S6")
        assert a.shared_prefix_depth(b) == 5
        c = GeoLabel.parse("NA-USA-GA1-C01-R03-S5")
        assert a.shared_prefix_depth(c) == 4
        d = GeoLabel.parse("EU-CHE-F-C01-R02-S5")
        assert a.shared_prefix_depth(d) == 0

    def test_same_datacenter_and_rack(self):
        a = GeoLabel.parse("NA-USA-GA1-C01-R02-S5")
        assert a.same_datacenter(GeoLabel.parse("NA-USA-GA1-C09-R09-S9"))
        assert not a.same_datacenter(GeoLabel.parse("NA-USA-GA2-C01-R02-S5"))
        assert a.same_rack(a.with_server("S1"))
        assert not a.same_rack(GeoLabel.parse("NA-USA-GA1-C01-R03-S5"))

    def test_labels_sort_deterministically(self):
        a = GeoLabel.parse("AS-CHN-H-C01-R01-S1")
        b = GeoLabel.parse("NA-USA-A-C01-R01-S1")
        assert sorted([b, a]) == [a, b]


class TestAvailabilityLevel:
    def test_same_server_is_level_1(self):
        a = GeoLabel.parse("NA-USA-GA1-C01-R02-S5")
        assert availability_level(a, a) == AvailabilityLevel.SAME_SERVER

    def test_same_rack_is_level_2(self):
        a = GeoLabel.parse("NA-USA-GA1-C01-R02-S5")
        assert availability_level(a, a.with_server("S6")) == AvailabilityLevel.SAME_RACK

    def test_same_room_is_level_3(self):
        a = GeoLabel.parse("NA-USA-GA1-C01-R02-S5")
        b = GeoLabel.parse("NA-USA-GA1-C01-R03-S5")
        assert availability_level(a, b) == AvailabilityLevel.SAME_ROOM

    def test_same_datacenter_is_level_4(self):
        a = GeoLabel.parse("NA-USA-GA1-C01-R02-S5")
        b = GeoLabel.parse("NA-USA-GA1-C02-R02-S5")
        assert availability_level(a, b) == AvailabilityLevel.SAME_DATACENTER

    def test_different_datacenter_is_level_5(self):
        a = GeoLabel.parse("NA-USA-GA1-C01-R02-S5")
        for other in ("NA-USA-GA2-C01-R02-S5", "NA-CAN-D-C01-R02-S5", "AS-CHN-H-C01-R02-S5"):
            assert (
                availability_level(a, GeoLabel.parse(other))
                == AvailabilityLevel.DIFFERENT_DATACENTER
            )

    def test_symmetry(self):
        a = GeoLabel.parse("NA-USA-GA1-C01-R02-S5")
        b = GeoLabel.parse("NA-USA-GA1-C02-R01-S1")
        assert availability_level(a, b) == availability_level(b, a)

    def test_higher_level_means_safer(self):
        assert AvailabilityLevel.DIFFERENT_DATACENTER > AvailabilityLevel.SAME_DATACENTER
        assert AvailabilityLevel.SAME_DATACENTER > AvailabilityLevel.SAME_ROOM
        assert AvailabilityLevel.SAME_ROOM > AvailabilityLevel.SAME_RACK
        assert AvailabilityLevel.SAME_RACK > AvailabilityLevel.SAME_SERVER


class TestDefaultHierarchy:
    def test_ten_datacenters_lettered_a_to_j(self):
        h = build_default_hierarchy()
        assert h.num_datacenters == 10
        assert [s.name for s in h.sites] == list("ABCDEFGHIJ")

    def test_country_mix_matches_section_iii(self):
        """3 US, 2 Canada, 2 Switzerland, 3 China/Japan."""
        h = build_default_hierarchy()
        assert len(h.indices_by_country("USA")) == 3
        assert len(h.indices_by_country("CAN")) == 2
        assert len(h.indices_by_country("CHE")) == 2
        assert len(h.indices_by_country("CHN")) + len(h.indices_by_country("JPN")) == 3

    def test_continent_lookup(self):
        h = build_default_hierarchy()
        assert h.indices_by_continent("NA") == (0, 1, 2, 3, 4)
        assert h.indices_by_continent("EU") == (5, 6)
        assert h.indices_by_continent("AS") == (7, 8, 9)

    def test_by_name_and_site(self):
        h = build_default_hierarchy()
        assert h.by_name("A").index == 0
        assert h.site(9).name == "J"
        with pytest.raises(TopologyError):
            h.by_name("Z")
        with pytest.raises(TopologyError):
            h.site(10)

    def test_server_label_style(self):
        h = build_default_hierarchy()
        label = h.server_label(0, room=0, rack=1, server=4)
        assert str(label) == "NA-USA-A-C01-R02-S5"

    def test_duplicate_names_rejected(self):
        site = DatacenterSite(0, "A", "NA", "USA", "X", 0.0, 0.0)
        dup = DatacenterSite(1, "A", "NA", "USA", "Y", 1.0, 1.0)
        with pytest.raises(TopologyError):
            GeoHierarchy((site, dup))

    def test_out_of_order_indices_rejected(self):
        s0 = DatacenterSite(1, "A", "NA", "USA", "X", 0.0, 0.0)
        with pytest.raises(TopologyError):
            GeoHierarchy((s0,))

    def test_bad_coordinates_rejected(self):
        with pytest.raises(TopologyError):
            DatacenterSite(0, "A", "NA", "USA", "X", 91.0, 0.0)
        with pytest.raises(TopologyError):
            DatacenterSite(0, "A", "NA", "USA", "X", 0.0, 181.0)
