"""Workload substrate: batches, Zipf, patterns, generator, trace."""

import numpy as np
import pytest

from repro.config import WorkloadParameters
from repro.errors import WorkloadError
from repro.sim.rng import RngTree
from repro.workload import (
    FlashCrowdPattern,
    HotspotPattern,
    LocationShiftPattern,
    PopularityShiftPattern,
    QueryBatch,
    QueryGenerator,
    UniformPattern,
    WorkloadTrace,
    zipf_weights,
)
from repro.workload.zipf import rotate_ranks


class TestQueryBatch:
    def test_basic_accessors(self):
        batch = QueryBatch(0, np.array([[1, 2], [3, 4]]))
        assert batch.total == 10
        assert batch.num_partitions == 2
        assert batch.num_origins == 2
        assert list(batch.per_partition()) == [3, 7]
        assert list(batch.per_origin()) == [4, 6]

    def test_system_average_query_eq9(self):
        batch = QueryBatch(0, np.array([[2, 4], [0, 0]]))
        assert list(batch.system_average_query()) == [3.0, 0.0]

    def test_counts_are_read_only(self):
        batch = QueryBatch(0, np.array([[1]]))
        with pytest.raises(ValueError):
            batch.counts[0, 0] = 5

    def test_negative_counts_rejected(self):
        with pytest.raises(WorkloadError):
            QueryBatch(0, np.array([[-1]]))

    def test_fractional_counts_rejected(self):
        with pytest.raises(WorkloadError):
            QueryBatch(0, np.array([[1.5]]))

    def test_integral_floats_accepted(self):
        batch = QueryBatch(0, np.array([[2.0]]))
        assert batch.total == 2

    def test_negative_epoch_rejected(self):
        with pytest.raises(WorkloadError):
            QueryBatch(-1, np.array([[1]]))

    def test_value_equality(self):
        a = QueryBatch(0, np.array([[1, 2]]))
        b = QueryBatch(0, np.array([[1, 2]]))
        c = QueryBatch(1, np.array([[1, 2]]))
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestZipf:
    def test_uniform_at_zero_exponent(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_normalised_and_decreasing(self):
        w = zipf_weights(64, 0.9)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)

    def test_larger_exponent_concentrates(self):
        w1 = zipf_weights(64, 0.5)
        w2 = zipf_weights(64, 1.5)
        assert w2[0] > w1[0]

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0, 1.0)
        with pytest.raises(WorkloadError):
            zipf_weights(10, -1.0)

    def test_rotate_ranks_moves_hot_item(self):
        w = zipf_weights(8, 1.0)
        r = rotate_ranks(w, 3)
        assert r[3] == pytest.approx(w[0])
        assert r.sum() == pytest.approx(1.0)


class TestPatterns:
    def test_uniform_origins(self):
        p = UniformPattern(16, 10, 0.9)
        assert np.allclose(p.origin_weights(0), 0.1)
        assert p.partition_weights(0).sum() == pytest.approx(1.0)

    def test_hotspot_shares(self):
        p = HotspotPattern(16, 10, 0.9, hot_origins=(7, 8, 9), hot_share=0.8)
        w = p.origin_weights(5)
        assert w[[7, 8, 9]].sum() == pytest.approx(0.8)
        assert w.sum() == pytest.approx(1.0)

    def test_flash_crowd_stage_schedule(self):
        p = FlashCrowdPattern(16, 10, 0.9, total_epochs=400)
        assert p.stage_boundaries() == (0, 100, 200, 300)
        assert p.stage_of(0) == 0
        assert p.stage_of(99) == 0
        assert p.stage_of(100) == 1
        assert p.stage_of(399) == 3
        assert p.stage_of(10_000) == 3  # clamped

    def test_flash_crowd_stage_origins(self):
        p = FlashCrowdPattern(16, 10, 0.9, total_epochs=400)
        w1 = p.origin_weights(50)
        assert w1[[7, 8, 9]].sum() == pytest.approx(0.8)  # H, I, J
        w2 = p.origin_weights(150)
        assert w2[[0, 1, 2]].sum() == pytest.approx(0.8)  # A, B, C
        w3 = p.origin_weights(250)
        assert w3[[4, 5, 6]].sum() == pytest.approx(0.8)  # E, F, G
        w4 = p.origin_weights(350)
        assert np.allclose(w4, 0.1)  # uniform last stage

    def test_flash_crowd_needs_enough_epochs(self):
        with pytest.raises(WorkloadError):
            FlashCrowdPattern(16, 10, 0.9, total_epochs=2)

    def test_location_shift_interpolates(self):
        p = LocationShiftPattern(
            16, 10, 0.9, from_origins=(8,), to_origins=(7,), shift_start=10, shift_end=20
        )
        assert p.origin_weights(5)[8] == pytest.approx(0.8)
        assert p.origin_weights(25)[7] == pytest.approx(0.8)
        mid = p.origin_weights(15)
        assert 0.3 < mid[8] < 0.5 and 0.3 < mid[7] < 0.5
        assert mid.sum() == pytest.approx(1.0)

    def test_popularity_shift_rotates_hot_partition(self):
        p = PopularityShiftPattern(16, 10, 1.0, shift_epochs=(50,), rotate_by=5)
        before = p.partition_weights(0)
        after = p.partition_weights(60)
        assert np.argmax(before) == 0
        assert np.argmax(after) == 5

    def test_negative_epoch_rejected(self):
        p = UniformPattern(4, 4, 0.0)
        with pytest.raises(WorkloadError):
            p.origin_weights(-1)
        with pytest.raises(WorkloadError):
            p.partition_weights(-1)


class TestGenerator:
    def _gen(self, lam=300.0):
        params = WorkloadParameters(queries_per_epoch_mean=lam, num_partitions=16)
        pattern = UniformPattern(16, 10, 0.9)
        return QueryGenerator(params, pattern, RngTree(7).stream("wl"))

    def test_epochs_must_be_sequential(self):
        gen = self._gen()
        gen.generate(0)
        with pytest.raises(WorkloadError):
            gen.generate(2)
        with pytest.raises(WorkloadError):
            gen.generate(0)

    def test_shapes_and_determinism(self):
        a = self._gen().generate(0)
        b = self._gen().generate(0)
        assert a == b
        assert a.counts.shape == (16, 10)

    def test_poisson_mean_is_respected(self):
        gen = self._gen(lam=200.0)
        totals = [gen.generate(e).total for e in range(200)]
        assert abs(np.mean(totals) - 200.0) < 10.0

    def test_pattern_mismatch_rejected(self):
        params = WorkloadParameters(num_partitions=16)
        pattern = UniformPattern(8, 10, 0.9)
        with pytest.raises(WorkloadError):
            QueryGenerator(params, pattern, RngTree(7).stream("wl"))

    def test_marginals_follow_pattern(self):
        """Hotspot origins must receive ~80 % of queries on average."""
        params = WorkloadParameters(queries_per_epoch_mean=300.0, num_partitions=16)
        pattern = HotspotPattern(16, 10, 0.9, hot_origins=(7, 8, 9))
        gen = QueryGenerator(params, pattern, RngTree(7).stream("wl"))
        totals = np.zeros(10)
        for e in range(100):
            totals += gen.generate(e).per_origin()
        assert totals[[7, 8, 9]].sum() / totals.sum() == pytest.approx(0.8, abs=0.03)


class TestTrace:
    def _trace(self, epochs=20):
        params = WorkloadParameters(num_partitions=16)
        pattern = UniformPattern(16, 10, 0.9)
        gen = QueryGenerator(params, pattern, RngTree(7).stream("wl"))
        return WorkloadTrace.record(gen, epochs)

    def test_replay_matches_recording(self):
        trace = self._trace()
        params = WorkloadParameters(num_partitions=16)
        pattern = UniformPattern(16, 10, 0.9)
        gen = QueryGenerator(params, pattern, RngTree(7).stream("wl"))
        for epoch in range(20):
            assert trace.generate(epoch) == gen.generate(epoch)

    def test_out_of_range_epoch_rejected(self):
        trace = self._trace()
        with pytest.raises(WorkloadError):
            trace.generate(20)

    def test_total_queries(self):
        trace = self._trace()
        assert trace.total_queries() == sum(b.total for b in trace.batches())

    def test_save_load_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        assert len(loaded) == len(trace)
        for epoch in range(len(trace)):
            assert loaded.generate(epoch) == trace.generate(epoch)

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(WorkloadError):
            WorkloadTrace.load(path)

    def test_misnumbered_batches_rejected(self):
        batch = QueryBatch(5, np.ones((2, 2), dtype=np.int64))
        with pytest.raises(WorkloadError):
            WorkloadTrace([batch])
