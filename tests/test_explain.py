"""``repro explain`` narratives and ``repro provdiff`` decision diffs."""

import dataclasses

import pytest

from repro.cli import main
from repro.config import SimulationConfig
from repro.errors import ProvenanceError
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import random_query_scenario
from repro.obs.provenance import (
    ProvenanceRecorder,
    diff_provenance,
    render_explanation,
)

FAST = ["--epochs", "20", "--partitions", "8", "--rate", "60", "--seed", "3"]


def _config(beta: float | None = None) -> SimulationConfig:
    config = SimulationConfig()
    config = dataclasses.replace(
        config,
        workload=dataclasses.replace(config.workload, num_partitions=16),
    )
    if beta is not None:
        config = dataclasses.replace(
            config, rfh=dataclasses.replace(config.rfh, beta=beta)
        )
    return config


def _ledger(epochs=20, beta=None):
    recorder = ProvenanceRecorder()
    scenario = random_query_scenario(_config(beta), epochs=epochs)
    run_experiment("rfh", scenario, provenance=recorder)
    return recorder.artifact()


@pytest.fixture(scope="module")
def artifact():
    return _ledger()


# ----------------------------------------------------------------------
# repro explain
# ----------------------------------------------------------------------
class TestExplain:
    def test_rendering_is_byte_stable_across_runs(self, artifact):
        partition = artifact.partitions()[0]
        again = _ledger()
        assert render_explanation(artifact, partition) == render_explanation(
            again, partition
        )

    def test_narrative_names_the_paper_equations(self, artifact):
        # Some partition took a load-branch action in 20 epochs; its
        # narrative must show the actual Eq. 12 comparison with slack.
        texts = [
            render_explanation(artifact, p) for p in artifact.partitions()
        ]
        joined = "\n".join(texts)
        assert "Eq. 14 availability floor" in joined
        assert "Eq. 12 overload (smoothed)" in joined
        assert "β·q̄" in joined
        assert "slack" in joined

    def test_single_epoch_filter(self, artifact):
        partition = artifact.partitions()[0]
        rows = artifact.for_partition(partition)
        epoch = rows[-1].epoch
        text = render_explanation(artifact, partition, epoch=epoch)
        assert f"epoch {epoch}]" in text
        other_epochs = [r.epoch for r in rows if r.epoch != epoch]
        if other_epochs:
            assert f"[epoch {other_epochs[0]}]" not in text

    def test_why_not_section(self, artifact):
        partition = artifact.partitions()[0]
        text = render_explanation(artifact, partition, why_not=0)
        assert "Why not dc 0" in text

    def test_unknown_partition_raises(self, artifact):
        with pytest.raises(ProvenanceError):
            render_explanation(artifact, 10_000)


# ----------------------------------------------------------------------
# repro provdiff
# ----------------------------------------------------------------------
class TestProvDiff:
    def test_same_seed_runs_are_identical(self, artifact):
        report = diff_provenance(artifact, _ledger())
        assert report.identical
        assert report.exit_code == 0
        assert "IDENTICAL" in report.describe()

    def test_beta_perturbation_is_pinpointed_to_the_term(self, artifact):
        perturbed = _ledger(beta=2.5)
        report = diff_provenance(artifact, perturbed)
        assert report.exit_code == 1
        first = report.first
        assert first is not None
        # β only enters through Eq. 12 (and its raw twin / the suicide
        # headroom gate derived from it), so the first divergent term
        # must name a β·q̄ threshold — not a downstream consequence.
        assert "β·q̄" in first.term
        # And the divergence names the earliest affected decision: no
        # aligned pair before (first.epoch, first.partition) differs.
        keyed = {
            (d.epoch, d.partition, d.seq) for d in report.divergences
        }
        assert min(keyed) == (first.epoch, first.partition, first.seq)

    def test_extra_decision_reports_presence_divergence(self, artifact):
        truncated = dataclasses.replace(
            artifact, records=artifact.records[:-1]
        )
        report = diff_provenance(artifact, truncated)
        assert report.exit_code == 1
        assert any(d.term == "decision presence" for d in report.divergences)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
class TestCli:
    def test_run_explain_provdiff_pipeline(self, tmp_path, capsys):
        a = tmp_path / "a.prov.json"
        b = tmp_path / "b.prov.json"
        for path in (a, b):
            assert main(["run", *FAST, "--provenance-out", str(path)]) == 0
        assert main(["provdiff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "IDENTICAL" in out
        rc = main(["explain", str(a), "--partition", "0", "--why-not", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Partition 0" in out
        assert "Why not dc 1" in out

    def test_explain_out_file(self, tmp_path, capsys):
        a = tmp_path / "a.prov.json"
        assert main(["run", *FAST, "--provenance-out", str(a)]) == 0
        dest = tmp_path / "narrative.txt"
        assert (
            main(["explain", str(a), "--partition", "0", "--out", str(dest)])
            == 0
        )
        capsys.readouterr()
        assert "Partition 0" in dest.read_text()

    def test_provdiff_gates_on_divergent_seeds(self, tmp_path, capsys):
        a = tmp_path / "a.prov.json"
        b = tmp_path / "b.prov.json"
        assert main(["run", *FAST, "--provenance-out", str(a)]) == 0
        other = [arg if arg != "3" else "4" for arg in FAST]
        assert main(["run", *other, "--provenance-out", str(b)]) == 0
        assert main(["provdiff", str(a), str(b)]) == 1
        assert "FIRST DIVERGENCE" in capsys.readouterr().out

    def test_explain_rejects_missing_artifact(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["explain", str(tmp_path / "no.prov.json"), "--partition", "0"])

    def test_compare_writes_per_policy_ledgers(self, tmp_path, capsys):
        out = tmp_path / "cmp.prov.json"
        assert main(["compare", *FAST, "--provenance-out", str(out)]) == 0
        capsys.readouterr()
        for policy in ("request", "owner", "random", "rfh"):
            assert (tmp_path / f"cmp.{policy}.prov.json").exists()

    def test_run_budget_flag_compacts(self, tmp_path, capsys):
        out = tmp_path / "tiny.prov.json"
        assert (
            main(
                [
                    "run",
                    *FAST,
                    "--provenance-out",
                    str(out),
                    "--provenance-budget",
                    "40",
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "compacted" in stdout
        from repro.obs.provenance import ProvArtifact

        artifact = ProvArtifact.load(out)
        # Action-bearing records are never dropped, so the ledger may
        # exceed the budget only by the action count.
        assert artifact.num_decisions <= max(40, artifact.num_actions)
        assert artifact.noop_dropped_total > 0
