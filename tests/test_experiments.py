"""Experiment harness: scenarios, runner, comparison, report rendering.

Full-scale figure regeneration lives in the benchmark suite; these tests
exercise the machinery at reduced scale so the unit suite stays fast.
"""

import numpy as np
import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.experiments import (
    compare_policies,
    failure_recovery_scenario,
    fig10_failure_recovery,
    flash_crowd_scenario,
    random_query_scenario,
    run_experiment,
)
from repro.experiments.figures import FigureResult
from repro.experiments.report import render_figure, render_report


@pytest.fixture
def cfg() -> SimulationConfig:
    return SimulationConfig(
        seed=21,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )


class TestScenarios:
    def test_random_query_scenario(self, cfg):
        sc = random_query_scenario(cfg, epochs=30)
        assert sc.name == "random-query"
        assert len(sc.trace) == 30
        assert sc.events == ()

    def test_flash_crowd_scenario_origins_shift(self, cfg):
        sc = flash_crowd_scenario(cfg, epochs=80)
        early = sum(sc.trace.generate(e).per_origin() for e in range(10))
        late = sum(sc.trace.generate(e).per_origin() for e in range(25, 35))
        assert early[[7, 8, 9]].sum() > 0.6 * early.sum()  # H/I/J hot
        assert late[[0, 1, 2]].sum() > 0.6 * late.sum()  # A/B/C hot

    def test_failure_scenario_events(self, cfg):
        sc = failure_recovery_scenario(
            cfg, epochs=40, failure_epoch=20, failure_count=10, recovery_epoch=30
        )
        assert len(sc.events) == 2

    def test_recovery_must_follow_failure(self, cfg):
        with pytest.raises(ValueError):
            failure_recovery_scenario(
                cfg, epochs=40, failure_epoch=20, recovery_epoch=10
            )

    def test_scenario_epoch_bounds_checked(self, cfg):
        sc = random_query_scenario(cfg, epochs=30)
        from repro.experiments.scenarios import Scenario

        with pytest.raises(ValueError):
            Scenario("x", cfg, sc.trace, epochs=31)


class TestRunner:
    def test_run_experiment(self, cfg):
        sc = random_query_scenario(cfg, epochs=25)
        res = run_experiment("rfh", sc)
        assert res.policy == "rfh"
        assert len(res.series("utilization")) == 25
        assert res.final("total_replicas") >= 16
        assert res.cumulative("replication_count")[-1] >= 0

    def test_runs_are_reproducible(self, cfg):
        sc = random_query_scenario(cfg, epochs=25)
        a = run_experiment("rfh", sc)
        b = run_experiment("rfh", sc)
        assert list(a.series("served")) == list(b.series("served"))


class TestComparison:
    def test_compare_all_policies(self, cfg):
        sc = random_query_scenario(cfg, epochs=25)
        cmp = compare_policies(sc)
        assert set(cmp.policies()) == {"rfh", "random", "owner", "request"}
        table = cmp.steady_table("utilization", tail=5)
        assert all(0 <= v <= 1 for v in table.values())

    def test_identical_workload_across_policies(self, cfg):
        sc = random_query_scenario(cfg, epochs=25)
        cmp = compare_policies(sc, policies=("rfh", "random"))
        assert list(cmp["rfh"].series("queries")) == list(
            cmp["random"].series("queries")
        )

    def test_ranking(self, cfg):
        sc = random_query_scenario(cfg, epochs=30)
        cmp = compare_policies(sc, policies=("rfh", "random"))
        ranking = cmp.ranking("total_replicas")
        assert ranking[0] == "random"  # random always needs more replicas


class TestFigureHarness:
    def test_fig10_small_scale(self, cfg):
        result = fig10_failure_recovery(cfg, epochs=140, failure_epoch=80, failure_count=20)
        assert result.figure == "fig10"
        assert "10" in result.panels
        assert result.checks["10 servers actually removed"]
        assert result.checks["10 sharp drop at the failure epoch"]

    def test_figure_result_api(self):
        result = FigureResult(
            "figX", {"p": {"rfh": np.zeros(3)}}, {"ok": True, "bad": False}
        )
        assert not result.passed
        assert result.failed_checks() == ("bad",)


class TestReport:
    def test_render_figure(self):
        result = FigureResult(
            "fig3", {"3a": {}}, {"claim holds": True}, notes={"steady": 0.5}
        )
        text = render_figure(result)
        assert "fig3" in text
        assert "claim holds" in text
        assert "0.500" in text

    def test_render_report_counts_checks(self):
        results = {
            "fig3": FigureResult("fig3", {}, {"a": True, "b": False}),
            "fig4": FigureResult("fig4", {}, {"c": True}),
        }
        text = render_report(results, header="# Title")
        assert "2/3" in text
        assert text.startswith("# Title")
        assert "**NO**" in text
