"""Baseline policies: behavioural contracts from Section II-A."""

from repro.config import SimulationConfig, WorkloadParameters
from repro.sim import Simulation
from repro.sim.rng import RngTree
from repro.workload import HotspotPattern, QueryGenerator, WorkloadTrace


def small_sim(policy: str, seed: int = 3, epochs_pattern=None) -> Simulation:
    cfg = SimulationConfig(
        seed=seed,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )
    return Simulation(cfg, policy=policy, workload=epochs_pattern)


class TestRandomPolicy:
    def test_never_migrates_or_suicides(self):
        sim = small_sim("random")
        seen: list = []
        orig = sim.policy.decide
        sim.policy.decide = lambda obs: seen.extend(orig(obs)) or seen[-0:] or []
        # simpler: run and check metrics
        sim = small_sim("random")
        m = sim.run(60)
        assert m.array("migration_count").sum() == 0
        assert m.array("suicide_count").sum() == 0

    def test_reaches_availability_floor(self):
        sim = small_sim("random")
        sim.run(20)
        counts = sim.replicas.per_partition_counts()
        assert all(c >= sim.rmin for c in counts)

    def test_successor_placement_for_floor(self):
        """The first copy beyond the original lands on a ring successor
        (Dynamo's N-1 clockwise rule)."""
        sim = small_sim("random")
        sim.step()
        for partition in range(sim.replicas.num_partitions):
            servers = {sid for sid, _ in sim.replicas.servers_with(partition)}
            succ = set(sim.mapper.successor_sites(partition, 8))
            extra = servers - {sim.replicas.holder(partition)}
            if extra:
                assert extra <= succ

    def test_deterministic_given_seed(self):
        a = small_sim("random", seed=11)
        b = small_sim("random", seed=11)
        ma, mb = a.run(40), b.run(40)
        assert list(ma.array("total_replicas")) == list(mb.array("total_replicas"))


class TestOwnerOriented:
    def test_replicas_stay_in_holder_neighbourhood(self):
        sim = small_sim("owner")
        sim.run(80)
        for partition in range(sim.replicas.num_partitions):
            holder_dc = sim.cluster.dc_of(sim.replicas.holder(partition))
            allowed = {holder_dc, *sim.router.wan_neighbors(holder_dc)}
            for sid, _ in sim.replicas.servers_with(partition):
                assert sim.cluster.dc_of(sid) in allowed

    def test_first_extra_copy_prefers_different_dc(self):
        sim = small_sim("owner")
        sim.step()
        sim.step()
        for partition in range(sim.replicas.num_partitions):
            servers = [sid for sid, _ in sim.replicas.servers_with(partition)]
            if len(servers) >= 2:
                dcs = {sim.cluster.dc_of(sid) for sid in servers}
                assert len(dcs) >= 2  # availability level 5 achieved

    def test_no_migrations_without_membership_change(self):
        sim = small_sim("owner")
        m = sim.run(60)
        assert m.array("migration_count").sum() == 0

    def test_never_suicides(self):
        sim = small_sim("owner")
        m = sim.run(60)
        assert m.array("suicide_count").sum() == 0


class TestRequestOriented:
    def _hotspot_trace(self, epochs=80, hot=(7, 8, 9)):
        wl = WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        )
        pattern = HotspotPattern(16, 10, 0.9, hot_origins=hot)
        gen = QueryGenerator(wl, pattern, RngTree(5).stream("hot"))
        return WorkloadTrace.record(gen, epochs)

    def test_replicas_concentrate_at_hot_origins(self):
        trace = self._hotspot_trace()
        cfg = SimulationConfig(
            seed=3,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
            ),
        )
        sim = Simulation(cfg, policy="request", workload=trace)
        sim.run(80)
        extra_dcs = []
        for partition in range(16):
            holder = sim.replicas.holder(partition)
            for sid, _ in sim.replicas.servers_with(partition):
                if sid != holder:
                    extra_dcs.append(sim.cluster.dc_of(sid))
        hot_fraction = sum(1 for dc in extra_dcs if dc in (7, 8, 9)) / len(extra_dcs)
        assert hot_fraction > 0.6

    def test_never_suicides(self):
        sim = small_sim("request")
        m = sim.run(60)
        assert m.array("suicide_count").sum() == 0

    def test_sticky_top3_damps_migration_under_uniform(self):
        sim = small_sim("request")
        m = sim.run(80)
        migrations = m.array("migration_count")
        # The ranking settles early; once established, uniform origins
        # rarely clear the challenger margin.
        assert migrations[40:].sum() <= 8
        assert migrations.sum() <= 40

    def test_migrates_when_hotspot_moves(self):
        """A decisive origin shift triggers the paper's top-3 migration."""
        wl = WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        )
        from repro.workload import LocationShiftPattern

        pattern = LocationShiftPattern(
            16, 10, 0.9, from_origins=(7, 8, 9), to_origins=(0, 1, 2),
            shift_start=60, shift_end=80,
        )
        gen = QueryGenerator(wl, pattern, RngTree(5).stream("shift"))
        trace = WorkloadTrace.record(gen, 220)
        cfg = SimulationConfig(seed=3, workload=wl)
        sim = Simulation(cfg, policy="request", workload=trace)
        m = sim.run(220)
        migrations = m.array("migration_count")
        assert migrations[:60].sum() <= migrations[60:].sum()
        assert migrations.sum() > 0
