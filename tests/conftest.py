"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Runtime conservation checking is on for the whole suite: every
# Simulation built without an explicit ``invariants=`` argument validates
# the world state at each epoch boundary (strict mode).
os.environ.setdefault("REPRO_CHECK_INVARIANTS", "1")

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "default", deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    settings.register_profile(
        "ci",
        deadline=None,
        derandomize=True,
        max_examples=8,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - hypothesis ships with the image
    pass

from repro.cluster import Cluster, ReplicaMap
from repro.config import ClusterParameters, SimulationConfig, WorkloadParameters
from repro.geo import build_default_hierarchy
from repro.net import Router, build_wan
from repro.ring import HashRing, PartitionMapper
from repro.sim.rng import RngTree


@pytest.fixture
def config() -> SimulationConfig:
    """Table I defaults with a fixed seed."""
    return SimulationConfig(seed=1234)


@pytest.fixture
def small_config() -> SimulationConfig:
    """A small, fast configuration for integration tests."""
    return SimulationConfig(
        seed=1234,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )


@pytest.fixture
def hierarchy():
    return build_default_hierarchy()


@pytest.fixture
def wan(hierarchy):
    return build_wan(hierarchy)


@pytest.fixture
def router(wan) -> Router:
    return Router(wan)


@pytest.fixture
def rng_tree() -> RngTree:
    return RngTree(1234)


@pytest.fixture
def cluster(hierarchy, rng_tree) -> Cluster:
    return Cluster(hierarchy, ClusterParameters(), rng_tree.stream("capacity"))


@pytest.fixture
def ring(cluster) -> HashRing:
    ring = HashRing()
    for server in cluster.servers:
        ring.add_server(server.sid)
    return ring


@pytest.fixture
def mapper(ring) -> PartitionMapper:
    return PartitionMapper(64, ring)


@pytest.fixture
def replica_map(cluster, mapper) -> ReplicaMap:
    rm = ReplicaMap(cluster, 64, 0.5)
    rm.bootstrap(mapper.holders())
    return rm


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
