"""The observability layer: tracer, profiler, registry, engine wiring."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.obs import (
    ENGINE_PHASES,
    InstrumentRegistry,
    JsonlTracer,
    NullProfiler,
    NullTracer,
    PhaseProfiler,
    RingBufferTracer,
    TraceEvent,
    TraceReadWarning,
    read_jsonl,
)
from repro.obs.profiler import _percentile
from repro.sim.engine import Simulation
from repro.sim.events import ServerFailureEvent, ServerJoinEvent, ServerRecoveryEvent


def _small_config(seed: int = 11) -> SimulationConfig:
    return SimulationConfig(
        seed=seed,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=12, zipf_exponent=0.9
        ),
    )


# ----------------------------------------------------------------------
# Tracer sinks
# ----------------------------------------------------------------------
class TestRingBufferTracer:
    def test_overflow_evicts_oldest_and_counts_drops(self):
        tracer = RingBufferTracer(capacity=5)
        for i in range(12):
            tracer.emit(TraceEvent(epoch=i, kind="replicate"))
        assert len(tracer) == 5
        assert tracer.dropped == 7
        assert [e.epoch for e in tracer.events()] == [7, 8, 9, 10, 11]

    def test_kind_filter(self):
        tracer = RingBufferTracer(capacity=10)
        tracer.emit(TraceEvent(epoch=0, kind="replicate"))
        tracer.emit(TraceEvent(epoch=1, kind="suicide"))
        tracer.emit(TraceEvent(epoch=2, kind="replicate"))
        assert [e.epoch for e in tracer.events("replicate")] == [0, 2]

    def test_clear_resets_buffer_and_drop_count(self):
        tracer = RingBufferTracer(capacity=1)
        tracer.emit(TraceEvent(epoch=0, kind="migrate"))
        tracer.emit(TraceEvent(epoch=1, kind="migrate"))
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferTracer(capacity=0)


class TestJsonlTracer:
    def test_roundtrip_preserves_fields_and_extras(self, tmp_path):
        path = tmp_path / "t.jsonl"
        original = [
            TraceEvent(
                epoch=3,
                kind="migrate",
                server=7,
                partition=2,
                reason="hub-migration",
                cost=1.25,
                policy="rfh",
                extra={"source": 4},
            ),
            TraceEvent(epoch=4, kind="sla_violation", reason="latency-bound-exceeded"),
        ]
        with JsonlTracer(path) as tracer:
            for event in original:
                tracer.emit(event)
        assert tracer.emitted == 2
        loaded = list(read_jsonl(path))
        assert len(loaded) == 2
        assert loaded[0].to_dict() == original[0].to_dict()
        assert loaded[0].extra == {"source": 4}
        assert loaded[1].reason == "latency-bound-exceeded"

    def test_lines_are_one_json_object_each(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit(TraceEvent(epoch=0, kind="replicate", reason="availability"))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "replicate" and record["reason"] == "availability"


def test_null_tracer_is_disabled():
    assert NullTracer.enabled is False
    assert Simulation(_small_config()).tracer.enabled is False


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_phase_names_are_stable(self):
        assert ENGINE_PHASES == (
            "membership",
            "workload",
            "serve",
            "observe",
            "apply",
            "record",
        )

    def test_engine_times_every_phase_every_epoch(self):
        profiler = PhaseProfiler()
        sim = Simulation(_small_config(), profiler=profiler)
        sim.run(6)
        timings = profiler.phase_timings()
        assert tuple(timings) == ENGINE_PHASES
        assert profiler.epochs_profiled() == 6
        for stats in timings.values():
            assert stats.count == 6
            assert stats.total >= 0.0
            assert stats.p50 <= stats.p95 <= stats.total + 1e-12

    def test_render_table_lists_all_phases(self):
        profiler = PhaseProfiler()
        sim = Simulation(_small_config(), profiler=profiler)
        sim.run(2)
        table = profiler.render_table()
        for phase in ENGINE_PHASES:
            assert phase in table

    def test_reset_clears_samples(self):
        profiler = PhaseProfiler()
        with profiler.phase("serve"):
            pass
        profiler.reset()
        assert profiler.phase_timings()["serve"].count == 0

    def test_null_profiler_noop(self):
        profiler = NullProfiler()
        with profiler.phase("serve"):
            pass
        assert profiler.phase_timings() == {}
        assert profiler.epochs_profiled() == 0


# ----------------------------------------------------------------------
# Instrument registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_label_sets_create_distinct_children(self):
        reg = InstrumentRegistry()
        reg.counter("actions_total", kind="migrate", policy="rfh").inc()
        reg.counter("actions_total", kind="replicate", policy="rfh").inc(2)
        assert reg.counter("actions_total", kind="migrate", policy="rfh").value == 1
        assert reg.counter("actions_total", kind="replicate", policy="rfh").value == 2

    def test_label_order_is_irrelevant(self):
        reg = InstrumentRegistry()
        reg.counter("x", a="1", b="2").inc()
        assert reg.counter("x", b="2", a="1").value == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            InstrumentRegistry().counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = InstrumentRegistry().gauge("g")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc(0.5)
        assert gauge.value == 3.5

    def test_histogram_summary(self):
        hist = InstrumentRegistry().histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)

    def test_snapshot_and_json_export(self, tmp_path):
        reg = InstrumentRegistry()
        reg.counter("actions_total", kind="suicide").inc(3)
        reg.gauge("alive_servers").set(99)
        reg.histogram("lifetime").observe(7.0)
        snap = reg.snapshot()
        assert snap["counters"][0]["labels"] == {"kind": "suicide"}
        assert snap["counters"][0]["value"] == 3
        assert snap["gauges"][0]["value"] == 99
        assert snap["histograms"][0]["count"] == 1
        path = tmp_path / "inst.json"
        reg.to_json(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == snap

    def test_reset_isolates_tests(self):
        reg = InstrumentRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": [], "gauges": [], "histograms": []}

    def test_snapshot_deterministic_across_insertion_orders(self):
        """Two registries fed the same instruments in different creation
        and label orders must snapshot byte-identically."""
        a = InstrumentRegistry()
        a.counter("actions_total", kind="migrate", policy="rfh").inc(2)
        a.counter("actions_total", kind="replicate", policy="rfh").inc(5)
        a.gauge("alive_servers").set(90)
        a.gauge("total_replicas", dc="0").set(12)
        a.histogram("lifetime", policy="rfh").observe(3.0)

        b = InstrumentRegistry()
        b.histogram("lifetime", policy="rfh").observe(3.0)
        b.gauge("total_replicas", dc="0").set(12)
        b.gauge("alive_servers").set(90)
        b.counter("actions_total", policy="rfh", kind="replicate").inc(5)
        b.counter("actions_total", policy="rfh", kind="migrate").inc(2)

        assert a.snapshot() == b.snapshot()
        assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())
        assert list(a.iter_scalars()) == list(b.iter_scalars())

    def test_iter_scalars_counters_then_gauges_sorted(self):
        reg = InstrumentRegistry()
        reg.gauge("zz").set(1)
        reg.counter("aa", k="2").inc()
        reg.counter("aa", k="1").inc()
        rows = list(reg.iter_scalars())
        assert [(kind, name, labels) for kind, name, labels, _ in rows] == [
            ("counter", "aa", {"k": "1"}),
            ("counter", "aa", {"k": "2"}),
            ("gauge", "zz", {}),
        ]


class TestHistogramReservoir:
    def test_exact_mode_is_default_and_never_sampled(self):
        hist = InstrumentRegistry().histogram("h")
        for v in range(1000):
            hist.observe(float(v))
        assert len(hist.samples) == 1000
        assert hist.summary()["sampled"] is False

    def test_reservoir_bounds_memory_and_flags_summary(self):
        reg = InstrumentRegistry(histogram_reservoir=64, seed=1)
        hist = reg.histogram("h")
        for v in range(10_000):
            hist.observe(float(v))
        assert len(hist.samples) == 64
        summary = hist.summary()
        assert summary["sampled"] is True
        # Count/sum/min/max/mean stay exact regardless of sampling.
        assert summary["count"] == 10_000
        assert summary["min"] == 0.0 and summary["max"] == 9999.0
        assert summary["mean"] == pytest.approx(4999.5)
        # Quantile estimates land in a plausible band for a uniform ramp.
        assert 2000.0 < summary["p50"] < 8000.0

    def test_reservoir_not_flagged_until_displacement(self):
        reg = InstrumentRegistry(histogram_reservoir=8)
        hist = reg.histogram("h")
        for v in range(8):
            hist.observe(float(v))
        assert hist.summary()["sampled"] is False  # reservoir still exact

    def test_reservoir_deterministic_and_order_independent_seeding(self):
        def fill(reg):
            hist = reg.histogram("h", policy="rfh")
            for v in range(500):
                hist.observe(float(v))
            return sorted(hist.samples)

        # Same seed -> identical sample; per-instrument seed derives from
        # (name, labels), so creating other instruments first changes nothing.
        a = InstrumentRegistry(histogram_reservoir=16, seed=7)
        b = InstrumentRegistry(histogram_reservoir=16, seed=7)
        b.histogram("unrelated")
        b.counter("c").inc()
        assert fill(a) == fill(b)
        c = InstrumentRegistry(histogram_reservoir=16, seed=8)
        assert fill(a) != fill(c)  # different seed, different sample

    def test_reservoir_validation(self):
        with pytest.raises(ValueError):
            InstrumentRegistry(histogram_reservoir=0)
        from repro.obs.registry import Histogram

        with pytest.raises(ValueError):
            Histogram({}, reservoir=0)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineTracing:
    def test_every_action_record_carries_a_reason(self):
        for policy in ("rfh", "random", "owner", "request"):
            tracer = RingBufferTracer()
            sim = Simulation(_small_config(), policy=policy, tracer=tracer)
            sim.run(30)
            action_events = [
                e
                for e in tracer.events()
                if e.kind in ("replicate", "migrate", "suicide")
            ]
            assert action_events, f"{policy}: no actions traced in 30 epochs"
            assert all(e.reason for e in action_events), policy
            assert all(e.policy == policy for e in tracer.events())

    def test_membership_and_restore_events_traced(self):
        tracer = RingBufferTracer()
        events = [
            ServerFailureEvent(epoch=2, sids=(0, 1)),
            ServerJoinEvent(epoch=4, dc=0, count=1),
            ServerRecoveryEvent(epoch=6),
        ]
        sim = Simulation(_small_config(), tracer=tracer, events=events)
        sim.run(10)
        kinds = {e.kind for e in tracer.events()}
        assert {"server_failure", "server_join", "server_recovery"} <= kinds
        failures = tracer.events("server_failure")
        assert {e.server for e in failures} == {0, 1}
        assert all(e.epoch == 2 for e in failures)

    def test_mass_failure_traces_restores(self):
        from repro.sim.events import MassFailureEvent

        tracer = RingBufferTracer()
        sim = Simulation(
            _small_config(),
            tracer=tracer,
            events=[MassFailureEvent(epoch=3, count=90)],
        )
        sim.run(6)
        assert len(tracer.events("server_failure")) == 90
        restores = tracer.events("partition_restore")
        assert restores  # killing 90 % of servers loses partitions
        assert all(e.reason == "all-copies-lost" for e in restores)

    def test_tracing_does_not_perturb_the_simulation(self):
        plain = Simulation(_small_config(seed=5)).run(20)
        traced_sim = Simulation(
            _small_config(seed=5),
            tracer=RingBufferTracer(),
            profiler=PhaseProfiler(),
            instruments=InstrumentRegistry(),
        )
        traced = traced_sim.run(20)
        for name in plain.names():
            np.testing.assert_array_equal(
                plain.array(name), traced.array(name), err_msg=name
            )

    def test_instruments_count_actions_and_lifetimes(self):
        registry = InstrumentRegistry()
        sim = Simulation(_small_config(), instruments=registry)
        metrics = sim.run(60)
        snap = registry.snapshot()
        counted = sum(
            row["value"]
            for row in snap["counters"]
            if row["name"] == "actions_total"
        )
        applied = (
            metrics.array("replication_count").sum()
            + metrics.array("migration_count").sum()
            + metrics.array("suicide_count").sum()
        )
        assert counted == applied
        suicides = metrics.array("suicide_count").sum()
        lifetimes = [
            row for row in snap["histograms"] if row["name"] == "replica_lifetime_epochs"
        ]
        if suicides > 0:
            assert lifetimes and lifetimes[0]["count"] >= suicides

    def test_sla_violations_traced_when_queries_block(self):
        tracer = RingBufferTracer()
        sim = Simulation(_small_config(), tracer=tracer)
        metrics = sim.run(40)
        violations = tracer.events("sla_violation")
        attainment = metrics.array("sla_attainment")
        if (attainment < 1.0).any():
            assert violations
            assert all(e.extra["count"] > 0 for e in violations)
        else:  # pragma: no cover - workload-dependent
            assert not violations


# ----------------------------------------------------------------------
# Percentile helper edge cases
# ----------------------------------------------------------------------
class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert _percentile([], 0.5) == 0.0

    def test_single_sample_for_every_q(self):
        for q in (0.0, 0.5, 0.95, 1.0):
            assert _percentile([7.5], q) == 7.5

    def test_q0_and_q100_hit_the_extremes(self):
        ordered = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _percentile(ordered, 0.0) == 1.0
        assert _percentile(ordered, 1.0) == 5.0

    def test_two_sample_interpolation(self):
        # Linear interpolation between order statistics: the median of
        # two samples is their midpoint (the old nearest-rank rule
        # banker-rounded p50 of [1, 9] down to 1.0).
        assert _percentile([1.0, 9.0], 0.5) == 5.0
        assert _percentile([1.0, 9.0], 0.95) == pytest.approx(8.6)

    def test_interpolates_between_neighbours(self):
        ordered = [1.0, 2.0, 10.0]
        # q=0.75 lands at position 1.5: halfway between 2 and 10.
        assert _percentile(ordered, 0.75) == pytest.approx(6.0)
        # Results are always bracketed by the neighbouring samples.
        for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
            value = _percentile(ordered, q)
            assert ordered[0] <= value <= ordered[-1]

    def test_matches_numpy_linear_method(self):
        ordered = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
        for q in (0.0, 0.1, 0.25, 0.5, 0.77, 0.95, 1.0):
            assert _percentile(ordered, q) == pytest.approx(
                float(np.percentile(ordered, q * 100))
            )


# ----------------------------------------------------------------------
# Crash-safe trace reading + drop accounting
# ----------------------------------------------------------------------
class TestCrashSafeReadJsonl:
    def _write_truncated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as tracer:
            for epoch in range(5):
                tracer.emit(TraceEvent(epoch=epoch, kind="replicate", server=1))
        # Simulate a writer killed mid-record: chop the final line.
        path.write_bytes(path.read_bytes()[:-25])
        return path

    def test_truncated_final_line_skipped_with_warning(self, tmp_path):
        path = self._write_truncated(tmp_path)
        with pytest.warns(TraceReadWarning, match="skipping malformed"):
            events = list(read_jsonl(path))
        assert [e.epoch for e in events] == [0, 1, 2, 3]

    def test_strict_mode_still_raises(self, tmp_path):
        path = self._write_truncated(tmp_path)
        with pytest.raises(json.JSONDecodeError):
            list(read_jsonl(path, strict=True))

    def test_clean_file_reads_without_warning(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit(TraceEvent(epoch=0, kind="suicide", server=2))
        with warnings.catch_warnings():
            warnings.simplefilter("error", TraceReadWarning)
            assert len(list(read_jsonl(path))) == 1


class TestDroppedEventsInstrument:
    def test_ring_overflow_exported_as_counter(self):
        registry = InstrumentRegistry()
        tracer = RingBufferTracer(capacity=8)
        Simulation(_small_config(), tracer=tracer, instruments=registry).run(30)
        assert tracer.dropped > 0
        exported = registry.counter("trace_events_dropped_total").value
        assert 0 < exported <= tracer.dropped

    def test_no_drops_no_counter_sample(self):
        registry = InstrumentRegistry()
        tracer = RingBufferTracer(capacity=1_000_000)
        Simulation(_small_config(), tracer=tracer, instruments=registry).run(10)
        assert tracer.dropped == 0
        names = {row["name"] for row in registry.snapshot()["counters"]}
        assert "trace_events_dropped_total" not in names
