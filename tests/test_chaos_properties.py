"""Property-based chaos testing: arbitrary schedules, invariants hold.

Hypothesis draws small-but-adversarial chaos schedules (overlapping
correlated failures, rolling outages, flapping, WAN partitions) and runs
them through a reduced world with strict invariant checking — any
conservation bug the churn paths can reach raises an
:class:`InvariantViolation` and shrinks to a minimal schedule.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chaos import ChaosSchedule, CorrelatedFailure, Flapping, InvariantChecker, RollingOutage, WanPartition
from repro.config import ClusterParameters, SimulationConfig, WorkloadParameters
from repro.sim.engine import Simulation

#: Epochs every property run covers (schedules are drawn inside it).
EPOCHS = 18


def small_world(seed: int) -> SimulationConfig:
    """40 servers (10 DCs x 1 room x 2 racks x 2), 8 partitions."""
    return SimulationConfig(
        seed=seed,
        workload=WorkloadParameters(
            queries_per_epoch_mean=60.0, num_partitions=8, zipf_exponent=0.9
        ),
        cluster=ClusterParameters(servers_per_rack=2),
    )


# ----------------------------------------------------------------------
# Injection strategies — bounded so the cluster never fully dies:
# at most 2 injections, each hitting at most 3 of the 10 datacenters.
# ----------------------------------------------------------------------
correlated = st.builds(
    CorrelatedFailure,
    epoch=st.integers(1, EPOCHS - 2),
    scope=st.sampled_from(["server", "rack", "room", "datacenter"]),
    domains=st.integers(1, 3),
    downtime=st.one_of(st.none(), st.integers(1, 6)),
)

rolling = st.builds(
    RollingOutage,
    start_epoch=st.integers(1, EPOCHS // 2),
    scope=st.sampled_from(["rack", "room", "datacenter"]),
    domains=st.integers(1, 3),
    stride=st.integers(1, 4),
    downtime=st.integers(1, 5),
)

flapping = st.builds(
    Flapping,
    start_epoch=st.integers(0, EPOCHS // 2),
    count=st.integers(1, 4),
    up_epochs=st.integers(1, 4),
    down_epochs=st.integers(1, 3),
    cycles=st.integers(1, 3),
)

partition = st.builds(
    WanPartition,
    epoch=st.integers(1, EPOCHS - 3),
    duration=st.integers(1, 5),
    isolate=st.sampled_from([("H", "I", "J"), ("A",), ("E", "F"), ("D",)]),
)

schedules = st.lists(
    st.one_of(correlated, rolling, flapping, partition), min_size=1, max_size=2
).map(lambda inj: ChaosSchedule(name="prop", injections=tuple(inj)))


class TestArbitrarySchedulesPreserveInvariants:
    @given(schedule=schedules, seed=st.integers(0, 2**16))
    @settings(max_examples=12, deadline=None)
    def test_every_epoch_is_conservation_clean(self, schedule, seed):
        """Strict checking over the whole run: any violation raises."""
        checker = InvariantChecker(strict=True)
        sim = Simulation(small_world(seed), chaos=schedule, invariants=checker)
        sim.run(EPOCHS)
        assert checker.violations_seen == 0

    @given(schedule=schedules, seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_collect_mode_sees_nothing_either(self, schedule, seed):
        """Non-strict mode counts instead of raising — still zero."""
        checker = InvariantChecker(strict=False)
        sim = Simulation(small_world(seed), chaos=schedule, invariants=checker)
        sim.run(EPOCHS)
        assert checker.violations_seen == 0


class TestFailRecoverRoundTrip:
    @given(
        scope=st.sampled_from(["rack", "room", "datacenter"]),
        domains=st.integers(1, 2),
        downtime=st.integers(3, 6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_replica_floor_restored_within_window(
        self, scope, domains, downtime, seed
    ):
        """Fail -> recover -> within a recovery window every partition is
        back at the paper's availability floor (count >= rmin)."""
        fail_epoch, window = 5, 12
        schedule = ChaosSchedule(
            name="round-trip",
            injections=(
                CorrelatedFailure(
                    epoch=fail_epoch, scope=scope, domains=domains, downtime=downtime
                ),
            ),
        )
        sim = Simulation(
            small_world(seed), chaos=schedule, invariants=InvariantChecker()
        )
        sim.run(fail_epoch + downtime + window)
        counts = sim.replicas.per_partition_counts()
        assert all(c >= sim.rmin for c in counts)
        # The outage healed: every server is back up.
        assert len(sim.cluster.alive_servers()) == sim.cluster.num_servers
