"""RFH policy end-to-end behaviour on the real engine."""

from repro.config import RFHParameters, SimulationConfig, WorkloadParameters
from repro.core import RFHPolicy
from repro.sim import MassFailureEvent, Simulation
from repro.sim.rng import RngTree
from repro.workload import HotspotPattern, QueryGenerator, WorkloadTrace


def make_sim(seed=5, pattern=None, epochs=None, **wl_over) -> Simulation:
    wl = dict(queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9)
    wl.update(wl_over)
    cfg = SimulationConfig(seed=seed, workload=WorkloadParameters(**wl))
    workload = None
    if pattern is not None:
        gen = QueryGenerator(cfg.workload, pattern, RngTree(seed).stream("t"))
        workload = WorkloadTrace.record(gen, epochs)
    return Simulation(cfg, policy="rfh", workload=workload)


class TestConvergence:
    def test_reaches_availability_floor_quickly(self):
        sim = make_sim()
        sim.run(10)
        counts = sim.replicas.per_partition_counts()
        assert all(c >= sim.rmin for c in counts)

    def test_settles_without_churn(self):
        sim = make_sim()
        m = sim.run(150)
        last = slice(-40, None)
        churn = (
            m.array("replication_count")[last].sum()
            + m.array("suicide_count")[last].sum()
            + m.array("migration_count")[last].sum()
        )
        # A small residual adaptation rate is expected; a runaway loop
        # would produce hundreds of actions in 40 epochs.
        assert churn < 40

    def test_unserved_fraction_is_small(self):
        sim = make_sim()
        m = sim.run(150)
        tail = slice(-30, None)
        frac = m.array("unserved")[tail].sum() / m.array("queries")[tail].sum()
        assert frac < 0.05

    def test_utilization_reasonable(self):
        sim = make_sim()
        m = sim.run(150)
        u = m.series("utilization").tail_mean(30)
        assert 0.2 < u < 1.0


class TestHubPlacement:
    def test_replicas_favour_traffic_carrying_dcs(self):
        """With queries concentrated near H/I/J, RFH's extra replicas
        should sit on the Asia->holder corridors, not at random."""
        pattern = HotspotPattern(16, 10, 0.9, hot_origins=(7, 8, 9))
        sim = make_sim(pattern=pattern, epochs=120)
        sim.run(120)
        extra_dcs = []
        for p in range(16):
            holder = sim.replicas.holder(p)
            holder_dc = sim.cluster.dc_of(holder)
            for sid, count in sim.replicas.servers_with(p):
                if sid != holder:
                    extra_dcs.extend([sim.cluster.dc_of(sid)] * count)
        # Corridor + origin DCs: H, I, J themselves plus hubs E, D, F and
        # holder-co-located relief; blind DCs (B, G) should be rare.
        blind = sum(1 for dc in extra_dcs if dc in (1, 6))
        assert blind / len(extra_dcs) < 0.25


class TestFailureResilience:
    def test_rebuilds_after_mass_failure(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=60, count=30))
        m = sim.run(160)
        replicas = m.array("total_replicas")
        pre = replicas[50:60].mean()
        post_drop = replicas[60]
        final = replicas[-20:].mean()
        assert post_drop < pre
        assert final >= 0.8 * pre

    def test_no_partition_left_without_floor(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=30, count=40))
        sim.run(100)
        counts = sim.replicas.per_partition_counts()
        assert all(c >= sim.rmin for c in counts)


class TestPolicyUnit:
    def test_default_params(self):
        policy = RFHPolicy()
        assert policy.params.alpha == 0.2
        assert policy.name == "rfh"

    def test_custom_params_respected(self):
        policy = RFHPolicy(RFHParameters(beta=3.0))
        assert policy.params.beta == 3.0

    def test_actions_reference_valid_world_objects(self):
        sim = make_sim()
        policy = sim.policy
        seen = []
        orig = policy.decide

        def wrapped(obs):
            actions = orig(obs)
            seen.extend(actions)
            return actions

        sim.policy.decide = wrapped  # type: ignore[method-assign]
        sim.run(30)
        assert seen, "RFH produced no actions in 30 epochs"
        for action in seen:
            assert 0 <= action.partition < 16
