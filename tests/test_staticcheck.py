"""The determinism lint engine: every rule, suppression, baseline, output."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    ALL_RULE_IDS,
    Baseline,
    BaselineError,
    RULES,
    lint_paths,
    lint_source,
    render_github,
    render_json,
    render_text,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def check(source: str, path: str = "pkg/mod.py"):
    """Lint a dedented snippet; returns the findings list."""
    return lint_source(path, textwrap.dedent(source))


def rule_lines(source: str, rule_id: str, path: str = "pkg/mod.py") -> list[int]:
    return [f.line for f in check(source, path) if f.rule_id == rule_id and f.active]


class TestREP001UnseededRng:
    def test_global_random_call(self):
        src = """\
        import random

        def f():
            return random.random()
        """
        assert rule_lines(src, "REP001") == [4]

    def test_global_shuffle_via_alias(self):
        src = """\
        import random as rnd

        def f(items):
            rnd.shuffle(items)
        """
        assert rule_lines(src, "REP001") == [4]

    def test_from_import_function(self):
        src = """\
        from random import choice

        def f(xs):
            return choice(xs)
        """
        assert rule_lines(src, "REP001") == [4]

    def test_unseeded_numpy_default_rng(self):
        src = """\
        import numpy as np

        g = np.random.default_rng()
        """
        assert rule_lines(src, "REP001") == [3]

    def test_seeded_constructions_are_fine(self):
        src = """\
        import random
        import numpy as np

        a = random.Random(42)
        b = np.random.default_rng(7)
        """
        assert rule_lines(src, "REP001") == []

    def test_unseeded_random_class(self):
        src = """\
        import random

        a = random.Random()
        """
        assert rule_lines(src, "REP001") == [3]

    def test_bare_reference_as_callback(self):
        src = """\
        import random

        key = random.random
        """
        assert rule_lines(src, "REP001") == [3]

    def test_rng_module_itself_is_exempt(self):
        src = """\
        import numpy as np

        g = np.random.default_rng()
        """
        findings = lint_source("src/repro/sim/rng.py", textwrap.dedent(src))
        assert [f for f in findings if f.rule_id == "REP001"] == []


class TestREP002WallClock:
    def test_time_time(self):
        src = """\
        import time

        def f():
            return time.time()
        """
        assert rule_lines(src, "REP002") == [4]

    def test_perf_counter_and_monotonic(self):
        src = """\
        from time import monotonic, perf_counter

        def f():
            return perf_counter() - monotonic()
        """
        assert rule_lines(src, "REP002") == [4, 4]

    def test_datetime_now(self):
        src = """\
        from datetime import datetime

        def f():
            return datetime.now()
        """
        assert rule_lines(src, "REP002") == [4]

    def test_bare_time_reference(self):
        src = """\
        import time
        from dataclasses import field

        ts = field(default_factory=time.time)
        """
        assert rule_lines(src, "REP002") == [4]

    def test_profiler_module_is_exempt(self):
        src = """\
        import time

        def f():
            return time.perf_counter()
        """
        findings = lint_source("src/repro/obs/profiler.py", textwrap.dedent(src))
        assert [f for f in findings if f.rule_id == "REP002"] == []

    def test_sleep_is_not_a_clock_read(self):
        src = """\
        import time

        def f():
            time.sleep(0.1)
        """
        assert rule_lines(src, "REP002") == []


class TestREP003SetIteration:
    def test_for_over_set_building_list(self):
        src = """\
        def f(s: set):
            out = []
            for x in s:
                out.append(x)
            return out
        """
        assert rule_lines(src, "REP003") == [3]

    def test_sorted_wrap_is_fine(self):
        src = """\
        def f(s: set):
            out = []
            for x in sorted(s):
                out.append(x)
            return out
        """
        assert rule_lines(src, "REP003") == []

    def test_order_insensitive_body_is_fine(self):
        src = """\
        def f(s: set):
            total = 0
            for x in s:
                total += 1
            return total
        """
        assert rule_lines(src, "REP003") == []

    def test_set_literal_comprehension_into_list(self):
        src = """\
        def f(xs):
            return list({x for x in xs})
        """
        assert rule_lines(src, "REP003") == [2]

    def test_sum_over_set_is_fine(self):
        src = """\
        def f(s: set):
            return sum(v for v in s)
        """
        assert rule_lines(src, "REP003") == []

    def test_dict_view_set_algebra(self):
        src = """\
        def f(a: dict, b: dict):
            return list(a.keys() & b.keys())
        """
        assert rule_lines(src, "REP003") == [2]

    def test_plain_dict_iteration_is_fine(self):
        # CPython dicts are insertion-ordered; only sets are hash-ordered.
        src = """\
        def f(d: dict):
            return [v for v in d.values()]
        """
        assert rule_lines(src, "REP003") == []


class TestREP004FloatEquality:
    def test_float_literal_eq(self):
        src = """\
        def f(x):
            return x == 0.5
        """
        assert rule_lines(src, "REP004") == [2]

    def test_float_call_ne(self):
        src = """\
        def f(x, y):
            return float(x) != y
        """
        assert rule_lines(src, "REP004") == [2]

    def test_int_eq_is_fine(self):
        src = """\
        def f(x):
            return x == 3
        """
        assert rule_lines(src, "REP004") == []


class TestREP005MutableDefault:
    def test_list_default(self):
        src = """\
        def f(items=[]):
            return items
        """
        assert rule_lines(src, "REP005") == [1]

    def test_factory_call_default(self):
        src = """\
        def f(seen=set()):
            return seen
        """
        assert rule_lines(src, "REP005") == [1]

    def test_kwonly_dict_default(self):
        src = """\
        def f(*, cache={}):
            return cache
        """
        assert rule_lines(src, "REP005") == [1]

    def test_none_default_is_fine(self):
        src = """\
        def f(items=None, n=3, name="x"):
            return items
        """
        assert rule_lines(src, "REP005") == []


class TestREP006StreamNames:
    def test_variable_stream_name(self):
        src = """\
        def f(rng_tree, which):
            return rng_tree.stream(which)
        """
        assert rule_lines(src, "REP006") == [2]

    def test_fstring_stream_name(self):
        src = """\
        def f(rng_tree, i):
            return rng_tree.fresh(f"w-{i}")
        """
        assert rule_lines(src, "REP006") == [2]

    def test_literal_stream_name_is_fine(self):
        src = """\
        def f(rng_tree):
            return rng_tree.stream("workload")
        """
        assert rule_lines(src, "REP006") == []


class TestSuppression:
    def test_bare_noqa_suppresses_everything(self):
        src = """\
        import random

        x = random.random()  # repro: noqa
        """
        findings = check(src)
        assert all(not f.active for f in findings)
        assert any(f.suppressed for f in findings)

    def test_scoped_noqa_suppresses_only_named_rule(self):
        src = """\
        import random

        def f(x=[]):  # repro: noqa[REP005]
            return random.random() == 0.5  # repro: noqa[REP004]
        """
        findings = check(src)
        active = [f.rule_id for f in findings if f.active]
        assert active == ["REP001"]

    def test_wrong_rule_id_does_not_suppress(self):
        src = """\
        import random

        x = random.random()  # repro: noqa[REP002]
        """
        assert rule_lines(src, "REP001") == [3]


class TestBaseline:
    def test_round_trip_silences_grandfathered(self, tmp_path):
        src = textwrap.dedent(
            """\
            import random

            x = random.random()
            """
        )
        first = lint_source("m.py", src)
        baseline = Baseline.from_findings(first)
        path = tmp_path / "base.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        again = lint_source("m.py", src, baseline=loaded)
        assert [f for f in again if f.active] == []
        assert [f for f in again if f.baselined] != []

    def test_baseline_does_not_cover_new_findings(self, tmp_path):
        baseline = Baseline.from_findings(lint_source("m.py", "import random\nx = random.random()\n"))
        fresh = lint_source(
            "m.py", "import random\nx = random.random()\ny = random.random()\n",
            baseline=baseline,
        )
        # The first occurrence is grandfathered; the second is new.
        assert len([f for f in fresh if f.baselined]) == 1
        assert len([f for f in fresh if f.active]) == 1

    def test_fingerprint_survives_line_moves(self):
        a = lint_source("m.py", "import random\nx = random.random()\n")
        b = lint_source("m.py", "import random\n\n\nx = random.random()\n")
        assert a[0].fingerprint == b[0].fingerprint

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_bumped_version_is_rejected(self, tmp_path):
        baseline = Baseline.from_findings(
            lint_source("m.py", "import random\nx = random.random()\n")
        )
        payload = baseline.to_dict()
        payload["version"] = int(payload["version"]) + 1  # type: ignore[call-overload]
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="version"):
            Baseline.load(path)


class TestDriverAndRendering:
    def test_lint_paths_counts_and_exit_code(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("import random\nx = random.random()\n")
        result = lint_paths([tmp_path])
        assert result.files_checked == 2
        assert result.counts_by_rule() == {"REP001": 1}
        assert result.exit_code == 1

    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        result = lint_paths([tmp_path])
        assert result.exit_code == 0

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = lint_paths([tmp_path])
        assert result.errors and "syntax error" in result.errors[0].message
        assert result.exit_code == 1

    def test_select_restricts_rules(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import random\nx = random.random()\ny = 1.0 == x\n"
        )
        result = lint_paths([tmp_path], select=["REP004"])
        assert result.counts_by_rule() == {"REP004": 1}

    def test_unknown_select_raises(self, tmp_path):
        with pytest.raises(ValueError):
            lint_paths([tmp_path], select=["REP999"])

    def test_text_render_has_location_and_summary(self, tmp_path):
        (tmp_path / "m.py").write_text("import random\nx = random.random()\n")
        text = render_text(lint_paths([tmp_path]))
        assert "m.py:2:" in text and "REP001" in text
        assert "1 finding(s) in 1 file(s)" in text

    def test_json_render_parses(self, tmp_path):
        (tmp_path / "m.py").write_text("import random\nx = random.random()\n")
        payload = json.loads(render_json(lint_paths([tmp_path])))
        assert payload["active"] == 1
        assert payload["findings"][0]["rule"] == "REP001"

    def test_github_render_annotates(self, tmp_path):
        (tmp_path / "m.py").write_text("import random\nx = random.random()\n")
        out = render_github(lint_paths([tmp_path]))
        assert out.startswith("::error file=")
        assert "title=REP001" in out

    def test_rule_registry_is_complete(self):
        assert set(ALL_RULE_IDS) == {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP101", "REP102", "REP103", "REP104",
            "REP201", "REP202", "REP203", "REP204", "REP205",
            "AUD001", "AUD002", "AUD003",
        }
        for rule in RULES.values():
            assert rule.summary and rule.rationale


class TestDogfood:
    def test_repro_source_tree_is_clean(self):
        """The committed tree must gate at zero active findings with the
        default selection (every per-file REP rule)."""
        result = lint_paths([REPO_SRC])
        assert result.errors == []
        active = [f.location() + " " + f.rule_id for f in result.active]
        assert active == []

    def test_repro_source_tree_is_clean_with_auditors(self):
        """All three families plus the AUD project pass gate at zero."""
        result = lint_paths([REPO_SRC], select=["REP", "AUD"])
        assert result.errors == []
        active = [f.location() + " " + f.rule_id for f in result.active]
        assert active == []


class TestLintCli:
    def test_cli_lint_clean_tree(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_lint_finding_and_github_format(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "m.py").write_text("import random\nx = random.random()\n")
        assert main(["lint", str(tmp_path), "--format", "github"]) == 1
        assert "::error file=" in capsys.readouterr().out

    def test_cli_write_baseline_then_gate(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "m.py").write_text("import random\nx = random.random()\n")
        assert main(["lint", "m.py", "--write-baseline"]) == 0
        assert (tmp_path / ".repro-lint-baseline.json").exists()
        capsys.readouterr()
        # Old finding is baselined; a new one still gates.
        assert main(["lint", "m.py"]) == 0
        (tmp_path / "m.py").write_text(
            "import random\nx = random.random()\ny = random.choice([1])\n"
        )
        assert main(["lint", "m.py"]) == 1
