"""Multi-seed replication: the headline orderings are not seed luck."""

import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.errors import SimulationError
from repro.experiments import random_query_scenario
from repro.experiments.replication import MetricStats, replicate


@pytest.fixture(scope="module")
def cfg() -> SimulationConfig:
    return SimulationConfig(
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )


def _builder(config):
    return random_query_scenario(config, epochs=100)


SEEDS = (1, 2, 3)


class TestMetricStats:
    def test_of(self):
        stats = MetricStats.of([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.min == 1.0 and stats.max == 3.0
        assert stats.values == (1.0, 2.0, 3.0)

    def test_overlap(self):
        a = MetricStats.of([1.0, 2.0])
        b = MetricStats.of([1.5, 3.0])
        c = MetricStats.of([5.0, 6.0])
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)


class TestReplicate:
    def test_validation(self, cfg):
        with pytest.raises(SimulationError):
            replicate("rfh", cfg, _builder, seeds=())
        with pytest.raises(SimulationError):
            replicate("rfh", cfg, _builder, seeds=(1, 1))

    def test_unknown_metric_lookup(self, cfg):
        result = replicate("rfh", cfg, _builder, seeds=(1,), metrics=("utilization",))
        with pytest.raises(SimulationError):
            result["nope"]

    def test_seeds_actually_vary(self, cfg):
        result = replicate("rfh", cfg, _builder, seeds=SEEDS)
        assert len(set(result["total_replicas"].values)) > 1

    def test_headline_orderings_hold_across_seeds(self, cfg):
        """Fig. 3/4's core claims, for every seed rather than one:
        RFH's utilization beats random's and its replica range sits
        entirely below random's."""
        rfh = replicate("rfh", cfg, _builder, seeds=SEEDS)
        random_ = replicate("random", cfg, _builder, seeds=SEEDS)
        assert rfh["utilization"].min > random_["utilization"].max
        assert not rfh["total_replicas"].overlaps(random_["total_replicas"])
