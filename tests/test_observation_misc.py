"""Observation helpers, action dataclasses, and error hierarchy."""

import numpy as np
import pytest

import repro
from repro.errors import (
    ActionError,
    CapacityError,
    ConfigurationError,
    ReproError,
    RingError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.sim import Migrate, Replicate, Simulation, Suicide
from repro.config import SimulationConfig, WorkloadParameters


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            TopologyError,
            RingError,
            CapacityError,
            ActionError,
            SimulationError,
            WorkloadError,
        ):
            assert issubclass(exc, ReproError)

    def test_one_except_clause_catches_everything(self):
        with pytest.raises(ReproError):
            raise WorkloadError("x")


class TestActions:
    def test_actions_are_frozen_value_objects(self):
        a = Replicate(1, 2, 3, reason="r")
        assert a == Replicate(1, 2, 3, reason="r")
        with pytest.raises(AttributeError):
            a.partition = 5  # type: ignore[misc]

    def test_action_union_members(self):
        for cls in (Replicate, Migrate, Suicide):
            assert cls.__dataclass_fields__["partition"]


class TestObservationHelpers:
    def _obs(self):
        cfg = SimulationConfig(
            seed=3,
            workload=WorkloadParameters(queries_per_epoch_mean=80.0, num_partitions=8),
        )
        sim = Simulation(cfg, policy="rfh")
        captured = {}
        orig = sim.policy.decide

        def wrapped(obs):
            captured["obs"] = obs
            return orig(obs)

        sim.policy.decide = wrapped  # type: ignore[method-assign]
        sim.step()
        return sim, captured["obs"]

    def test_dimensions(self):
        sim, obs = self._obs()
        assert obs.num_partitions == 8
        assert obs.num_datacenters == 10
        assert obs.served_server.shape == (8, sim.cluster.num_servers)

    def test_holder_dc_matches_cluster(self):
        sim, obs = self._obs()
        for p in range(8):
            assert obs.holder_dc(p) == sim.cluster.dc_of(sim.replicas.holder(p))

    def test_partition_traffic_mean_is_eq17(self):
        _, obs = self._obs()
        for p in range(8):
            assert obs.partition_traffic_mean(p) == pytest.approx(
                float(np.mean(obs.traffic_dc[p]))
            )

    def test_system_average_query_matches_batch(self):
        _, obs = self._obs()
        assert np.allclose(obs.system_average_query(), obs.queries.system_average_query())


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_docstring_snippet_runs(self):
        """The __init__ docstring's quickstart must actually work."""
        from repro import Simulation, SimulationConfig

        sim = Simulation(
            SimulationConfig(
                seed=7,
                workload=WorkloadParameters(
                    queries_per_epoch_mean=50.0, num_partitions=4
                ),
            ),
            policy="rfh",
        )
        metrics = sim.run(epochs=10)
        assert 0.0 <= metrics.series("utilization").tail_mean(5) <= 1.0
