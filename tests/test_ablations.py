"""Ablation machinery at reduced scale."""

import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.experiments.ablations import (
    RandomPlacementRFHPolicy,
    alpha_sweep,
    placement_ablation,
    threshold_sweep,
)
from repro.sim import Simulation


@pytest.fixture
def cfg() -> SimulationConfig:
    return SimulationConfig(
        seed=13,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )


class TestAlphaSweep:
    def test_every_alpha_produces_a_summary(self, cfg):
        results = alpha_sweep(cfg, alphas=(0.2, 0.8), epochs=80)
        assert set(results) == {0.2, 0.8}
        for row in results.values():
            assert 0 <= row["utilization"] <= 1
            assert row["total_replicas"] >= 16
            assert row["churn"] == row["replication_total"] + row["suicide_total"]


class TestThresholdSweep:
    def test_grid_covered(self, cfg):
        results = threshold_sweep(cfg, betas=(1.5, 3.0), deltas=(0.2,), epochs=60)
        assert set(results) == {(1.5, 0.2), (3.0, 0.2)}

    def test_lazier_beta_never_needs_more_replicas(self, cfg):
        results = threshold_sweep(cfg, betas=(1.5, 3.0), deltas=(0.2,), epochs=120)
        eager = results[(1.5, 0.2)]["total_replicas"]
        lazy = results[(3.0, 0.2)]["total_replicas"]
        assert lazy <= eager * 1.15  # allow noise, forbid inversion at scale


class TestPlacementAblation:
    def test_both_variants_run(self, cfg):
        results = placement_ablation(cfg, epochs=80)
        assert set(results) == {"lowest-blocking", "random-in-dc"}
        for row in results.values():
            assert row["load_imbalance"] >= 0

    def test_random_placement_policy_is_deterministic(self, cfg):
        def run():
            sim = Simulation(
                cfg,
                policy=lambda s: RandomPlacementRFHPolicy(
                    s.config.rfh, s.rng_tree.stream("ablation-placement")
                ),
            )
            return list(sim.run(40).array("total_replicas"))

        assert run() == run()

    def test_random_placement_differs_from_blocking(self, cfg):
        base = Simulation(cfg, policy="rfh").run(60)
        blind = Simulation(
            cfg,
            policy=lambda s: RandomPlacementRFHPolicy(
                s.config.rfh, s.rng_tree.stream("ablation-placement")
            ),
        ).run(60)
        # Same decision tree, different server picks: trajectories diverge.
        assert list(base.array("served")) != list(blind.array("served"))
