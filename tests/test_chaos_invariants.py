"""The invariant checker against deliberately corrupted world state.

Each test runs a healthy simulation a few epochs, then reaches into the
internals to break exactly one conservation rule and asserts the checker
pins the violation to the right invariant, epoch and offender.
"""

from __future__ import annotations

import pytest

from repro.chaos import INVARIANT_NAMES, InvariantChecker, InvariantViolation
from repro.config import SimulationConfig, WorkloadParameters
from repro.sim.engine import Simulation


def healthy_sim(epochs: int = 5) -> Simulation:
    config = SimulationConfig(
        seed=99,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )
    sim = Simulation(config, invariants=False)
    sim.run(epochs)
    return sim


class TestHealthyState:
    def test_clean_world_has_no_violations(self):
        sim = healthy_sim()
        checker = InvariantChecker()
        assert checker.collect(sim.clock.epoch, sim.cluster, sim.replicas) == []
        assert checker.violations_seen == 0

    def test_invariant_names_are_stable(self):
        assert INVARIANT_NAMES == (
            "no-copy-on-dead-server",
            "live-holder",
            "replica-matrix",
            "storage-accounting",
        )


class TestCorruptedReplicaMap:
    def test_copy_on_dead_server_detected(self):
        """Failing a server behind the replica map's back (no drop_server)
        leaves recorded copies on a dead machine."""
        sim = healthy_sim()
        partition = 0
        sid = sim.replicas.holder(partition)
        sim.cluster.fail_server(sid)  # replica map not told
        checker = InvariantChecker()
        violations = checker.collect(sim.clock.epoch, sim.cluster, sim.replicas)
        assert any(
            v.invariant == "no-copy-on-dead-server" and v.server == sid
            for v in violations
        )

    def test_violation_names_epoch_and_partition(self):
        """The acceptance check: a corrupted ReplicaMap raises an
        InvariantViolation whose message names epoch and partition."""
        sim = healthy_sim()
        partition = 3
        sid = sim.replicas.holder(partition)
        sim.cluster.fail_server(sid)
        checker = InvariantChecker(strict=True)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(41, sim.cluster, sim.replicas)
        violation = excinfo.value
        assert violation.epoch == 41
        assert violation.partition is not None
        assert "epoch 41" in str(violation)
        assert f"partition {violation.partition}" in str(violation)

    def test_holder_without_copy_detected(self):
        sim = healthy_sim()
        partition = 1
        holder = sim.replicas.holder(partition)
        # Re-point the holder at an alive server that holds no copy.
        holding = {sid for sid, _ in sim.replicas.servers_with(partition)}
        stranger = next(
            s.sid
            for s in sim.cluster.alive_servers()
            if s.sid not in holding
        )
        sim.replicas._holder[partition] = stranger
        checker = InvariantChecker()
        violations = checker.collect(7, sim.cluster, sim.replicas)
        assert any(
            v.invariant == "live-holder"
            and v.partition == partition
            and v.server == stranger
            for v in violations
        )
        assert holder != stranger

    def test_phantom_count_detected(self):
        """A count entry nobody stored: replica matrix and storage split."""
        sim = healthy_sim()
        partition = 2
        stranger = next(
            s.sid
            for s in sim.cluster.alive_servers()
            if sim.replicas.count(partition, s.sid) == 0
        )
        sim.replicas._counts[partition][stranger] = 1  # no store_mb happened
        checker = InvariantChecker()
        violations = checker.collect(9, sim.cluster, sim.replicas)
        assert any(
            v.invariant == "storage-accounting" and v.server == stranger
            for v in violations
        )


class TestCorruptedStorage:
    def test_storage_drift_detected(self):
        sim = healthy_sim()
        server = sim.cluster.alive_servers()[0]
        server._storage_used_mb += 1.0
        checker = InvariantChecker()
        violations = checker.collect(11, sim.cluster, sim.replicas)
        assert any(
            v.invariant == "storage-accounting" and v.server == server.sid
            for v in violations
        )

    def test_tolerance_absorbs_float_noise(self):
        sim = healthy_sim()
        server = sim.cluster.alive_servers()[0]
        server._storage_used_mb += 1e-9
        checker = InvariantChecker()
        assert checker.collect(12, sim.cluster, sim.replicas) == []


class TestEngineIntegration:
    def test_engine_traces_and_raises_in_strict_mode(self):
        """A corruption mid-run surfaces at the next epoch boundary with
        an invariant_violation trace record before the raise."""
        from repro.obs.trace import RingBufferTracer

        tracer = RingBufferTracer()
        config = SimulationConfig(
            seed=5,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
            ),
        )
        sim = Simulation(config, invariants=True, tracer=tracer)
        sim.run(3)
        # Storage drift is invisible to every engine path except the
        # invariant check, so the run only dies at the epoch boundary.
        server = sim.cluster.alive_servers()[0]
        server._storage_used_mb += 5.0
        with pytest.raises(InvariantViolation) as excinfo:
            sim.step()
        assert excinfo.value.invariant == "storage-accounting"
        records = tracer.events(kind="invariant_violation")
        assert records
        assert records[0].reason in INVARIANT_NAMES

    def test_engine_collect_mode_keeps_running(self):
        config = SimulationConfig(
            seed=5,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
            ),
        )
        checker = InvariantChecker(strict=False)
        sim = Simulation(config, invariants=checker)
        sim.run(3)
        server = sim.cluster.alive_servers()[0]
        server._storage_used_mb += 5.0
        sim.run(2)
        assert checker.violations_seen > 0

    def test_env_var_opt_in_is_active_in_tests(self, monkeypatch):
        """conftest sets REPRO_CHECK_INVARIANTS: the default (None) spec
        resolves to a strict checker for every test-suite simulation."""
        config = SimulationConfig(
            seed=5,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16
            ),
        )
        sim = Simulation(config)
        assert sim.invariants is not None and sim.invariants.strict
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert Simulation(config).invariants is None
