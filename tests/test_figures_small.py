"""Figure harnesses at reduced scale (full scale runs in benchmarks/).

These confirm each figN function produces its panels, notes and checks
on a small world; the *shape assertions* at paper scale live in the
benchmark suite where the full epoch counts run.
"""

import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.experiments import (
    fig3_utilization,
    fig4_replica_number,
    fig5_replication_cost,
    fig6_migration_times,
    fig7_migration_cost,
    fig8_load_imbalance,
    fig9_path_length,
)


@pytest.fixture(scope="module")
def cfg() -> SimulationConfig:
    return SimulationConfig(
        seed=31,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )


SMALL = dict(epochs_random=80, epochs_flash=120)


class TestPanelsAndNotes:
    def test_fig3_panels(self, cfg):
        result = fig3_utilization(cfg, **SMALL)
        assert set(result.panels) == {"3a", "3b"}
        for panel in result.panels.values():
            assert set(panel) == {"rfh", "random", "owner", "request"}
        assert len(result.panels["3a"]["rfh"]) == 80
        assert len(result.panels["3b"]["rfh"]) == 120

    def test_fig4_panels(self, cfg):
        result = fig4_replica_number(cfg, **SMALL)
        assert set(result.panels) == {"4a", "4b", "4c", "4d"}
        # Average panel == total / partitions.
        total = result.panels["4a"]["rfh"]
        avg = result.panels["4b"]["rfh"]
        assert (total / 16 == avg).all()

    def test_fig5_cumulative_monotone(self, cfg):
        result = fig5_replication_cost(cfg, epochs_random=60, epochs_flash=120)
        for policy, series in result.panels["5a"].items():
            assert (series[1:] >= series[:-1]).all(), policy

    def test_fig6_counts_cumulative(self, cfg):
        result = fig6_migration_times(cfg, **SMALL)
        assert (result.panels["6a"]["random"] == 0).all()

    def test_fig7_costs(self, cfg):
        result = fig7_migration_cost(cfg, epochs_random=60, epochs_flash=120)
        assert (result.panels["7a"]["owner"] == 0).all()

    def test_fig8_series_nonnegative(self, cfg):
        result = fig8_load_imbalance(cfg, epochs_random=60, epochs_flash=120)
        for panel in result.panels.values():
            for series in panel.values():
                assert (series >= 0).all()

    def test_fig9_notes_contain_steady_values(self, cfg):
        result = fig9_path_length(cfg, epochs_random=60, epochs_flash=120)
        assert "9a steady owner" in result.notes
        assert "9b steady rfh" in result.notes
