"""Physical cluster substrate: servers, datacenters, membership."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterParameters
from repro.errors import CapacityError, SimulationError, TopologyError
from repro.geo.labels import GeoLabel
from repro.sim.rng import RngTree


class TestServerBasics:
    def test_default_cluster_has_100_servers(self, cluster):
        assert cluster.num_servers == 100
        assert cluster.num_datacenters == 10
        for dc in range(10):
            assert len(cluster.alive_in_dc(dc)) == 10

    def test_sids_are_dense_and_ordered(self, cluster):
        assert [s.sid for s in cluster.servers] == list(range(100))

    def test_labels_are_unique_and_well_formed(self, cluster):
        labels = {str(s.label) for s in cluster.servers}
        assert len(labels) == 100
        for s in cluster.servers:
            assert isinstance(s.label, GeoLabel)

    def test_capacities_are_heterogeneous(self, cluster):
        caps = {round(s.replica_capacity, 6) for s in cluster.servers}
        assert len(caps) > 50  # "their capacities are different from each other"

    def test_capacities_within_jitter_band(self, cluster):
        params = ClusterParameters()
        lo = params.replica_capacity_mean * (1 - params.capacity_jitter)
        hi = params.replica_capacity_mean * (1 + params.capacity_jitter)
        for s in cluster.servers:
            assert lo <= s.replica_capacity <= hi

    def test_cluster_is_seed_deterministic(self, hierarchy):
        a = Cluster(hierarchy, ClusterParameters(), RngTree(5).stream("capacity"))
        b = Cluster(hierarchy, ClusterParameters(), RngTree(5).stream("capacity"))
        assert [s.replica_capacity for s in a.servers] == [
            s.replica_capacity for s in b.servers
        ]

    def test_dc_of(self, cluster):
        assert cluster.dc_of(0) == 0
        assert cluster.dc_of(99) == 9

    def test_unknown_server_raises(self, cluster):
        with pytest.raises(TopologyError):
            cluster.server(100)
        with pytest.raises(TopologyError):
            cluster.datacenter(10)


class TestStorage:
    def test_store_and_release(self, cluster):
        s = cluster.server(0)
        s.store(100.0)
        assert s.storage_used_mb == 100.0
        assert 0 < s.storage_utilization < 1
        s.release(40.0)
        assert s.storage_used_mb == pytest.approx(60.0)

    def test_store_beyond_capacity_raises(self, cluster):
        s = cluster.server(0)
        with pytest.raises(CapacityError):
            s.store(s.storage_capacity_mb + 1)

    def test_release_more_than_stored_raises(self, cluster):
        s = cluster.server(0)
        s.store(1.0)
        with pytest.raises(SimulationError):
            s.release(2.0)

    def test_negative_sizes_rejected(self, cluster):
        s = cluster.server(0)
        with pytest.raises(CapacityError):
            s.store(-1.0)
        with pytest.raises(CapacityError):
            s.release(-1.0)

    def test_storage_gate_eq19(self, cluster):
        """Eq. 19: a server at or above phi refuses new data."""
        s = cluster.server(0)
        phi = 0.7
        s.store(0.69 * s.storage_capacity_mb)
        assert s.storage_gate_open(0.001, phi)
        s.store(0.01 * s.storage_capacity_mb)
        assert not s.storage_gate_open(0.5, phi)

    def test_store_on_dead_server_raises(self, cluster):
        s = cluster.server(0)
        s.fail()
        with pytest.raises(CapacityError):
            s.store(1.0)


class TestBandwidthBudgets:
    def test_budgets_start_full(self, cluster):
        s = cluster.server(0)
        assert s.replication_budget_mb == 300.0
        assert s.migration_budget_mb == 100.0

    def test_consume_and_refuse(self, cluster):
        s = cluster.server(0)
        assert s.consume_replication_bandwidth(299.0)
        assert not s.consume_replication_bandwidth(2.0)
        assert s.consume_migration_bandwidth(100.0)
        assert not s.consume_migration_bandwidth(0.5)

    def test_reset_refills(self, cluster):
        s = cluster.server(0)
        s.consume_replication_bandwidth(300.0)
        s.consume_migration_bandwidth(100.0)
        s.reset_epoch_budgets()
        assert s.replication_budget_mb == 300.0
        assert s.migration_budget_mb == 100.0


class TestFailureRecovery:
    def test_fail_wipes_storage(self, cluster):
        s = cluster.server(3)
        s.store(50.0)
        cluster.fail_server(3)
        assert not s.alive
        assert s.storage_used_mb == 0.0

    def test_double_fail_raises(self, cluster):
        cluster.fail_server(3)
        with pytest.raises(SimulationError):
            cluster.fail_server(3)

    def test_recover_restores_empty(self, cluster):
        cluster.fail_server(3)
        cluster.recover_server(3)
        s = cluster.server(3)
        assert s.alive and s.storage_used_mb == 0.0

    def test_recover_alive_server_raises(self, cluster):
        with pytest.raises(SimulationError):
            cluster.recover_server(3)

    def test_alive_lists_shrink(self, cluster):
        cluster.fail_server(0)
        assert 0 not in cluster.alive_server_ids()
        assert len(cluster.alive_in_dc(0)) == 9
        assert len(cluster.alive_servers()) == 99


class TestJoin:
    def test_join_extends_cluster(self, cluster):
        before = cluster.num_servers
        server = cluster.join_server(4)
        assert server.sid == before
        assert cluster.num_servers == before + 1
        assert server.dc == 4
        assert server in cluster.datacenter(4).servers

    def test_joined_server_label_in_expansion_room(self, cluster):
        server = cluster.join_server(0)
        assert server.label.room == "C02"  # default has one room: C01

    def test_join_unknown_dc_raises(self, cluster):
        with pytest.raises(TopologyError):
            cluster.join_server(10)


class TestDatacenter:
    def test_total_replica_capacity_counts_alive_only(self, cluster):
        dc = cluster.datacenter(0)
        before = dc.total_replica_capacity()
        lost = cluster.server(0).replica_capacity
        cluster.fail_server(0)
        assert dc.total_replica_capacity() == pytest.approx(before - lost)

    def test_num_alive(self, cluster):
        dc = cluster.datacenter(0)
        assert dc.num_alive == 10
        cluster.fail_server(1)
        assert dc.num_alive == 9

    def test_wrong_dc_server_rejected(self, cluster, hierarchy):
        from repro.cluster.datacenter import Datacenter

        wrong = cluster.server(50)  # lives in DC 5
        with pytest.raises(TopologyError):
            Datacenter(hierarchy.site(0), [wrong])


class TestFailureInjectorValidation:
    """Both error paths of ``choose_victims``, in precedence order: a
    negative count is rejected before the alive-count comparison."""

    @staticmethod
    def injector(cluster):
        from repro.cluster import FailureInjector

        return FailureInjector(cluster, RngTree(7).stream("failures"))

    def test_negative_count_rejected_first(self, cluster):
        with pytest.raises(SimulationError, match=">= 0"):
            self.injector(cluster).choose_victims(-1)

    def test_negative_count_rejected_even_with_nobody_alive(self, cluster):
        for sid in list(cluster.alive_server_ids()):
            cluster.fail_server(sid)
        # The old validation order compared against len(alive) first and
        # would have reported "cannot fail -1 servers" here.
        with pytest.raises(SimulationError, match=">= 0"):
            self.injector(cluster).choose_victims(-1)

    def test_count_above_alive_rejected(self, cluster):
        cluster.fail_server(0)
        with pytest.raises(SimulationError, match="only 99 are alive"):
            self.injector(cluster).choose_victims(100)

    def test_count_equal_to_alive_is_the_boundary(self, cluster):
        cluster.fail_server(0)
        victims = self.injector(cluster).choose_victims(99)
        assert len(victims) == 99
        assert set(victims) == set(cluster.alive_server_ids())

    def test_zero_count_is_legal(self, cluster):
        assert self.injector(cluster).choose_victims(0) == ()
