"""Time-series recording, the ``.tsdb.json`` artifact, cross-run
diffing and the offline HTML dashboard (``repro.obs.timeseries``)."""

import json
import re

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import TsdbError
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import random_query_scenario
from repro.obs.timeseries import (
    Marker,
    TimeseriesRecorder,
    TsdbArtifact,
    diff_artifacts,
    polarity_of,
    render_dashboard,
    render_diff_json,
    render_diff_markdown,
    render_diff_text,
    tolerance_of,
)


def _recorder_with(epochs, column="x", **kwargs):
    rec = TimeseriesRecorder(**kwargs)
    for epoch, value in epochs:
        rec.sample(epoch, {column: value})
    return rec


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
class TestRecorder:
    def test_records_every_epoch_at_stride_one(self):
        rec = _recorder_with([(e, float(e)) for e in range(10)])
        art = rec.artifact()
        assert list(art.epochs) == list(range(10))
        assert list(art.column("x")) == [float(e) for e in range(10)]
        assert art.effective_stride == 1

    def test_stride_skips_off_grid_epochs(self):
        rec = _recorder_with([(e, float(e)) for e in range(10)], stride=3)
        art = rec.artifact()
        assert list(art.epochs) == [0, 3, 6, 9]
        assert art.effective_stride == 3

    def test_validation(self):
        with pytest.raises(TsdbError):
            TimeseriesRecorder(stride=0)
        with pytest.raises(TsdbError):
            TimeseriesRecorder(point_budget=2)

    def test_budget_triggers_2to1_downsampling(self):
        rec = _recorder_with(
            [(e, float(e)) for e in range(64)], point_budget=16
        )
        art = rec.artifact()
        assert rec.decimation == 4  # doubled twice: 64 samples / 16 budget
        assert art.num_points <= 16 + 1  # + possible pending half-bucket
        # Every stored point is the exact mean of the epochs it covers:
        # with decimation 4 the first point averages epochs 0..3 -> 1.5.
        assert art.column("x")[0] == pytest.approx(1.5)
        # The whole-run mean survives downsampling exactly.
        assert art.column("x").mean() == pytest.approx(np.arange(64).mean())

    def test_downsampled_points_cover_contiguous_ranges(self):
        rec = _recorder_with([(e, 1.0) for e in range(100)], point_budget=16)
        art = rec.artifact()
        # A constant signal must stay exactly constant through any
        # number of compressions (means of means of a constant).
        assert np.all(art.column("x") == 1.0)
        diffs = np.diff(art.epochs)
        assert np.all(diffs[:-1] == art.decimation)  # uniform grid

    def test_new_columns_backfilled_with_zero(self):
        rec = TimeseriesRecorder()
        rec.sample(0, {"a": 1.0})
        rec.sample(1, {"a": 1.0, "b": 5.0})
        art = rec.artifact()
        assert list(art.column("b")) == [0.0, 5.0]

    def test_non_finite_contributes_zero(self):
        rec = TimeseriesRecorder()
        rec.sample(0, {"x": float("nan")})
        rec.sample(1, {"x": float("inf")})
        art = rec.artifact()
        assert list(art.column("x")) == [0.0, 0.0]

    def test_artifact_is_a_nondestructive_snapshot(self):
        rec = _recorder_with([(e, float(e)) for e in range(5)], point_budget=16)
        first = rec.artifact()
        rec.sample(5, {"x": 5.0})
        second = rec.artifact()
        assert first.num_points == 5
        assert second.num_points == 6

    def test_markers_fold_repeats_and_respect_budget(self):
        rec = TimeseriesRecorder()
        for _ in range(30):
            rec.mark(7, "server_fail", "chaos")
        rec.mark(9, "link_change", "wan")
        art = rec.artifact()
        assert art.markers[0] == Marker(7, "server_fail", "chaos", 30)
        assert art.markers[1].kind == "link_change"

    def test_marker_budget_drops_and_counts(self):
        from repro.obs.timeseries.recorder import MARKER_BUDGET

        rec = TimeseriesRecorder()
        for i in range(MARKER_BUDGET + 10):
            rec.mark(i, "k", str(i))
        assert len(rec.artifact().markers) == MARKER_BUDGET
        assert rec.markers_dropped == 10
        assert rec.artifact().meta["markers_dropped"] == 10


# ----------------------------------------------------------------------
# Artifact round-trip
# ----------------------------------------------------------------------
class TestArtifact:
    def test_save_load_roundtrip(self, tmp_path):
        rec = _recorder_with([(e, float(e) * 0.5) for e in range(8)])
        rec.mark(3, "server_fail", "rack")
        rec.meta["policy"] = "rfh"
        path = tmp_path / "run.tsdb.json"
        saved = rec.save(path)
        loaded = TsdbArtifact.load(path)
        assert list(loaded.epochs) == list(saved.epochs)
        assert np.allclose(loaded.column("x"), saved.column("x"))
        assert loaded.markers == saved.markers
        assert loaded.meta["policy"] == "rfh"
        assert loaded.stride == 1 and loaded.decimation == 1

    def test_nan_roundtrips_through_null(self, tmp_path):
        art = TsdbArtifact(
            epochs=np.array([0, 1]),
            columns={"x": np.array([1.0, float("nan")])},
        )
        path = tmp_path / "nan.tsdb.json"
        art.save(path)
        assert "NaN" not in path.read_text()  # strict JSON
        loaded = TsdbArtifact.load(path)
        assert loaded.column("x")[0] == 1.0
        assert np.isnan(loaded.column("x")[1])

    def test_rejects_wrong_format_version_and_garbage(self, tmp_path):
        good = TsdbArtifact(epochs=np.array([0]), columns={"x": np.array([1.0])})
        raw = good.to_dict()
        with pytest.raises(TsdbError):
            TsdbArtifact.from_dict({**raw, "format": "something-else"})
        with pytest.raises(TsdbError):
            TsdbArtifact.from_dict({**raw, "version": 999})
        bad = tmp_path / "bad.tsdb.json"
        bad.write_text("{not json")
        with pytest.raises(TsdbError):
            TsdbArtifact.load(bad)
        with pytest.raises(TsdbError):
            TsdbArtifact.load(tmp_path / "missing.tsdb.json")

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(TsdbError):
            TsdbArtifact(
                epochs=np.array([0, 1]), columns={"x": np.array([1.0])}
            )

    def test_unknown_column_is_a_tsdb_error(self):
        art = TsdbArtifact(epochs=np.array([0]), columns={"x": np.array([1.0])})
        with pytest.raises(TsdbError):
            art.column("zzz")


# ----------------------------------------------------------------------
# Diff engine
# ----------------------------------------------------------------------
def _artifact(columns, epochs=None, **meta):
    n = len(next(iter(columns.values())))
    return TsdbArtifact(
        epochs=np.array(epochs if epochs is not None else range(n)),
        columns={k: np.asarray(v, dtype=np.float64) for k, v in columns.items()},
        meta=meta,
    )


class TestDiff:
    def test_identical_runs_unchanged_everywhere(self):
        values = {"utilization": np.linspace(0.2, 0.8, 40)}
        report = diff_artifacts(_artifact(values), _artifact(values))
        assert report.verdict == "unchanged"
        assert report.exit_code() == 0
        assert report.unchanged_count == 1

    def test_lower_better_increase_is_a_regression(self):
        base = _artifact({"unserved": [10.0] * 40})
        cand = _artifact({"unserved": [20.0] * 40})
        report = diff_artifacts(base, cand)
        assert report.verdict == "regressed"
        assert report.exit_code() == 1
        assert report.columns[0].exceeded  # which stats tripped

    def test_higher_better_increase_is_an_improvement(self):
        base = _artifact({"utilization": [0.5] * 40})
        cand = _artifact({"utilization": [0.7] * 40})
        report = diff_artifacts(base, cand)
        assert report.verdict == "improved"
        assert report.exit_code() == 0

    def test_neutral_columns_report_changed_but_never_gate(self):
        base = _artifact({"traffic_dc/0": [100.0] * 40})
        cand = _artifact({"traffic_dc/0": [300.0] * 40})
        report = diff_artifacts(base, cand)
        assert report.verdict == "changed"
        assert report.exit_code() == 0

    def test_within_tolerance_is_unchanged(self):
        base = _artifact({"utilization": [0.500] * 40})
        cand = _artifact({"utilization": [0.505] * 40})  # +1% < 5% rel tol
        assert diff_artifacts(base, cand).verdict == "unchanged"

    def test_cli_tolerance_overrides_defaults(self):
        base = _artifact({"utilization": [0.50] * 40})
        cand = _artifact({"utilization": [0.45] * 40})  # -10%
        assert diff_artifacts(base, cand).verdict == "regressed"
        assert diff_artifacts(base, cand, rel=0.25).verdict == "unchanged"

    def test_column_filter_restricts_with_globs(self):
        base = _artifact({"unserved": [1.0] * 40, "utilization": [0.9] * 40})
        cand = _artifact({"unserved": [9.0] * 40, "utilization": [0.1] * 40})
        report = diff_artifacts(base, cand, columns=("unserved",))
        assert [c.name for c in report.columns] == ["unserved"]
        report = diff_artifacts(base, cand, columns=("ut*",))
        assert [c.name for c in report.columns] == ["utilization"]

    def test_disjoint_columns_reported_not_diffed(self):
        base = _artifact({"a_only": [1.0] * 4, "utilization": [0.5] * 4})
        cand = _artifact({"b_only": [1.0] * 4, "utilization": [0.5] * 4})
        report = diff_artifacts(base, cand)
        assert report.only_in_baseline == ("a_only",)
        assert report.only_in_candidate == ("b_only",)
        assert [c.name for c in report.columns] == ["utilization"]

    def test_different_grids_align_by_interpolation(self):
        base = _artifact({"utilization": [0.5] * 40})  # epochs 0..39
        cand = _artifact(
            {"utilization": [0.5] * 20}, epochs=range(0, 40, 2)
        )  # stride 2, same span
        assert diff_artifacts(base, cand).verdict == "unchanged"

    def test_no_overlap_is_a_tsdb_error(self):
        base = _artifact({"x": [1.0] * 4}, epochs=range(0, 4))
        cand = _artifact({"x": [1.0] * 4}, epochs=range(100, 104))
        with pytest.raises(TsdbError):
            diff_artifacts(base, cand)

    def test_polarity_and_tolerance_tables(self):
        assert polarity_of("utilization") == +1
        assert polarity_of("unserved") == -1
        assert polarity_of("phase_s/serve") == -1
        assert polarity_of("traffic_dc/3") == 0
        assert polarity_of("never-heard-of-it") == 0
        assert tolerance_of("phase_s/serve").rel == pytest.approx(0.50)
        assert tolerance_of("utilization").rel == pytest.approx(0.05)
        assert tolerance_of("utilization", rel=0.2).rel == pytest.approx(0.2)

    def test_renderers_cover_all_formats(self):
        base = _artifact({"unserved": [10.0] * 40}, policy="rfh", seed=7)
        cand = _artifact({"unserved": [20.0] * 40}, policy="rfh", seed=7)
        report = diff_artifacts(base, cand)
        text = render_diff_text(report)
        assert "REGRESSED" in text and "unserved" in text
        md = render_diff_markdown(report)
        assert "| column |" in md and "**regressed**" in md
        payload = json.loads(render_diff_json(report))
        assert payload["verdict"] == "regressed"
        assert payload["counts"]["regressed"] == 1

    def test_verbose_includes_unchanged_rows(self):
        values = {"utilization": [0.5] * 40}
        report = diff_artifacts(_artifact(values), _artifact(values))
        assert "utilization" not in render_diff_text(report)
        assert "utilization" in render_diff_text(report, verbose=True)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
def _run(epochs=40, chaos=None, timeseries=None, **cfg):
    scenario = random_query_scenario(SimulationConfig(seed=11, **cfg), epochs=epochs)
    if chaos is not None:
        import dataclasses

        from repro.experiments.scenarios import chaos_schedule

        scenario = dataclasses.replace(scenario, chaos=chaos_schedule(chaos, epochs))
    rec = timeseries if timeseries is not None else TimeseriesRecorder()
    result = run_experiment("rfh", scenario, timeseries=rec)
    return result, rec.artifact()


class TestEngineIntegration:
    def test_one_point_per_epoch_with_metric_and_traffic_columns(self):
        result, art = _run(epochs=30)
        assert list(art.epochs) == list(range(30))
        assert "utilization" in art.columns
        # The recorded column equals the collector's series exactly.
        np.testing.assert_allclose(
            art.column("utilization"), result.series("utilization")
        )
        dc_cols = [c for c in art.columns if c.startswith("traffic_dc/")]
        assert len(dc_cols) == 10  # Table I: ten datacenters

    def test_meta_stamped_by_runner(self):
        _, art = _run(epochs=5)
        assert art.meta["policy"] == "rfh"
        assert art.meta["scenario"] == "random-query"
        assert art.meta["seed"] == 11
        assert art.meta["epochs"] == 5

    def test_same_seed_runs_diff_unchanged(self):
        _, a = _run(epochs=30)
        _, b = _run(epochs=30)
        report = diff_artifacts(a, b)
        assert report.verdict == "unchanged"
        assert report.exit_code() == 0

    def test_chaos_run_emits_markers_and_chaos_meta(self):
        _, art = _run(epochs=60, chaos="rack-outage")
        assert art.meta["chaos"] == "rack-outage"
        kinds = {m.kind for m in art.markers}
        assert "server_failure" in kinds

    def test_instrument_scalars_and_phase_timings_sampled(self):
        from repro.obs import InstrumentRegistry, PhaseProfiler
        from repro.sim.engine import Simulation

        rec = TimeseriesRecorder()
        sim = Simulation(
            SimulationConfig(seed=3),
            policy="rfh",
            instruments=InstrumentRegistry(),
            profiler=PhaseProfiler(),
            timeseries=rec,
        )
        sim.run(20)
        art = rec.artifact()
        assert any(c.startswith("counter/") or c.startswith("gauge/") for c in art.columns)
        assert "phase_s/serve" in art.columns
        assert art.column("phase_s/serve").max() > 0.0

    def test_recorder_does_not_perturb_the_simulation(self):
        with_rec, _ = _run(epochs=30)
        scenario = random_query_scenario(SimulationConfig(seed=11), epochs=30)
        without = run_experiment("rfh", scenario)
        np.testing.assert_array_equal(
            with_rec.series("utilization"), without.series("utilization")
        )
        np.testing.assert_array_equal(
            with_rec.series("total_replicas"), without.series("total_replicas")
        )


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
class TestDashboard:
    @pytest.fixture(scope="class")
    def artifacts(self):
        _, base = _run(epochs=40)
        _, chaos = _run(epochs=40, chaos="rack-outage")
        return base, chaos

    def test_self_contained_offline_html(self, artifacts):
        base, chaos = artifacts
        html = render_dashboard(chaos, base)
        assert html.lstrip().lower().startswith("<!doctype html>")
        assert not re.search(r"https?://", html)  # zero external references
        assert "<svg" in html and "</html>" in html

    def test_panels_markers_and_tiles_present(self, artifacts):
        base, chaos = artifacts
        html = render_dashboard(chaos, base)
        for needle in (
            "DC utilization",
            "Replica count",
            "Traffic per datacenter",
            "SLA",
            "marker-rule",  # chaos event rules
            "tile",  # headline tiles
        ):
            assert needle in html, needle

    def test_panel_data_blocks_are_valid_json(self, artifacts):
        _, chaos = artifacts
        html = render_dashboard(chaos)
        blocks = re.findall(
            r'<script type="application/json"[^>]*>(.*?)</script>', html, re.S
        )
        assert blocks
        for block in blocks:
            json.loads(block)

    def test_runs_without_baseline_and_with_title(self, artifacts):
        base, _ = artifacts
        html = render_dashboard(base, title="My run")
        assert "My run" in html

    def test_dark_mode_palette_present(self, artifacts):
        base, _ = artifacts
        html = render_dashboard(base)
        assert "prefers-color-scheme: dark" in html
