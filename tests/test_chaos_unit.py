"""Unit coverage for the chaos building blocks: domains, schedules,
controller compilation, and the engine-facing chaos events."""

from __future__ import annotations

import pytest

from repro.chaos import (
    ChaosController,
    ChaosSchedule,
    CorrelatedFailure,
    FAULT_SCOPES,
    FaultDomain,
    FaultDomainIndex,
    Flapping,
    RollingOutage,
    WanPartition,
)
from repro.errors import ConfigurationError, SimulationError, TopologyError
from repro.net.routing import Router
from repro.sim.events import (
    ChaosFailureEvent,
    ChaosRecoveryEvent,
    LinkFailureEvent,
    LinkRecoveryEvent,
)
from repro.sim.rng import RngTree


@pytest.fixture
def index(cluster) -> FaultDomainIndex:
    return FaultDomainIndex(cluster)


class TestFaultDomains:
    def test_default_cluster_domain_counts(self, index):
        # 10 DCs x 1 room x 2 racks x 5 servers.
        assert index.num_domains("server") == 100
        assert index.num_domains("rack") == 20
        assert index.num_domains("room") == 10
        assert index.num_domains("datacenter") == 10

    def test_domains_partition_the_cluster(self, index):
        for scope in ("rack", "room", "datacenter"):
            sids = [sid for d in index.domains(scope) for sid in d.sids]
            assert sorted(sids) == list(range(100))

    def test_keys_follow_label_hierarchy(self, index):
        assert index.domain("dc:3").scope == "datacenter"
        rack = index.domain("dc:3/C01/R02")
        assert rack.scope == "rack"
        assert len(rack.sids) == 5

    def test_unknown_scope_and_key_raise(self, index):
        with pytest.raises(SimulationError):
            index.domains("continent")
        with pytest.raises(SimulationError):
            index.domain("dc:99")

    def test_empty_domain_rejected(self):
        with pytest.raises(SimulationError):
            FaultDomain("rack", "dc:0/C01/R01", ())


class TestScheduleValidation:
    def test_scope_checked(self):
        with pytest.raises(ConfigurationError):
            CorrelatedFailure(epoch=1, scope="galaxy")

    def test_negative_epoch_rejected(self):
        with pytest.raises(ConfigurationError):
            CorrelatedFailure(epoch=-1)

    def test_domain_keys_must_match_domains(self):
        with pytest.raises(ConfigurationError):
            CorrelatedFailure(epoch=1, domains=2, domain_keys=("dc:1",))

    def test_flapping_period(self):
        flap = Flapping(start_epoch=0, up_epochs=4, down_epochs=2)
        assert flap.period == 6

    def test_schedule_rejects_non_injections(self):
        with pytest.raises(ConfigurationError):
            ChaosSchedule(name="bad", injections=("not-an-injection",))

    def test_earliest_epoch(self):
        schedule = ChaosSchedule(
            "s",
            (
                CorrelatedFailure(epoch=9),
                RollingOutage(start_epoch=4),
                Flapping(start_epoch=7),
            ),
        )
        assert schedule.earliest_epoch() == 4
        assert ChaosSchedule("empty").earliest_epoch() is None
        assert len(schedule) == 3


class TestControllerCompilation:
    def compile(self, schedule, cluster, hierarchy, wan, seed=7):
        return ChaosController(
            schedule,
            FaultDomainIndex(cluster),
            hierarchy,
            wan,
            RngTree(seed).stream("chaos"),
        )

    def test_pinned_domain_keys_hit_exactly_those_servers(
        self, cluster, hierarchy, wan, index
    ):
        schedule = ChaosSchedule(
            "pinned",
            (
                CorrelatedFailure(
                    epoch=3, scope="datacenter", domains=1,
                    domain_keys=("dc:7",), downtime=4,
                ),
            ),
        )
        controller = self.compile(schedule, cluster, hierarchy, wan)
        events = controller.compiled_events()
        assert len(events) == 2
        fail, recover = events
        assert isinstance(fail, ChaosFailureEvent) and fail.epoch == 3
        assert isinstance(recover, ChaosRecoveryEvent) and recover.epoch == 7
        assert fail.sids == index.domain("dc:7").sids
        assert fail.sids == recover.sids

    def test_permanent_outage_has_no_recovery(self, cluster, hierarchy, wan):
        schedule = ChaosSchedule(
            "perm", (CorrelatedFailure(epoch=2, scope="rack", downtime=None),)
        )
        events = self.compile(schedule, cluster, hierarchy, wan).compiled_events()
        assert len(events) == 1
        assert isinstance(events[0], ChaosFailureEvent)

    def test_rolling_outage_staggers(self, cluster, hierarchy, wan):
        schedule = ChaosSchedule(
            "roll",
            (RollingOutage(start_epoch=10, domains=3, stride=5, downtime=4),),
        )
        events = self.compile(schedule, cluster, hierarchy, wan).compiled_events()
        fails = [e for e in events if isinstance(e, ChaosFailureEvent)]
        heals = [e for e in events if isinstance(e, ChaosRecoveryEvent)]
        assert [e.epoch for e in fails] == [10, 15, 20]
        assert [e.epoch for e in heals] == [14, 19, 24]
        # Distinct domains: no server fails twice.
        all_sids = [sid for e in fails for sid in e.sids]
        assert len(all_sids) == len(set(all_sids))

    def test_too_many_domains_raise(self, cluster, hierarchy, wan):
        schedule = ChaosSchedule(
            "big", (CorrelatedFailure(epoch=1, scope="datacenter", domains=11),)
        )
        with pytest.raises(ConfigurationError):
            self.compile(schedule, cluster, hierarchy, wan)

    def test_wan_partition_cuts_exactly_the_boundary(
        self, cluster, hierarchy, wan
    ):
        schedule = ChaosSchedule(
            "cut", (WanPartition(epoch=5, duration=3, isolate=("H", "I", "J")),)
        )
        events = self.compile(schedule, cluster, hierarchy, wan).compiled_events()
        assert len(events) == 2
        cut, heal = events
        assert isinstance(cut, LinkFailureEvent) and cut.epoch == 5
        assert isinstance(heal, LinkRecoveryEvent) and heal.epoch == 8
        assert cut.links == heal.links
        side = {hierarchy.by_name(n).index for n in ("H", "I", "J")}
        for u, v in cut.links:
            assert (u in side) != (v in side)
        # The degraded graph separates the side from the rest.
        degraded = Router(wan.without_links(cut.links))
        inside, outside = sorted(side)[0], next(
            dc for dc in range(hierarchy.num_datacenters) if dc not in side
        )
        assert not degraded.reachable(inside, outside)
        assert degraded.reachable(*sorted(side)[:2])

    def test_isolating_everything_raises(self, cluster, hierarchy, wan):
        names = tuple(site.name for site in hierarchy.sites)
        schedule = ChaosSchedule(
            "all", (WanPartition(epoch=1, duration=2, isolate=names),)
        )
        with pytest.raises(ConfigurationError):
            self.compile(schedule, cluster, hierarchy, wan)

    def test_summary_counts(self, cluster, hierarchy, wan):
        schedule = ChaosSchedule(
            "mix",
            (
                CorrelatedFailure(epoch=2, scope="rack", domains=2, downtime=3),
                WanPartition(epoch=4, duration=2, isolate=("A",)),
            ),
        )
        summary = self.compile(schedule, cluster, hierarchy, wan).summary()
        assert summary.schedule == "mix"
        assert summary.injections == 2
        assert summary.failure_events == 1
        assert summary.recovery_events == 1
        assert summary.servers_failed == 10
        assert summary.links_cut >= 1
        assert any(key.startswith("wan:") for key in summary.domains_hit)


class TestWanGraphDegradation:
    def test_without_links_keeps_original_intact(self, wan):
        edges_before = wan.edges()
        u, v, _ = edges_before[0]
        degraded = wan.without_links([(u, v)])
        assert wan.edges() == edges_before
        assert degraded.num_edges == wan.num_edges - 1
        assert not degraded.has_edge(u, v)

    def test_cut_order_is_normalised(self, wan):
        u, v, _ = wan.edges()[0]
        assert wan.without_links([(v, u)]).num_edges == wan.num_edges - 1

    def test_cutting_unknown_link_raises(self, wan):
        missing = next(
            (u, v)
            for u in range(wan.num_nodes)
            for v in range(u + 1, wan.num_nodes)
            if not wan.has_edge(u, v)
        )
        with pytest.raises(TopologyError):
            wan.without_links([missing])

    def test_fault_scopes_constant(self):
        assert FAULT_SCOPES == ("server", "rack", "room", "datacenter")
