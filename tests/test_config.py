"""Table I round-trip (experiment T1) and configuration validation."""

import pytest

from repro.config import (
    DEFAULT_EPOCH_SECONDS,
    ClusterParameters,
    RFHParameters,
    SimulationConfig,
    WorkloadParameters,
)
from repro.errors import ConfigurationError


class TestTableIDefaults:
    """Every Table I value must be the library default (experiment T1)."""

    def test_storage_capacity_is_10gb(self):
        assert ClusterParameters().storage_capacity_mb == 10 * 1024

    def test_storage_rate_limit_is_70_percent(self):
        assert RFHParameters().phi == 0.70

    def test_replication_bandwidth_300mb_per_epoch(self):
        assert ClusterParameters().replication_bandwidth_mb == 300.0

    def test_migration_bandwidth_100mb_per_epoch(self):
        assert ClusterParameters().migration_bandwidth_mb == 100.0

    def test_epoch_is_10_seconds(self):
        assert DEFAULT_EPOCH_SECONDS == 10.0
        assert SimulationConfig().epoch_seconds == 10.0

    def test_poisson_mean_300_queries_per_epoch(self):
        assert WorkloadParameters().queries_per_epoch_mean == 300.0

    def test_64_partitions_of_512kb(self):
        wl = WorkloadParameters()
        assert wl.num_partitions == 64
        assert wl.partition_size_mb == pytest.approx(0.5)

    def test_failure_rate_and_min_availability(self):
        rfh = RFHParameters()
        assert rfh.failure_rate == 0.1
        assert rfh.min_availability == 0.8

    def test_greek_letters(self):
        rfh = RFHParameters()
        assert (rfh.alpha, rfh.beta, rfh.gamma, rfh.delta, rfh.mu) == (
            0.2,
            2.0,
            1.5,
            0.2,
            1.0,
        )

    def test_cluster_shape_matches_section_iii(self):
        cl = ClusterParameters()
        assert cl.rooms_per_datacenter == 1
        assert cl.racks_per_room == 2
        assert cl.servers_per_rack == 5
        assert cl.servers_per_datacenter == 10


class TestValidation:
    def test_alpha_out_of_range(self):
        with pytest.raises(ConfigurationError):
            RFHParameters(alpha=0.0)
        with pytest.raises(ConfigurationError):
            RFHParameters(alpha=1.0)

    def test_beta_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            RFHParameters(beta=1.0)

    def test_gamma_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            RFHParameters(gamma=0.9)

    def test_delta_must_be_fractional(self):
        with pytest.raises(ConfigurationError):
            RFHParameters(delta=1.5)

    def test_mu_positive(self):
        with pytest.raises(ConfigurationError):
            RFHParameters(mu=0.0)

    def test_phi_range(self):
        with pytest.raises(ConfigurationError):
            RFHParameters(phi=0.0)
        with pytest.raises(ConfigurationError):
            RFHParameters(phi=1.2)

    def test_failure_rate_range(self):
        with pytest.raises(ConfigurationError):
            RFHParameters(failure_rate=0.0)
        with pytest.raises(ConfigurationError):
            RFHParameters(failure_rate=1.0)

    def test_hub_fanout_positive(self):
        with pytest.raises(ConfigurationError):
            RFHParameters(hub_fanout=0)

    def test_cluster_shape_positive(self):
        with pytest.raises(ConfigurationError):
            ClusterParameters(servers_per_rack=0)
        with pytest.raises(ConfigurationError):
            ClusterParameters(racks_per_room=0)

    def test_capacity_jitter_range(self):
        with pytest.raises(ConfigurationError):
            ClusterParameters(capacity_jitter=1.0)
        with pytest.raises(ConfigurationError):
            ClusterParameters(capacity_jitter=-0.1)

    def test_workload_positive(self):
        with pytest.raises(ConfigurationError):
            WorkloadParameters(queries_per_epoch_mean=0)
        with pytest.raises(ConfigurationError):
            WorkloadParameters(num_partitions=0)
        with pytest.raises(ConfigurationError):
            WorkloadParameters(partition_size_mb=0)
        with pytest.raises(ConfigurationError):
            WorkloadParameters(zipf_exponent=-0.1)

    def test_epoch_seconds_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(epoch_seconds=0)

    def test_seed_non_negative(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(seed=-1)


class TestReplace:
    def test_replace_top_level(self):
        cfg = SimulationConfig(seed=1)
        other = cfg.replace(seed=2)
        assert other.seed == 2
        assert cfg.seed == 1  # original untouched

    def test_replace_nested_group(self):
        cfg = SimulationConfig()
        other = cfg.replace(rfh=RFHParameters(alpha=0.5))
        assert other.rfh.alpha == 0.5
        assert cfg.rfh.alpha == 0.2

    def test_configs_are_frozen(self):
        cfg = SimulationConfig()
        with pytest.raises(AttributeError):
            cfg.seed = 7  # type: ignore[misc]
