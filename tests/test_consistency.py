"""Consistency tracker: versions, propagation, staleness scoring."""

import numpy as np
import pytest

from repro.cluster import ReplicaMap
from repro.config import SimulationConfig, WorkloadParameters
from repro.consistency import ConsistencyConfig, ConsistencyTracker
from repro.errors import ConfigurationError
from repro.sim import Simulation


@pytest.fixture
def tracker_world(cluster, router):
    replicas = ReplicaMap(cluster, num_partitions=2, partition_size_mb=0.5)
    replicas.bootstrap([0, 10])

    def make(write_ratio=1.0, fanout=1, seed=5) -> ConsistencyTracker:
        return ConsistencyTracker(
            ConsistencyConfig(write_ratio=write_ratio, fanout=fanout),
            np.random.default_rng(seed),
            partition_size_mb=0.5,
            failure_rate=0.1,
            replication_bandwidth_mb=300.0,
        )

    return replicas, make


def _observe(tracker, replicas, cluster, router, queries=(4, 0), served=None):
    q = np.asarray(queries, dtype=np.float64)
    s = served if served is not None else np.zeros((2, cluster.num_servers))
    return tracker.observe(q, s, replicas, cluster, router)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConsistencyConfig(write_ratio=1.5)
        with pytest.raises(ConfigurationError):
            ConsistencyConfig(fanout=0)

    def test_eager_is_none_fanout(self):
        assert ConsistencyConfig(fanout=None).fanout is None


class TestVersions:
    def test_writes_bump_versions(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make(write_ratio=1.0)
        summary = _observe(tracker, replicas, cluster, router, queries=(4, 0))
        assert summary.writes == 4.0
        assert tracker.version(0) == 4
        assert tracker.version(1) == 0

    def test_holder_is_always_current(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make()
        _observe(tracker, replicas, cluster, router)
        holder = replicas.holder(0)
        assert tracker.replica_version(0, holder) == tracker.version(0)

    def test_new_replica_is_fresh(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make()
        _observe(tracker, replicas, cluster, router)  # version now 4
        replicas.add(0, 50)
        summary = _observe(tracker, replicas, cluster, router, queries=(0, 0))
        assert tracker.replica_version(0, 50) == tracker.version(0)
        assert summary.mean_staleness == 0.0

    def test_departed_replica_forgotten(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make()
        replicas.add(0, 50)
        _observe(tracker, replicas, cluster, router)
        replicas.remove(0, 50)
        _observe(tracker, replicas, cluster, router, queries=(0, 0))
        assert tracker.replica_version(0, 50) is None


class TestPropagation:
    def test_fanout_limits_refreshes(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make(write_ratio=1.0, fanout=1)
        for sid in (50, 60, 70):
            replicas.add(0, sid)
        _observe(tracker, replicas, cluster, router, queries=(0, 0))  # all fresh
        # One write epoch: three replicas go stale, only one refreshed.
        summary = _observe(tracker, replicas, cluster, router, queries=(5, 0))
        assert summary.propagation_transfers == 1.0
        assert summary.stale_replica_fraction == pytest.approx(2 / 3)

    def test_eager_refreshes_everything(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make(write_ratio=1.0, fanout=None)
        for sid in (50, 60, 70):
            replicas.add(0, sid)
        _observe(tracker, replicas, cluster, router, queries=(0, 0))
        summary = _observe(tracker, replicas, cluster, router, queries=(5, 0))
        assert summary.propagation_transfers == 3.0
        assert summary.stale_replica_fraction == 0.0
        assert summary.mean_staleness == 0.0

    def test_propagation_cost_positive_for_remote(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make(write_ratio=1.0, fanout=None)
        replicas.add(0, 95)  # far datacenter
        _observe(tracker, replicas, cluster, router, queries=(0, 0))
        summary = _observe(tracker, replicas, cluster, router, queries=(5, 0))
        assert summary.propagation_cost > 0

    def test_stalest_replica_refreshed_first(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make(write_ratio=1.0, fanout=1)
        replicas.add(0, 50)
        _observe(tracker, replicas, cluster, router, queries=(0, 0))
        _observe(tracker, replicas, cluster, router, queries=(3, 0))  # 50 refreshed
        replicas.add(0, 60)  # fresh at current version
        _observe(tracker, replicas, cluster, router, queries=(0, 0))
        # New write: both stale with equal lag -> lower sid (50) first.
        _observe(tracker, replicas, cluster, router, queries=(2, 0))
        assert tracker.replica_version(0, 50) == tracker.version(0)


class TestScoring:
    def test_stale_reads_detected(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make(write_ratio=1.0, fanout=1)
        replicas.add(0, 50)
        replicas.add(0, 60)
        _observe(tracker, replicas, cluster, router, queries=(0, 0))
        served = np.zeros((2, cluster.num_servers))
        served[0, 50] = 2.0
        served[0, 60] = 2.0
        summary = _observe(
            tracker, replicas, cluster, router, queries=(5, 0), served=served
        )
        # One of the two got refreshed this epoch; the other served stale.
        assert summary.stale_read_fraction == pytest.approx(0.5)

    def test_no_writes_no_staleness(self, tracker_world, cluster, router):
        replicas, make = tracker_world
        tracker = make(write_ratio=0.0)
        replicas.add(0, 50)
        summary = _observe(tracker, replicas, cluster, router, queries=(10, 10))
        assert summary.writes == 0.0
        assert summary.mean_staleness == 0.0
        assert summary.stale_read_fraction == 0.0


class TestEngineIntegration:
    def _cfg(self):
        return SimulationConfig(
            seed=3,
            workload=WorkloadParameters(queries_per_epoch_mean=80.0, num_partitions=8),
        )

    def test_series_recorded_when_enabled(self):
        sim = Simulation(
            self._cfg(), policy="rfh", consistency=ConsistencyConfig(write_ratio=0.2)
        )
        m = sim.run(25)
        for name in (
            "writes",
            "propagation_transfers",
            "propagation_cost",
            "mean_staleness",
            "stale_replica_fraction",
            "stale_read_fraction",
        ):
            assert name in m, name
        assert m.array("writes").sum() > 0

    def test_series_absent_when_disabled(self):
        m = Simulation(self._cfg(), policy="rfh").run(5)
        assert "writes" not in m

    def test_eager_beats_lazy_on_staleness(self):
        lazy = Simulation(
            self._cfg(),
            policy="rfh",
            consistency=ConsistencyConfig(write_ratio=0.3, fanout=1),
        ).run(60)
        eager = Simulation(
            self._cfg(),
            policy="rfh",
            consistency=ConsistencyConfig(write_ratio=0.3, fanout=None),
        ).run(60)
        assert (
            eager.series("stale_read_fraction").tail_mean(20)
            <= lazy.series("stale_read_fraction").tail_mean(20)
        )
        assert (
            eager.series("propagation_transfers").tail_mean(20)
            >= lazy.series("propagation_transfers").tail_mean(20)
        )

    def test_reproduced_figures_unaffected(self):
        """The tracker must be a pure observer: enabling it cannot change
        any placement dynamics."""
        base = Simulation(self._cfg(), policy="rfh").run(30)
        tracked = Simulation(
            self._cfg(), policy="rfh", consistency=ConsistencyConfig(write_ratio=0.5)
        ).run(30)
        assert list(base.array("total_replicas")) == list(
            tracked.array("total_replicas")
        )
        assert list(base.array("served")) == list(tracked.array("served"))
