"""The traffic-determination kernel (Eqs. 2–8)."""

import numpy as np
import pytest

from repro.core.traffic import serve_epoch
from repro.errors import SimulationError
from repro.net import Router, WanGraph
from repro.workload import QueryBatch


@pytest.fixture
def line_router() -> Router:
    """A 4-node line 0-1-2-3: unambiguous paths for hand-checks."""
    return Router(WanGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]))


def _batch(counts) -> QueryBatch:
    return QueryBatch(0, np.asarray(counts, dtype=np.int64))


class TestOverflowRecursion:
    def test_eq5_traffic_at_origin_is_full_query(self, line_router):
        """tr_ijj = q_ij (Eq. 5)."""
        batch = _batch([[7, 0, 0, 0]])
        result = serve_epoch(batch, [3], [{}], line_router, num_servers=4)
        assert result.traffic_dc[0, 0] == 7.0

    def test_unreplicated_flow_reaches_holder_untouched(self, line_router):
        batch = _batch([[5, 0, 0, 0]])
        result = serve_epoch(batch, [3], [{3: [(3, 10.0)]}], line_router, 4)
        # Flow arrives at every DC on the path with full strength.
        assert list(result.traffic_dc[0]) == [5.0, 5.0, 5.0, 5.0]
        assert result.served_server[0, 3] == 5.0
        assert result.unserved[0] == 0.0

    def test_eq2_downstream_traffic_is_overflow(self, line_router):
        """A replica of capacity C at node k reduces the next node's
        traffic to max(0, q - C)."""
        batch = _batch([[5, 0, 0, 0]])
        layout = {1: [(1, 2.0)], 3: [(3, 10.0)]}
        result = serve_epoch(batch, [3], [layout], line_router, 4)
        assert list(result.traffic_dc[0]) == [5.0, 5.0, 3.0, 3.0]
        assert result.served_server[0, 1] == 2.0
        assert result.served_server[0, 3] == 3.0

    def test_full_absorption_zeroes_downstream(self, line_router):
        batch = _batch([[5, 0, 0, 0]])
        layout = {0: [(0, 10.0)], 3: [(3, 10.0)]}
        result = serve_epoch(batch, [3], [layout], line_router, 4)
        assert list(result.traffic_dc[0]) == [5.0, 0.0, 0.0, 0.0]
        assert result.served_server[0, 0] == 5.0
        assert result.mean_path_length == 0.0

    def test_blocked_queries_counted_unserved(self, line_router):
        batch = _batch([[5, 0, 0, 0]])
        layout = {3: [(3, 2.0)]}
        result = serve_epoch(batch, [3], [layout], line_router, 4)
        assert result.unserved[0] == 3.0
        assert result.total_served == 2.0

    def test_flows_merge_and_share_capacity(self, line_router):
        """Two flows crossing one replica site share its capacity —
        the DESIGN.md refinement of the per-path closed form."""
        batch = _batch([[3, 3, 0, 0]])
        layout = {2: [(2, 4.0)], 3: [(3, 100.0)]}
        result = serve_epoch(batch, [3], [layout], line_router, 4)
        assert result.served_server[0, 2] == 4.0  # shared, not 2x4
        assert result.served_server[0, 3] == 2.0

    def test_query_conservation(self, line_router):
        """served + unserved == total queries, always."""
        batch = _batch([[4, 1, 2, 3], [5, 0, 1, 0]])
        layouts = [{1: [(1, 2.0)], 3: [(3, 1.0)]}, {0: [(0, 3.0)]}]
        result = serve_epoch(batch, [3, 0], layouts, line_router, 4)
        assert result.total_served + result.unserved.sum() == pytest.approx(batch.total)

    def test_holder_traffic_is_post_colocated_interception(self, line_router):
        """Replicas co-located with the holder drain first (Eq. 12's
        holder-server feedback)."""
        batch = _batch([[6, 0, 0, 0]])
        # Holder is server 3; server 30 is another server in DC 3.
        layout = {3: [(3, 2.0), (30, 3.0)]}
        result = serve_epoch(batch, [3], [layout], line_router, 31, holder_sid=[3])
        assert result.served_server[0, 30] == 3.0  # co-located first
        assert result.served_server[0, 3] == 2.0  # holder last
        assert result.unserved[0] == 1.0
        assert result.holder_traffic[0] == 3.0  # 2 served + 1 blocked

    def test_holder_traffic_zero_without_holder_sid(self, line_router):
        batch = _batch([[6, 0, 0, 0]])
        result = serve_epoch(batch, [3], [{3: [(3, 10.0)]}], line_router, 4)
        assert result.holder_traffic[0] == 0.0

    def test_lost_partition_all_unserved(self, line_router):
        batch = _batch([[4, 0, 0, 1]])
        result = serve_epoch(batch, [None], [{}], line_router, 4)
        assert result.unserved[0] == 5.0
        assert result.traffic_dc[0, 0] == 4.0

    def test_path_length_accounting(self, line_router):
        """Hops are charged where queries are served; blocked queries pay
        the full path."""
        batch = _batch([[4, 0, 0, 0]])
        layout = {1: [(1, 1.0)], 3: [(3, 1.0)]}
        result = serve_epoch(batch, [3], [layout], line_router, 4)
        # 1 query served at hop 1, 1 at hop 3, 2 blocked at hop 3.
        assert result.hop_sum == pytest.approx(1 * 1 + 1 * 3 + 2 * 3)
        assert result.mean_path_length == pytest.approx(10 / 4)

    def test_deterministic_across_runs(self, line_router):
        batch = _batch([[4, 1, 2, 3], [5, 0, 1, 0]])
        layouts = [{1: [(1, 2.0)], 3: [(3, 1.0)]}, {0: [(0, 3.0)]}]
        r1 = serve_epoch(batch, [3, 0], layouts, line_router, 4)
        r2 = serve_epoch(batch, [3, 0], layouts, line_router, 4)
        assert np.array_equal(r1.served_server, r2.served_server)
        assert np.array_equal(r1.traffic_dc, r2.traffic_dc)


class TestValidation:
    def test_holder_list_length_checked(self, line_router):
        with pytest.raises(SimulationError):
            serve_epoch(_batch([[1, 0, 0, 0]]), [3, 3], [{}], line_router, 4)

    def test_layout_list_length_checked(self, line_router):
        with pytest.raises(SimulationError):
            serve_epoch(_batch([[1, 0, 0, 0]]), [3], [{}, {}], line_router, 4)

    def test_negative_capacity_rejected(self, line_router):
        with pytest.raises(SimulationError):
            serve_epoch(
                _batch([[1, 0, 0, 0]]), [3], [{3: [(3, -1.0)]}], line_router, 4
            )


class TestOnDefaultWan:
    def test_hub_replica_intercepts_asia_traffic(self, router):
        """A replica at E (the Pacific hub) intercepts flows from H/I/J
        heading for A — the Fig. 1 scenario."""
        counts = np.zeros((1, 10), dtype=np.int64)
        counts[0, 7] = counts[0, 8] = counts[0, 9] = 10  # H, I, J
        batch = QueryBatch(0, counts)
        layout = {4: [(40, 25.0)], 0: [(0, 100.0)]}  # E hub + holder A
        result = serve_epoch(batch, [0], [layout], router, 100, holder_sid=[0])
        assert result.served_server[0, 40] == 25.0
        assert result.holder_traffic[0] == pytest.approx(5.0)
