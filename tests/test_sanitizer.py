"""The runtime determinism sanitizer: fingerprints, bisection, CLI."""

import json
import random

import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import random_query_scenario
from repro.sim.actions import Replicate
from repro.sim.engine import Simulation
from repro.staticcheck import (
    COMPONENTS,
    DeterminismSanitizer,
    FingerprintError,
    FingerprintTrail,
    bisect_divergence,
)


def small_config(seed: int = 7) -> SimulationConfig:
    return SimulationConfig(
        seed=seed,
        workload=WorkloadParameters(queries_per_epoch_mean=60.0, num_partitions=8),
    )


def sanitized_run(epochs: int = 20, seed: int = 7, *, burn_at: int | None = None):
    """One engine run with a sanitizer attached; optionally burn one
    extra draw from the ``failures`` stream at epoch ``burn_at``
    (injected nondeterminism)."""
    sanitizer = DeterminismSanitizer()
    sim = Simulation(small_config(seed), policy="rfh", sanitizer=sanitizer)
    for epoch in range(epochs):
        if burn_at is not None and epoch == burn_at:
            sim.rng_tree.stream("failures").random()
        sim.step()
    return sanitizer.trail()


class TestFingerprints:
    def test_same_seed_runs_are_chain_identical(self):
        a, b = sanitized_run(), sanitized_run()
        assert len(a) == len(b) == 20
        assert [r.chain for r in a.records] == [r.chain for r in b.records]
        assert a.final_chain == b.final_chain

    def test_different_seeds_diverge_immediately(self):
        a, b = sanitized_run(seed=7), sanitized_run(seed=8)
        report = bisect_divergence(a, b)
        assert not report.identical
        assert report.first_divergent_epoch == 0

    def test_every_component_is_fingerprinted(self):
        trail = sanitized_run(epochs=3)
        for record in trail.records:
            assert set(record.components) == set(COMPONENTS)
            assert record.rng_streams  # named streams exist

    def test_observe_returns_growing_chain(self):
        trail = sanitized_run(epochs=5)
        chains = [r.chain for r in trail.records]
        assert len(set(chains)) == len(chains)  # chain never repeats


class TestBisection:
    def test_burned_rng_draw_is_pinpointed(self):
        clean = sanitized_run()
        dirty = sanitized_run(burn_at=12)
        report = bisect_divergence(clean, dirty)
        assert not report.identical
        assert report.first_divergent_epoch == 12
        assert report.components == ("rng",)
        assert report.rng_streams == ("failures",)
        assert report.exit_code == 1
        assert "epoch 12" in report.describe()

    def test_identical_trails(self):
        a = sanitized_run(epochs=6)
        report = bisect_divergence(a, sanitized_run(epochs=6))
        assert report.identical and report.exit_code == 0
        assert report.first_divergent_epoch is None

    def test_length_mismatch_on_identical_prefix(self):
        a = sanitized_run(epochs=6)
        b = sanitized_run(epochs=9)
        report = bisect_divergence(a, b)
        assert not report.identical  # trailing epochs unverified
        assert report.first_divergent_epoch is None
        assert report.extra_epochs == (0, 3)

    def test_empty_trails(self):
        report = bisect_divergence(FingerprintTrail(), FingerprintTrail())
        assert report.identical and report.epochs_compared == 0


class TestUnseededPolicyDetection:
    """The ISSUE's acceptance test: a policy whose tie-breaking shuffle
    is effectively unseeded (different per process/run) must be caught,
    with the report naming the injection epoch and a state component."""

    class ShufflingPolicy:
        name = "shuffler"

        def __init__(self, salt: int, at_epoch: int) -> None:
            # Models `random.shuffle` in a fresh process: each run's
            # shuffle order differs because the seed is unpredictable.
            self._rng = random.Random(salt)
            self._at_epoch = at_epoch

        def decide(self, obs):
            if obs.epoch < self._at_epoch:
                return []
            partition = 0
            holder = obs.replicas.holder(partition)
            candidates = [
                s.sid
                for s in obs.cluster.alive_servers()
                if s.sid != holder and obs.replicas.count(partition, s.sid) == 0
            ]
            self._rng.shuffle(candidates)
            return [
                Replicate(
                    partition=partition,
                    source_sid=holder,
                    target_sid=candidates[0],
                    reason="shuffled",
                )
            ]

    def run_with(self, salt: int):
        sanitizer = DeterminismSanitizer()
        sim = Simulation(
            small_config(),
            policy=self.ShufflingPolicy(salt, at_epoch=10),
            sanitizer=sanitizer,
        )
        sim.run(16)
        return sanitizer.trail()

    def test_report_names_first_divergent_epoch_and_component(self):
        report = bisect_divergence(self.run_with(0), self.run_with(1))
        assert not report.identical
        assert report.first_divergent_epoch == 10
        assert "replicas" in report.components
        text = report.describe()
        assert "epoch 10" in text and "replicas" in text

    def test_same_salt_stays_identical(self):
        report = bisect_divergence(self.run_with(0), self.run_with(0))
        assert report.identical


class TestArtifact:
    def test_save_load_round_trip(self, tmp_path):
        trail = sanitized_run(epochs=4)
        trail.meta["policy"] = "rfh"
        path = tmp_path / "run.fp.json"
        trail.save(path)
        loaded = FingerprintTrail.load(path)
        assert loaded.meta["policy"] == "rfh"
        assert [r.chain for r in loaded.records] == [r.chain for r in trail.records]
        assert bisect_divergence(trail, loaded).identical

    def test_malformed_artifact_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(FingerprintError):
            FingerprintTrail.load(path)

    def test_bumped_version_is_rejected(self, tmp_path):
        trail = sanitized_run(epochs=2)
        payload = trail.to_dict()
        payload["version"] = int(payload["version"]) + 1
        with pytest.raises(FingerprintError, match="version"):
            FingerprintTrail.from_dict(payload)

    def test_runner_stamps_meta(self):
        scenario = random_query_scenario(small_config(), epochs=6)
        sanitizer = DeterminismSanitizer()
        run_experiment("rfh", scenario, sanitizer=sanitizer)
        meta = sanitizer.trail().meta
        assert meta["policy"] == "rfh"
        assert meta["scenario"] == "random-query"
        assert meta["seed"] == 7
        assert len(sanitizer.trail()) == 6


FAST = ["--epochs", "12", "--partitions", "8", "--rate", "60", "--seed", "3"]


class TestSanitizeCli:
    def test_double_run_is_identical(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "--policy", "rfh", *FAST]) == 0
        assert "fingerprint-identical" in capsys.readouterr().out

    def test_against_saved_artifact(self, tmp_path, capsys):
        from repro.cli import main

        fp = tmp_path / "run.fp.json"
        assert main(["run", "--policy", "rfh", *FAST, "--fingerprint-out", str(fp)]) == 0
        assert fp.exists()
        assert main(["sanitize", "--policy", "rfh", *FAST, "--against", str(fp)]) == 0
        out = capsys.readouterr().out
        assert "fingerprint-identical" in out

    def test_against_mismatched_seed_reports_divergence(self, tmp_path, capsys):
        from repro.cli import main

        fp = tmp_path / "run.fp.json"
        assert (
            main(["sanitize", "--policy", "rfh", *FAST, "--save", str(fp)]) == 0
        )
        other = [*FAST[:-1], "4"]  # different seed
        assert (
            main(["sanitize", "--policy", "rfh", *other, "--against", str(fp)]) == 1
        )
        out = capsys.readouterr().out
        assert "DIVERGENCE at epoch 0" in out

    def test_json_report(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "--policy", "rfh", *FAST, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is True
        assert payload["epochs_compared"] == 12

    def test_compare_writes_per_policy_fingerprints(self, tmp_path, capsys):
        from repro.cli import main

        fp = tmp_path / "cmp.fp.json"
        assert main(["compare", *FAST[:2], *FAST[2:], "--fingerprint-out", str(fp)]) == 0
        # The policy tag lands *before* the compound ``.fp.json`` suffix
        # (shared repro.obs.paths helper, same shape as ``.tsdb.json``).
        for policy in ("request", "owner", "random", "rfh"):
            assert (tmp_path / f"cmp.{policy}.fp.json").exists()
