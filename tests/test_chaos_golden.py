"""Golden-run determinism: (seed, schedule) fully determines a chaos run.

Chaos victims are drawn at compile time from the dedicated seeded
``"chaos"`` stream, so two simulations built from the same config and
schedule must produce byte-identical metrics exports and identical trace
sequences — the property that makes chaos regressions diffable.
"""

from __future__ import annotations

import filecmp

from repro.chaos import (
    ChaosSchedule,
    CorrelatedFailure,
    Flapping,
    InvariantChecker,
    WanPartition,
)
from repro.config import SimulationConfig, WorkloadParameters
from repro.metrics.export import to_csv
from repro.obs.trace import RingBufferTracer
from repro.sim.engine import Simulation

EPOCHS = 30

SCHEDULE = ChaosSchedule(
    name="golden",
    injections=(
        CorrelatedFailure(epoch=6, scope="rack", domains=2, downtime=8),
        Flapping(start_epoch=4, count=3, up_epochs=3, down_epochs=2, cycles=2),
        WanPartition(epoch=10, duration=6, isolate=("H", "I", "J")),
    ),
)


def build(tracer=None) -> Simulation:
    config = SimulationConfig(
        seed=777,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )
    return Simulation(
        config, chaos=SCHEDULE, invariants=InvariantChecker(), tracer=tracer
    )


def trace_key(event):
    """Everything except the wall-clock timestamp."""
    return (
        event.epoch,
        event.kind,
        event.server,
        event.partition,
        event.reason,
        event.cost,
        event.policy,
        tuple(sorted(event.extra.items())),
    )


class TestGoldenDeterminism:
    def test_metrics_csv_is_byte_identical(self, tmp_path):
        for name in ("a.csv", "b.csv"):
            sim = build()
            sim.run(EPOCHS)
            to_csv(sim.metrics, tmp_path / name)
        assert filecmp.cmp(tmp_path / "a.csv", tmp_path / "b.csv", shallow=False)
        assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "b.csv").read_bytes()

    def test_trace_sequences_are_identical(self):
        traces = []
        for _ in range(2):
            tracer = RingBufferTracer(capacity=200_000)
            sim = build(tracer=tracer)
            sim.run(EPOCHS)
            traces.append([trace_key(e) for e in tracer.events()])
        assert traces[0] == traces[1]
        # The schedule actually did something worth pinning down.
        kinds = {key[1] for key in traces[0]}
        assert {"server_failure", "server_recovery", "link_failure", "link_recovery"} <= kinds

    def test_compiled_events_are_identical(self):
        a, b = build(), build()
        assert a.chaos.compiled_events() == b.chaos.compiled_events()
        assert a.chaos.summary() == b.chaos.summary()

    def test_different_seed_changes_victims(self):
        """The chaos stream hangs off the root seed: a different seed
        re-draws the random rack/flapper picks."""
        base = build()
        other = Simulation(
            SimulationConfig(
                seed=778,
                workload=WorkloadParameters(
                    queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
                ),
            ),
            chaos=SCHEDULE,
            invariants=InvariantChecker(),
        )
        assert base.chaos.compiled_events() != other.chaos.compiled_events()
