"""Latency model, SLA accounting, and the SLA experiment."""

import numpy as np
import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.core.traffic import serve_epoch
from repro.errors import ConfigurationError
from repro.metrics.latency import FIBRE_KM_PER_MS, LatencyModel
from repro.net import Router, WanGraph
from repro.sim import Simulation
from repro.workload import QueryBatch


class TestLatencyModel:
    def test_response_time_components(self):
        model = LatencyModel(service_ms=5.0, hop_overhead_ms=2.0)
        # 2000 km round trip at 200 km/ms = 20 ms + 2 hops * 2 + 5.
        assert model.response_ms(2000.0, 2) == pytest.approx(29.0)

    def test_zero_distance_is_service_only(self):
        model = LatencyModel(service_ms=5.0, hop_overhead_ms=2.0)
        assert model.response_ms(0.0, 0) == 5.0

    def test_monotone_in_distance(self):
        model = LatencyModel()
        assert model.response_ms(5000.0, 1) > model.response_ms(100.0, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(service_ms=-1.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(sla_ms=0.0)
        with pytest.raises(ConfigurationError):
            LatencyModel().response_ms(-1.0, 0)

    def test_summarize_idle_epoch(self):
        summary = LatencyModel().summarize_epoch(0.0, 0.0, 0.0, 0.0)
        assert summary.mean_ms == 0.0
        assert summary.sla_attainment == 1.0

    def test_summarize_with_misses(self):
        summary = LatencyModel().summarize_epoch(1000.0, 10.0, 3.0, 10.0)
        assert summary.sla_attainment == pytest.approx(0.7)


class TestKernelSlaAccounting:
    _router = Router(WanGraph(2, [(0, 1, 40000.0)]))  # absurdly long link

    def test_far_served_queries_miss_sla(self):
        """A 40,000 km link costs 400 ms RTT > 300 ms: every query from
        DC 0 served at DC 1 misses."""
        batch = QueryBatch(0, np.array([[4, 0]]))
        layout = {1: [(1, 10.0)]}
        model = LatencyModel()
        result = serve_epoch(batch, [1], [layout], self._router, 2, latency=model)
        assert result.sla_miss == 4.0

    def test_local_queries_meet_sla(self):
        batch = QueryBatch(0, np.array([[4, 0]]))
        layout = {0: [(0, 10.0)]}
        result = serve_epoch(batch, [1], [layout], self._router, 2, latency=LatencyModel())
        assert result.sla_miss == 0.0

    def test_blocked_queries_always_miss(self):
        batch = QueryBatch(0, np.array([[0, 4]]))  # local to the holder
        layout = {1: [(1, 1.0)]}
        result = serve_epoch(batch, [1], [layout], self._router, 2, latency=LatencyModel())
        assert result.sla_miss == 3.0  # 1 served locally in time, 3 blocked

    def test_no_model_no_misses(self):
        batch = QueryBatch(0, np.array([[4, 0]]))
        result = serve_epoch(batch, [1], [{}], self._router, 2)
        assert result.sla_miss == 0.0

    def test_distance_sum_accounting(self):
        batch = QueryBatch(0, np.array([[2, 0]]))
        layout = {1: [(1, 10.0)]}
        result = serve_epoch(batch, [1], [layout], self._router, 2)
        assert result.distance_sum_km == pytest.approx(2 * 40000.0)


class TestEngineSeries:
    def test_latency_series_recorded(self):
        cfg = SimulationConfig(
            seed=3,
            workload=WorkloadParameters(queries_per_epoch_mean=80.0, num_partitions=8),
        )
        m = Simulation(cfg, policy="rfh").run(20)
        assert "mean_latency_ms" in m
        assert "sla_attainment" in m
        lat = m.array("mean_latency_ms")
        sla = m.array("sla_attainment")
        assert np.all(lat >= 0)
        assert np.all((sla >= 0) & (sla <= 1))

    def test_custom_latency_model(self):
        cfg = SimulationConfig(
            seed=3,
            workload=WorkloadParameters(queries_per_epoch_mean=80.0, num_partitions=8),
        )
        strict = Simulation(
            cfg, policy="rfh", latency=LatencyModel(sla_ms=1.0)
        ).run(15)
        lax = Simulation(cfg, policy="rfh", latency=LatencyModel(sla_ms=10_000.0)).run(15)
        assert strict.series("sla_attainment").mean() <= lax.series(
            "sla_attainment"
        ).mean()

    def test_fibre_speed_constant(self):
        # 2/3 of c in km/ms.
        assert FIBRE_KM_PER_MS == pytest.approx(200.0)


class TestSlaExperiment:
    def test_small_scale_sla_comparison(self):
        from repro.experiments.sla import sla_comparison

        cfg = SimulationConfig(
            seed=9,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
            ),
        )
        result = sla_comparison(cfg, epochs=120, full_service_floor=0.9)
        assert set(result.attainment) == {"rfh", "request", "owner", "random"}
        assert result.passed, result.failed_checks()
