"""CLI subcommands and metric export round-trips."""

import csv
import json

import pytest

from repro.cli import build_parser, main
from repro.errors import SimulationError
from repro.metrics.collector import MetricsCollector
from repro.metrics.export import from_csv, from_json, to_csv, to_json

FAST = ["--epochs", "25", "--partitions", "8", "--rate", "60", "--seed", "3"]


class TestExport:
    def _collector(self) -> MetricsCollector:
        c = MetricsCollector()
        c.record_epoch({"a": 1.0, "b": 2.5})
        c.record_epoch({"a": 3.0, "b": 0.0})
        return c

    def test_csv_layout(self, tmp_path):
        path = tmp_path / "m.csv"
        to_csv(self._collector(), path)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["epoch", "a", "b"]
        assert rows[1] == ["0", "1.0", "2.5"]
        assert rows[2] == ["1", "3.0", "0.0"]

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "m.json"
        original = self._collector()
        to_json(original, path)
        loaded = from_json(path)
        assert loaded.as_dict() == original.as_dict()
        assert loaded.num_epochs == 2

    def test_json_ends_with_newline(self, tmp_path):
        path = tmp_path / "m.json"
        to_json(self._collector(), path)
        assert path.read_text().endswith("\n")

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "m.csv"
        original = self._collector()
        to_csv(original, path)
        loaded = from_csv(path)
        assert loaded.as_dict() == original.as_dict()
        assert loaded.num_epochs == 2

    def test_from_csv_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(SimulationError):
            from_csv(path)

    def test_from_csv_rejects_empty_and_headerless(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SimulationError):
            from_csv(empty)
        header_only = tmp_path / "h.csv"
        header_only.write_text("epoch,a\n")
        with pytest.raises(SimulationError):
            from_csv(header_only)

    def test_from_csv_rejects_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("epoch,a,b\n0,1.0\n")
        with pytest.raises(SimulationError):
            from_csv(path)

    def test_empty_collector_refused(self, tmp_path):
        with pytest.raises(SimulationError):
            to_csv(MetricsCollector(), tmp_path / "x.csv")
        with pytest.raises(SimulationError):
            to_json(MetricsCollector(), tmp_path / "x.json")

    def test_from_json_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(SimulationError):
            from_json(path)

    def test_from_json_rejects_ragged_series(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"epochs": 2, "series": {"a": [1.0]}}))
        with pytest.raises(SimulationError):
            from_json(path)


class TestCli:
    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_command(self, capsys):
        assert main(["run", "--policy", "rfh", *FAST]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "policy=rfh" in out

    def test_run_with_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "m.csv"
        json_path = tmp_path / "m.json"
        code = main(
            ["run", "--policy", "random", *FAST, "--csv", str(csv_path), "--json", str(json_path)]
        )
        assert code == 0
        assert csv_path.exists() and json_path.exists()
        loaded = from_json(json_path)
        assert loaded.num_epochs == 25

    def test_run_flash_scenario(self, capsys):
        assert main(["run", "--scenario", "flash", *FAST]) == 0
        assert "flash-crowd" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", *FAST]) == 0
        out = capsys.readouterr().out
        for policy in ("rfh", "random", "owner", "request"):
            assert policy in out
        assert "utilization ranking:" in out

    def test_figures_unknown_selection(self, capsys):
        assert main(["figures", "--only", "fig99"]) == 2

    def test_sla_command(self, capsys):
        assert main(["sla", *FAST]) in (0, 1)
        out = capsys.readouterr().out
        assert "attainment" in out

    def test_run_trace_out_emits_parseable_jsonl(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            ["run", "--policy", "rfh", *FAST, "--trace-out", str(trace_path), "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase timings:" in out
        assert "serve" in out
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines() if line
        ]
        assert records, "trace file is empty"
        actions = [r for r in records if r["kind"] in ("replicate", "migrate", "suicide")]
        assert actions, "no action records traced"
        assert all(r["reason"] for r in actions)
        assert all(r["policy"] == "rfh" for r in records)

    def test_compare_trace_out_tags_policies(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["compare", *FAST, "--trace-out", str(trace_path)]) == 0
        policies = {
            json.loads(line)["policy"]
            for line in trace_path.read_text().splitlines()
            if line
        }
        assert policies == {"rfh", "random", "owner", "request"}
