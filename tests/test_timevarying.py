"""Time-varying workload patterns (diurnal, bursty) and surge experiments."""

import numpy as np
import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.errors import WorkloadError
from repro.sim.rng import RngTree
from repro.workload import (
    BurstyPattern,
    DiurnalPattern,
    HotspotPattern,
    QueryGenerator,
    UniformPattern,
)
from repro.workload.timevarying import rate_multiplier_of


class TestRateMultiplier:
    def test_default_is_one(self):
        pattern = UniformPattern(4, 4, 0.0)
        assert rate_multiplier_of(pattern, 5) == 1.0

    def test_negative_multiplier_rejected(self):
        class Bad:
            num_partitions = 4
            num_origins = 4

            def rate_multiplier(self, epoch):
                return -1.0

        with pytest.raises(WorkloadError):
            rate_multiplier_of(Bad(), 0)


class TestDiurnal:
    def test_sinusoid_shape(self):
        p = DiurnalPattern(4, 4, 0.0, period_epochs=100, amplitude=0.5)
        assert p.rate_multiplier(0) == pytest.approx(1.0)
        assert p.rate_multiplier(25) == pytest.approx(1.5)
        assert p.rate_multiplier(75) == pytest.approx(0.5)

    def test_strictly_positive(self):
        p = DiurnalPattern(4, 4, 0.0, period_epochs=40, amplitude=0.9)
        assert all(p.rate_multiplier(e) > 0 for e in range(200))

    def test_wraps_periodically(self):
        p = DiurnalPattern(4, 4, 0.0, period_epochs=60)
        assert p.rate_multiplier(10) == pytest.approx(p.rate_multiplier(70))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            DiurnalPattern(4, 4, 0.0, period_epochs=1)
        with pytest.raises(WorkloadError):
            DiurnalPattern(4, 4, 0.0, amplitude=1.0)
        with pytest.raises(WorkloadError):
            DiurnalPattern(4, 4, 0.0).rate_multiplier(-1)

    def test_base_pattern_weights_pass_through(self):
        base = HotspotPattern(4, 4, 0.0, hot_origins=(0,), hot_share=0.9)
        p = DiurnalPattern(4, 4, 0.0, base=base)
        assert p.origin_weights(3)[0] == pytest.approx(0.9)

    def test_generator_follows_the_cycle(self):
        params = WorkloadParameters(queries_per_epoch_mean=400.0, num_partitions=8)
        pattern = DiurnalPattern(8, 10, 0.0, period_epochs=40, amplitude=0.8)
        gen = QueryGenerator(params, pattern, RngTree(3).stream("d"))
        totals = [gen.generate(e).total for e in range(40)]
        peak = np.mean(totals[5:15])  # around epoch 10 (peak)
        trough = np.mean(totals[25:35])  # around epoch 30 (trough)
        assert peak > 2.0 * trough


class TestBursty:
    def test_burst_windows(self):
        p = BurstyPattern(4, 4, 0.0, bursts={(10, 20): 4.0})
        assert p.rate_multiplier(9) == 1.0
        assert p.rate_multiplier(10) == 4.0
        assert p.rate_multiplier(19) == 4.0
        assert p.rate_multiplier(20) == 1.0

    def test_overlapping_bursts_multiply(self):
        p = BurstyPattern(4, 4, 0.0, bursts={(0, 10): 2.0, (5, 15): 3.0})
        assert p.rate_multiplier(7) == 6.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BurstyPattern(4, 4, 0.0, bursts={(10, 10): 2.0})
        with pytest.raises(WorkloadError):
            BurstyPattern(4, 4, 0.0, bursts={(0, 10): -1.0})

    def test_rfh_absorbs_a_burst(self):
        """End-to-end: a 3x burst raises blocking transiently, and RFH
        grows replicas in response."""
        from repro.sim import Simulation
        from repro.workload import WorkloadTrace

        wl = WorkloadParameters(queries_per_epoch_mean=120.0, num_partitions=16)
        pattern = BurstyPattern(16, 10, 0.9, bursts={(60, 80): 3.0})
        gen = QueryGenerator(wl, pattern, RngTree(5).stream("b"))
        trace = WorkloadTrace.record(gen, 140)
        cfg = SimulationConfig(seed=5, workload=wl)
        sim = Simulation(cfg, policy="rfh", workload=trace)
        m = sim.run(140)
        replicas = m.array("total_replicas")
        assert replicas[85:100].mean() > replicas[40:55].mean()


class TestSurgeExperimentsSmall:
    def test_location_shift_small(self):
        from repro.experiments.surges import location_shift_surge

        cfg = SimulationConfig(
            seed=9,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
            ),
        )
        result = location_shift_surge(cfg, epochs=160, shift_start=70, shift_end=90)
        assert result.passed, result.failed_checks()

    def test_popularity_shift_small(self):
        from repro.experiments.surges import popularity_shift_surge

        cfg = SimulationConfig(
            seed=9,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
            ),
        )
        result = popularity_shift_surge(cfg, epochs=200, shift_epoch=100, rotate_by=8)
        assert result.passed, result.failed_checks()
