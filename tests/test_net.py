"""WAN substrate: distances, graph validation, routing, hub structure."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.geo import build_default_hierarchy
from repro.net import Router, WanGraph, build_default_wan, build_wan, great_circle_km
from repro.net.builder import DEFAULT_LINKS
from repro.net.coordinates import INTRA_DATACENTER_KM, site_distance_km


class TestGreatCircle:
    def test_zero_for_same_point(self):
        assert great_circle_km(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_symmetry(self):
        d1 = great_circle_km(39.0, -77.0, 35.7, 139.7)
        d2 = great_circle_km(35.7, 139.7, 39.0, -77.0)
        assert d1 == pytest.approx(d2)

    def test_known_distance_beijing_tokyo(self):
        # Beijing <-> Tokyo is roughly 2,100 km.
        d = great_circle_km(39.90, 116.40, 35.68, 139.69)
        assert 1900 < d < 2300

    def test_antipodal_is_half_circumference(self):
        d = great_circle_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(np.pi * 6371.0, rel=1e-6)

    def test_intra_datacenter_distance(self):
        h = build_default_hierarchy()
        assert site_distance_km(h.site(0), h.site(0)) == INTRA_DATACENTER_KM

    def test_site_distance_positive_across_sites(self):
        h = build_default_hierarchy()
        assert site_distance_km(h.site(0), h.site(9)) > 1000


class TestWanGraph:
    def test_default_wan_shape(self):
        _, wan = build_default_wan()
        assert wan.num_nodes == 10
        assert wan.num_edges == len(DEFAULT_LINKS)

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            WanGraph(3, [(0, 0, 1.0)])

    def test_rejects_unknown_node(self):
        with pytest.raises(TopologyError):
            WanGraph(3, [(0, 5, 1.0)])

    def test_rejects_non_positive_distance(self):
        with pytest.raises(TopologyError):
            WanGraph(3, [(0, 1, 0.0), (1, 2, 1.0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(TopologyError):
            WanGraph(3, [(0, 1, 1.0), (1, 0, 2.0), (1, 2, 1.0)])

    def test_rejects_disconnected(self):
        with pytest.raises(TopologyError):
            WanGraph(4, [(0, 1, 1.0), (2, 3, 1.0)])

    def test_edge_distance_lookup(self):
        wan = WanGraph(3, [(0, 1, 5.0), (1, 2, 7.0)])
        assert wan.edge_distance_km(0, 1) == 5.0
        assert wan.edge_distance_km(1, 0) == 5.0
        with pytest.raises(TopologyError):
            wan.edge_distance_km(0, 2)

    def test_neighbors_sorted(self):
        wan = WanGraph(4, [(0, 3, 1.0), (0, 1, 1.0), (1, 2, 1.0)])
        assert wan.neighbors(0) == (1, 3)

    def test_edges_normalised(self):
        wan = WanGraph(3, [(2, 0, 4.0), (1, 0, 3.0)])
        assert wan.edges() == ((0, 1, 3.0), (0, 2, 4.0))

    def test_as_networkx_is_a_copy(self):
        wan = WanGraph(2, [(0, 1, 1.0)])
        g = wan.as_networkx()
        g.remove_edge(0, 1)
        assert wan.has_edge(0, 1)


class TestRouter:
    def test_path_endpoints_inclusive(self, router):
        path = router.path(7, 0)
        assert path[0] == 7 and path[-1] == 0

    def test_self_path_is_singleton(self, router):
        assert router.path(3, 3) == (3,)
        assert router.hop_count(3, 3) == 0
        assert router.distance_km(3, 3) == 0.0

    def test_paths_are_shortest(self, router, wan):
        """Every reported distance equals the sum of edge weights along
        the reported path, and no single edge shortcut beats it."""
        for s in range(10):
            for d in range(10):
                path = router.path(s, d)
                total = sum(
                    wan.edge_distance_km(path[i], path[i + 1])
                    for i in range(len(path) - 1)
                )
                assert total == pytest.approx(router.distance_km(s, d))
                if wan.has_edge(s, d):
                    assert router.distance_km(s, d) <= wan.edge_distance_km(s, d) + 1e-9

    def test_next_hop_consistent_with_path(self, router):
        for s in range(10):
            for d in range(10):
                if s == d:
                    assert router.next_hop(s, d) == s
                else:
                    assert router.next_hop(s, d) == router.path(s, d)[1]

    def test_asia_to_a_transits_hubs(self, router, hierarchy):
        """The Fig. 1 situation: queries from H/I/J to A pass through the
        Canadian corridor (E, D) — the structural traffic hubs."""
        for origin_name in ("H", "I", "J"):
            origin = hierarchy.by_name(origin_name).index
            path = router.path(origin, hierarchy.by_name("A").index)
            names = {hierarchy.site(dc).name for dc in path[1:-1]}
            assert {"E", "D"} & names, f"{origin_name}->A transit was {names}"

    def test_transit_counts_identify_hubs(self, router, hierarchy):
        counts = router.transit_counts()
        by_name = {hierarchy.site(i).name: int(counts[i]) for i in range(10)}
        top3 = sorted(by_name, key=by_name.get, reverse=True)[:3]
        # D, E and F carry the bulk of trans-continental forwarding.
        assert set(top3) <= {"A", "D", "E", "F", "I"}
        assert by_name["E"] > 0 and by_name["D"] > 0 and by_name["F"] > 0
        # Leaf sites forward nothing.
        assert by_name["B"] == 0 and by_name["G"] == 0 and by_name["J"] == 0

    def test_wan_neighbors(self, router, hierarchy):
        a = hierarchy.by_name("A").index
        neigh = {hierarchy.site(i).name for i in router.wan_neighbors(a)}
        assert neigh == {"B", "C", "D", "F"}

    def test_distance_matrix_symmetric(self, router):
        m = router.distance_matrix_km()
        assert np.allclose(m, m.T)
        assert np.all(np.diag(m) == 0)

    def test_invalid_endpoints_raise(self, router):
        with pytest.raises(TopologyError):
            router.path(0, 10)
        with pytest.raises(TopologyError):
            router.distance_km(-1, 0)

    def test_routing_is_deterministic(self, hierarchy):
        wan = build_wan(hierarchy)
        r1, r2 = Router(wan), Router(wan)
        for s in range(10):
            for d in range(10):
                assert r1.path(s, d) == r2.path(s, d)


class TestBuilder:
    def test_link_to_unknown_site_rejected(self, hierarchy):
        with pytest.raises(TopologyError):
            build_wan(hierarchy, (("A", "Z"),))

    def test_self_link_rejected(self, hierarchy):
        with pytest.raises(TopologyError):
            build_wan(hierarchy, (("A", "A"),))

    def test_edge_weights_are_geo_distances(self, hierarchy):
        wan = build_wan(hierarchy)
        a, b = hierarchy.by_name("A"), hierarchy.by_name("B")
        assert wan.edge_distance_km(a.index, b.index) == pytest.approx(
            site_distance_km(a, b)
        )
