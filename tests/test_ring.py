"""Consistent-hashing ring: tokens, ownership, fingers, disruption."""

import math

import pytest

from repro.errors import RingError
from repro.ring import (
    HASH_SPACE_SIZE,
    FingerTable,
    HashRing,
    ring_distance,
    stable_hash,
)
from repro.ring.hashspace import in_arc


class TestHashSpace:
    def test_stable_hash_in_range(self):
        for key in ("a", "partition:0", "server:99:token:7"):
            assert 0 <= stable_hash(key) < HASH_SPACE_SIZE

    def test_stable_hash_is_stable(self):
        assert stable_hash("partition:0") == stable_hash("partition:0")

    def test_different_keys_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_ring_distance_basics(self):
        assert ring_distance(5, 5) == 0
        assert ring_distance(0, 10) == 10
        assert ring_distance(10, 0) == HASH_SPACE_SIZE - 10

    def test_ring_distance_complementarity(self):
        a, b = 123456, 987654
        assert ring_distance(a, b) + ring_distance(b, a) == HASH_SPACE_SIZE

    def test_in_arc(self):
        assert in_arc(5, 0, 10)
        assert not in_arc(0, 0, 10)  # half-open on the left
        assert in_arc(10, 0, 10)  # closed on the right
        assert in_arc(1, HASH_SPACE_SIZE - 5, 10)  # wraps


class TestHashRing:
    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(RingError):
            ring.owner(0)

    def test_tokens_per_server(self):
        ring = HashRing(tokens_per_server=4)
        ring.add_server(0)
        assert ring.num_tokens == 4
        assert ring.members == (0,)

    def test_duplicate_membership_rejected(self):
        ring = HashRing()
        ring.add_server(0)
        with pytest.raises(RingError):
            ring.add_server(0)

    def test_remove_unknown_rejected(self):
        ring = HashRing()
        with pytest.raises(RingError):
            ring.remove_server(0)

    def test_owner_is_clockwise_successor(self, ring):
        tokens = ring.tokens()
        for i, token in enumerate(tokens[:50]):
            assert ring.owner(token.position) == token.sid
            # Just past a token, ownership moves to the next token.
            nxt = tokens[(i + 1) % len(tokens)]
            assert ring.owner((token.position + 1) % HASH_SPACE_SIZE) == nxt.sid

    def test_successors_are_distinct_servers(self, ring):
        succ = ring.successors(12345, 5)
        assert len(succ) == 5
        assert len(set(succ)) == 5

    def test_successors_bounded_by_membership(self):
        ring = HashRing()
        ring.add_server(1)
        ring.add_server(2)
        assert len(ring.successors(0, 10)) == 2

    def test_join_disruption_is_local(self, cluster):
        """Adding a server only reassigns keys to the new server —
        nobody else gains ownership ("only impacts its immediate
        neighbors")."""
        ring = HashRing()
        for sid in range(50):
            ring.add_server(sid)
        keys = [stable_hash(f"key:{i}") for i in range(2000)]
        before = [ring.owner(k) for k in keys]
        ring.add_server(50)
        after = [ring.owner(k) for k in keys]
        changed = [(b, a) for b, a in zip(before, after) if b != a]
        assert all(a == 50 for _, a in changed)
        # And the disruption is a small fraction (~1/51 of keys).
        assert len(changed) < len(keys) * 0.15

    def test_leave_disruption_is_local(self):
        ring = HashRing()
        for sid in range(50):
            ring.add_server(sid)
        keys = [stable_hash(f"key:{i}") for i in range(2000)]
        before = [ring.owner(k) for k in keys]
        ring.remove_server(7)
        after = [ring.owner(k) for k in keys]
        for b, a in zip(before, after):
            if b != 7:
                assert a == b  # only the departed server's keys moved

    def test_ownership_fractions_sum_to_one(self, ring):
        fractions = ring.ownership_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(f >= 0 for f in fractions.values())

    def test_ownership_reasonably_balanced(self, ring):
        fractions = ring.ownership_fractions()
        # 8 tokens x 100 servers: no server should own > 6x its fair share.
        assert max(fractions.values()) < 6.0 / 100


class TestPartitionMapper:
    def test_holders_are_members(self, mapper, ring):
        members = set(ring.members)
        assert all(h in members for h in mapper.holders())

    def test_holder_matches_owner(self, mapper, ring):
        for p in range(mapper.num_partitions):
            assert mapper.holder(p) == ring.owner(mapper.key(p))

    def test_partition_spread(self, mapper):
        """64 partitions over 100 servers should touch many servers."""
        assert len(set(mapper.holders())) > 25

    def test_successor_sites_start_at_owner(self, mapper):
        for p in range(8):
            succ = mapper.successor_sites(p, 3)
            assert succ[0] == mapper.holder(p)
            assert len(set(succ)) == 3

    def test_partitions_held_by_roundtrip(self, mapper):
        holders = mapper.holders()
        for p in (0, 5, 63):
            assert p in mapper.partitions_held_by(holders[p])

    def test_unknown_partition_rejected(self, mapper):
        with pytest.raises(RingError):
            mapper.key(64)


class TestFingerTable:
    def test_lookup_finds_owner(self, ring):
        ft = FingerTable(ring)
        for i in range(100):
            key = stable_hash(f"probe:{i}")
            owner_token, _hops = ft.lookup(key)
            assert owner_token.sid == ring.owner(key)

    def test_lookup_hops_are_logarithmic(self, ring):
        """The paper's 'cost of routing is O(log n)' claim."""
        ft = FingerTable(ring)
        bound = 2 * math.log2(ring.num_tokens) + 2
        worst = 0
        for i in range(200):
            key = stable_hash(f"probe:{i}")
            _, hops = ft.lookup(key, start_index=i % ring.num_tokens)
            worst = max(worst, hops)
        assert worst <= bound

    def test_lookup_from_server(self, ring):
        ft = FingerTable(ring)
        key = stable_hash("probe")
        sid, hops = ft.lookup_from_server(ring, key, start_sid=42)
        assert sid == ring.owner(key)
        assert hops >= 0

    def test_lookup_from_unknown_server_raises(self, ring):
        ft = FingerTable(ring)
        with pytest.raises(RingError):
            ft.lookup_from_server(ring, 0, start_sid=12345)

    def test_empty_ring_rejected(self):
        with pytest.raises(RingError):
            FingerTable(HashRing())

    def test_fingers_cover_doubling_distances(self, ring):
        ft = FingerTable(ring)
        fingers = ft.fingers_of(0)
        assert len(fingers) == 32  # one per bit of the id space


class TestOverlayAnalyzer:
    def _world(self, cluster, ring, mapper):
        from repro.cluster import ReplicaMap

        rm = ReplicaMap(cluster, 64, 0.5)
        rm.bootstrap(mapper.holders())
        return rm

    def test_owner_lookup_matches_finger_table(self, cluster, ring, mapper):
        from repro.ring import FingerTable, OverlayAnalyzer

        rm = self._world(cluster, ring, mapper)
        analyzer = OverlayAnalyzer(ring, mapper)
        ft = FingerTable(ring)
        start_index = next(
            i for i, t in enumerate(ring.tokens()) if t.sid == 0
        )  # same gateway token the analyzer uses for server 0
        for p in range(8):
            hops = analyzer.lookup_hops(p, start_sid=0, replicas=rm)
            full = len(ft.route(mapper.key(p), start_index)) - 1
            assert hops <= full  # a replica can only shorten the route

    def test_replication_shortens_lookups(self, cluster, ring, mapper):
        from repro.ring import OverlayAnalyzer

        rm = self._world(cluster, ring, mapper)
        analyzer = OverlayAnalyzer(ring, mapper)
        gateways = tuple(range(0, 100, 10))  # one per datacenter
        before = analyzer.survey(rm, gateways)
        # Blanket the system: every partition replicated on 20 servers.
        for p in range(64):
            holders = {sid for sid, _ in rm.servers_with(p)}
            for sid in range(0, 100, 5):
                if sid not in holders:
                    rm.add(p, sid)
        after = analyzer.survey(rm, gateways)
        assert after.mean_hops < before.mean_hops
        assert after.intercepted_fraction > before.intercepted_fraction

    def test_lookup_at_holder_gateway_is_zero(self, cluster, ring, mapper):
        from repro.ring import OverlayAnalyzer

        rm = self._world(cluster, ring, mapper)
        analyzer = OverlayAnalyzer(ring, mapper)
        holder = rm.holder(0)
        assert analyzer.lookup_hops(0, start_sid=holder, replicas=rm) == 0

    def test_logarithmic_bound_on_live_layout(self, cluster, ring, mapper):
        import math

        from repro.ring import OverlayAnalyzer

        rm = self._world(cluster, ring, mapper)
        analyzer = OverlayAnalyzer(ring, mapper)
        stats = analyzer.survey(rm, gateways=tuple(range(0, 100, 10)))
        assert stats.max_hops <= 2 * math.log2(ring.num_tokens) + 2
        assert stats.lookups == 64 * 10

    def test_unknown_gateway_raises(self, cluster, ring, mapper):
        from repro.errors import RingError
        from repro.ring import OverlayAnalyzer

        rm = self._world(cluster, ring, mapper)
        analyzer = OverlayAnalyzer(ring, mapper)
        with pytest.raises(RingError):
            analyzer.lookup_hops(0, start_sid=1234, replicas=rm)
        with pytest.raises(RingError):
            analyzer.survey(rm, gateways=())


class TestFingerRoute:
    def test_route_endpoints(self, ring):
        from repro.ring import FingerTable

        ft = FingerTable(ring)
        key = stable_hash("probe:route")
        route = ft.route(key, start_index=5)
        assert route[0] == ring.tokens()[5]
        assert route[-1].sid == ring.owner(key)

    def test_route_strictly_advances(self, ring):
        from repro.ring import FingerTable
        from repro.ring.hashspace import ring_distance

        ft = FingerTable(ring)
        key = stable_hash("probe:advance")
        route = ft.route(key, start_index=0)
        # Remaining clockwise distance to the key shrinks every hop —
        # except the final hop, which lands on the key's successor (its
        # position is just *past* the key, so its distance wraps).
        remaining = [ring_distance(t.position, key) for t in route[:-1]]
        assert all(b < a for a, b in zip(remaining, remaining[1:]))

    def test_lookup_consistent_with_route(self, ring):
        from repro.ring import FingerTable

        ft = FingerTable(ring)
        key = stable_hash("probe:consistency")
        owner, hops = ft.lookup(key, 3)
        route = ft.route(key, 3)
        assert owner == route[-1]
        assert hops == len(route) - 1
