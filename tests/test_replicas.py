"""Replica map: placement state, storage coupling, failure handling."""

import pytest

from repro.cluster import ReplicaMap
from repro.errors import ActionError, SimulationError


@pytest.fixture
def rm(cluster) -> ReplicaMap:
    rm = ReplicaMap(cluster, num_partitions=8, partition_size_mb=0.5)
    rm.bootstrap([0, 10, 20, 30, 40, 50, 60, 70])
    return rm


class TestBootstrap:
    def test_one_copy_per_partition(self, rm):
        assert rm.total_replicas() == 8
        assert rm.per_partition_counts() == [1] * 8
        assert rm.holder(0) == 0 and rm.holder(7) == 70

    def test_bootstrap_charges_storage(self, cluster, rm):
        assert cluster.server(0).storage_used_mb == pytest.approx(0.5)

    def test_double_bootstrap_rejected(self, rm):
        with pytest.raises(SimulationError):
            rm.bootstrap([0] * 8)

    def test_wrong_holder_count_rejected(self, cluster):
        rm = ReplicaMap(cluster, 4, 0.5)
        with pytest.raises(ActionError):
            rm.bootstrap([0, 1])


class TestAddRemove:
    def test_add_increments_and_stores(self, cluster, rm):
        rm.add(0, 5)
        assert rm.count(0, 5) == 1
        assert rm.replica_count(0) == 2
        assert cluster.server(5).storage_used_mb == pytest.approx(0.5)

    def test_multiplicity_allowed(self, rm):
        rm.add(0, 5)
        rm.add(0, 5)
        assert rm.count(0, 5) == 2
        assert rm.replica_count(0) == 3

    def test_remove_releases_storage(self, cluster, rm):
        rm.add(0, 5)
        rm.remove(0, 5)
        assert rm.count(0, 5) == 0
        assert cluster.server(5).storage_used_mb == 0.0

    def test_remove_last_copy_refused(self, rm):
        with pytest.raises(ActionError):
            rm.remove(0, 0)

    def test_remove_from_copyless_server_refused(self, rm):
        rm.add(0, 5)
        with pytest.raises(ActionError):
            rm.remove(0, 6)

    def test_add_to_dead_server_refused(self, cluster, rm):
        cluster.fail_server(5)
        with pytest.raises(ActionError):
            rm.add(0, 5)

    def test_unknown_partition_rejected(self, rm):
        with pytest.raises(ActionError):
            rm.add(99, 0)

    def test_holder_follows_when_holder_copy_removed(self, rm):
        rm.add(0, 5)
        rm.remove(0, 0)  # remove the original holder copy
        assert rm.holder(0) == 5


class TestMove:
    def test_move_transfers_one_copy(self, cluster, rm):
        rm.add(0, 5)
        rm.move(0, 5, 9)
        assert rm.count(0, 5) == 0
        assert rm.count(0, 9) == 1
        assert cluster.server(9).storage_used_mb == pytest.approx(0.5)
        assert cluster.server(5).storage_used_mb == 0.0

    def test_move_to_self_rejected(self, rm):
        rm.add(0, 5)
        with pytest.raises(ActionError):
            rm.move(0, 5, 5)

    def test_move_never_loses_last_copy(self, rm):
        # Moving the only copy is allowed because add happens first.
        rm.move(0, 0, 5)
        assert rm.replica_count(0) == 1
        assert rm.holder(0) == 5


class TestLayoutQueries:
    def test_replicas_by_dc_grouping(self, rm, cluster):
        rm.add(0, 5)  # dc 0
        rm.add(0, 15)  # dc 1
        layout = rm.replicas_by_dc(0)
        assert layout[0] == [(0, 1), (5, 1)]
        assert layout[1] == [(15, 1)]

    def test_layout_cache_invalidation(self, rm):
        layout1 = rm.replicas_by_dc(0)
        rm.add(0, 5)
        layout2 = rm.replicas_by_dc(0)
        assert layout1 != layout2

    def test_partitions_on(self, rm):
        rm.add(3, 5)
        assert rm.partitions_on(5) == (3,)
        assert rm.partitions_on(0) == (0,)

    def test_servers_with_sorted(self, rm):
        rm.add(0, 9)
        rm.add(0, 5)
        assert rm.servers_with(0) == ((0, 1), (5, 1), (9, 1))


class TestFailureHandling:
    def test_drop_server_erases_copies(self, cluster, rm):
        rm.add(0, 5)
        cluster.fail_server(5)
        affected = rm.drop_server(5)
        assert affected == (0,)
        assert rm.count(0, 5) == 0

    def test_holder_promotion_on_drop(self, cluster, rm):
        rm.add(0, 5)
        cluster.fail_server(0)
        rm.drop_server(0)
        assert rm.holder(0) == 5

    def test_total_loss_clears_holder(self, cluster, rm):
        cluster.fail_server(0)
        rm.drop_server(0)
        assert not rm.has_holder(0)
        with pytest.raises(SimulationError):
            rm.holder(0)

    def test_restore_recreates(self, cluster, rm):
        cluster.fail_server(0)
        rm.drop_server(0)
        rm.restore(0, 42)
        assert rm.holder(0) == 42
        assert rm.replica_count(0) == 1
        assert cluster.server(42).storage_used_mb == pytest.approx(0.5)

    def test_restore_with_holder_present_rejected(self, rm):
        with pytest.raises(SimulationError):
            rm.restore(0, 42)

    def test_set_holder_requires_copy(self, rm):
        rm.add(0, 5)
        rm.set_holder(0, 5)
        assert rm.holder(0) == 5
        with pytest.raises(ActionError):
            rm.set_holder(0, 6)


class TestStorageConsistency:
    def test_storage_tracks_total_copies(self, cluster, hierarchy):
        rm = ReplicaMap(cluster, 4, 0.5)
        rm.bootstrap([0, 1, 2, 3])
        for _ in range(10):
            rm.add(0, 50)
        total_mb = sum(s.storage_used_mb for s in cluster.servers)
        assert total_mb == pytest.approx(0.5 * rm.total_replicas())
