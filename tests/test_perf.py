"""Performance observability: profiler, counters, artifact, attribution.

The two load-bearing guarantees under test:

* **Determinism** — two same-seed runs produce bit-identical work
  counters and identical span-tree *shapes* (stack sets and per-stack
  call counts); only the measured seconds may differ.
* **Attribution** — an injected slowdown (a literal ``time.sleep`` in
  one kernel) is named by ``repro perfdiff``, down to the phase and the
  offending stack/function.
"""

import json
import re
import time

import numpy as np
import pytest

from repro.cli import main
from repro.config import SimulationConfig
from repro.experiments.scenarios import random_query_scenario
from repro.obs.perf import (
    PROF_FORMAT,
    PROF_VERSION,
    HotPathProfiler,
    PerfProfile,
    ProfileError,
    TraceProfiler,
    WorkCounters,
    build_profile,
    diff_profiles,
    profile_scenario,
    render_flamegraph,
    render_perfdiff_text,
)
from repro.obs.profiler import ENGINE_PHASES, NullProfiler, PhaseProfiler
from repro.obs.timeseries import TimeseriesRecorder, diff_artifacts
from repro.sim.engine import Simulation
from repro.sim.rng import RngTree

FAST = ["--epochs", "6", "--partitions", "8", "--rate", "60", "--seed", "3"]


def _small_profile(seed: int = 11, epochs: int = 6) -> PerfProfile:
    config = SimulationConfig(seed=seed)
    scenario = random_query_scenario(config, epochs=epochs)
    return profile_scenario("rfh", scenario, allocations=False)


# ----------------------------------------------------------------------
# Work counters
# ----------------------------------------------------------------------
class TestWorkCounters:
    def test_totals_flat_mapping(self):
        work = WorkCounters()
        work.partitions_scanned = 3
        work.rng_draws["workload"] = 7
        totals = work.totals()
        assert totals["partitions_scanned"] == 3.0
        assert totals["rng_draws/workload"] == 7.0
        assert totals["migrate_actions"] == 0.0

    def test_epoch_deltas_are_differences(self):
        work = WorkCounters()
        work.decisions_evaluated = 5
        first = work.epoch_deltas()
        assert first["decisions_evaluated"] == 5.0
        work.decisions_evaluated = 9
        second = work.epoch_deltas()
        assert second["decisions_evaluated"] == 4.0

    def test_reset(self):
        work = WorkCounters()
        work.graph_hops = 10
        work.rng_draws["x"] = 2
        work.epoch_deltas()
        work.reset()
        assert work.graph_hops == 0
        assert work.totals()["graph_hops"] == 0.0
        assert work.epoch_deltas()["graph_hops"] == 0.0


class TestRngDrawCounting:
    def test_counts_method_calls_per_stream(self):
        tree = RngTree(5)
        counts: dict[str, int] = {}
        tree.attach_draw_counter(counts)
        gen = tree.stream("workload")
        gen.random()
        gen.poisson(1.0, size=100)  # one vectorised call = one unit
        tree.stream("failures").integers(0, 10)
        assert counts == {"workload": 2, "failures": 1}

    def test_counting_does_not_perturb_draws(self):
        plain = RngTree(5).stream("workload")
        counted_tree = RngTree(5)
        counted_tree.attach_draw_counter({})
        counted = counted_tree.stream("workload")
        assert float(plain.random()) == float(counted.random())

    def test_stream_states_reads_real_generator(self):
        tree = RngTree(5)
        tree.attach_draw_counter({})
        tree.stream("workload").random()
        reference = RngTree(5)
        reference.stream("workload").random()
        assert tree.stream_states() == reference.stream_states()

    def test_attach_after_streams_exist_raises(self):
        tree = RngTree(5)
        tree.stream("workload")
        with pytest.raises(ValueError, match="before any stream"):
            tree.attach_draw_counter({})


# ----------------------------------------------------------------------
# Base profiler additions (call counts, merge, null spans)
# ----------------------------------------------------------------------
class TestPhaseProfilerAdditions:
    def test_call_counts(self):
        profiler = PhaseProfiler()
        with profiler.phase("serve"):
            pass
        with profiler.phase("serve"):
            pass
        assert profiler.call_counts()["serve"] == 2
        assert profiler.call_counts()["apply"] == 0

    def test_merge_extends_samples_and_registers_new_phases(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        with a.phase("serve"):
            pass
        with b.phase("serve"):
            pass
        with b.phase("warmup"):  # not one of the engine's six
            pass
        a.merge(b)
        assert a.call_counts()["serve"] == 2
        assert a.call_counts()["warmup"] == 1
        assert a.phase_timings()["serve"].count == 2

    def test_span_is_noop_on_base_and_null(self):
        for profiler in (PhaseProfiler(), NullProfiler()):
            with profiler.span("routing"):
                pass  # must not raise or record anything


# ----------------------------------------------------------------------
# HotPathProfiler span trees
# ----------------------------------------------------------------------
class TestHotPathProfiler:
    def test_nested_spans_build_stack_paths(self):
        profiler = HotPathProfiler()
        with profiler.phase("observe"):
            with profiler.span("decision-eval"):
                with profiler.span("threshold-checks"):
                    pass
        stacks = {";".join(n["stack"]) for n in profiler.span_nodes()}
        assert "observe" in stacks
        assert "observe;decision-eval" in stacks
        assert "observe;decision-eval;threshold-checks" in stacks

    def test_self_time_excludes_children(self):
        profiler = HotPathProfiler()
        with profiler.phase("observe"):
            with profiler.span("inner"):
                time.sleep(0.01)
        nodes = {";".join(n["stack"]): n for n in profiler.span_nodes()}
        parent, child = nodes["observe"], nodes["observe;inner"]
        assert child["self_s"] == child["total_s"]
        assert parent["self_s"] == pytest.approx(
            parent["total_s"] - child["total_s"]
        )
        assert child["total_s"] >= 0.01

    def test_merge_accumulates_nodes(self):
        a, b = HotPathProfiler(), HotPathProfiler()
        for profiler in (a, b):
            with profiler.phase("serve"):
                with profiler.span("routing"):
                    pass
        a.merge(b)
        nodes = {";".join(n["stack"]): n for n in a.span_nodes()}
        assert nodes["serve;routing"]["count"] == 2

    def test_reset_clears_nodes(self):
        profiler = HotPathProfiler()
        with profiler.phase("serve"):
            with profiler.span("routing"):
                pass
        profiler.reset()
        assert profiler.span_nodes() == []
        assert profiler.epochs_profiled() == 0


class TestTraceProfiler:
    def test_charges_sleep_to_calling_python_frame(self):
        def hot_spot():
            time.sleep(0.03)

        tracer = TraceProfiler()
        with tracer:
            hot_spot()
        hot = [
            n
            for n in tracer.span_nodes()
            if n["stack"][-1].endswith("hot_spot")
        ]
        assert hot, "hot_spot frame missing from the trace"
        assert float(hot[0]["self_s"]) >= 0.025


# ----------------------------------------------------------------------
# Determinism of counters and span-tree shape
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_same_counters_and_stack_shape(self):
        a = _small_profile(seed=11)
        b = _small_profile(seed=11)
        assert a.counters == b.counters
        assert a.counters  # non-trivial: the run counted something
        assert a.stack_keys() == b.stack_keys()
        counts_a = {";".join(n["stack"]): n["count"] for n in a.nodes}
        counts_b = {";".join(n["stack"]): n["count"] for n in b.nodes}
        assert counts_a == counts_b
        # Collapsed-stack *shape*: same stacks in the same order.
        def shape(p):
            return [line.rsplit(" ", 1)[0] for line in p.collapsed().splitlines()]

        assert shape(a) == shape(b)

    def test_profile_covers_the_kernel_spans(self):
        profile = _small_profile(seed=11)
        stacks = set(profile.stack_keys())
        assert set(ENGINE_PHASES) <= {s.split(";")[0] for s in stacks}
        for expected in (
            "observe;ewma-smoothing",
            "observe;decision-eval",
            "observe;decision-eval;threshold-checks",
            "serve;routing",
            "serve;overflow-recursion",
            "record;storage-accounting",
        ):
            assert expected in stacks

    def test_work_columns_recorded_per_epoch(self):
        recorder = TimeseriesRecorder(stride=1)
        work = WorkCounters()
        sim = Simulation(
            SimulationConfig(seed=5), policy="rfh", timeseries=recorder, work=work
        )
        sim.run(6)
        art = recorder.artifact()
        names = [n for n in art.column_names() if n.startswith("work/")]
        assert "work/decisions_evaluated" in names
        assert "work/partitions_scanned" in names
        # Per-epoch deltas sum back to the lifetime total.
        assert float(np.nansum(art.column("work/decisions_evaluated"))) == float(
            work.decisions_evaluated
        )

    def test_work_columns_are_diff_neutral(self):
        def record(scale: float):
            rec = TimeseriesRecorder(stride=1)
            for epoch in range(4):
                rec.sample(
                    epoch,
                    {"utilization": 0.5, "work/decisions_evaluated": 8.0 * scale},
                )
            return rec.artifact()

        report = diff_artifacts(record(1.0), record(3.0))
        assert report.exit_code() == 0  # more work alone never gates
        row = next(
            c for c in report.columns if c.name == "work/decisions_evaluated"
        )
        assert row.classification != "regressed"


# ----------------------------------------------------------------------
# Artifact round-trip and exporters
# ----------------------------------------------------------------------
class TestArtifact:
    def test_save_load_roundtrip(self, tmp_path):
        profile = _small_profile(seed=3, epochs=4)
        path = tmp_path / "run.prof.json"
        profile.save(path)
        loaded = PerfProfile.load(path)
        assert loaded.to_dict() == profile.to_dict()
        payload = json.loads(path.read_text())
        assert payload["format"] == PROF_FORMAT
        assert payload["version"] == PROF_VERSION

    def test_load_rejects_foreign_and_future_versions(self, tmp_path):
        foreign = tmp_path / "x.json"
        foreign.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ProfileError, match="not a repro-prof"):
            PerfProfile.load(foreign)
        future = tmp_path / "y.json"
        future.write_text(
            json.dumps({"format": PROF_FORMAT, "version": PROF_VERSION + 1})
        )
        with pytest.raises(ProfileError, match="version"):
            PerfProfile.load(future)

    def test_collapsed_format(self):
        profile = _small_profile(seed=3, epochs=4)
        lines = profile.collapsed().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack
            assert int(weight) >= 0

    def test_speedscope_document_is_valid(self):
        profile = _small_profile(seed=3, epochs=4)
        doc = profile.speedscope()
        assert doc["$schema"].endswith("file-format-schema.json")
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert len(prof["samples"]) == len(prof["weights"])
        num_frames = len(doc["shared"]["frames"])
        assert all(
            0 <= fid < num_frames for stack in prof["samples"] for fid in stack
        )
        assert prof["endValue"] == pytest.approx(sum(prof["weights"]))

    def test_flamegraph_is_self_contained(self):
        profile = _small_profile(seed=3, epochs=4)
        html = render_flamegraph(profile)
        assert not re.search(r"https?://", html)
        match = re.search(
            r'<script id="profile-data" type="application/json">(.*?)</script>',
            html,
            re.DOTALL,
        )
        assert match, "embedded profile data missing"
        embedded = json.loads(match.group(1))
        assert len(embedded["nodes"]) == len(profile.nodes)


# ----------------------------------------------------------------------
# Attribution: diffing and the injected-slowdown scenario
# ----------------------------------------------------------------------
def _session(slow: bool) -> PerfProfile:
    """One synthetic profiling session; ``slow`` injects a sleep into
    the ewma-smoothing kernel under the observe phase."""
    profiler = HotPathProfiler()
    for _ in range(3):
        with profiler.phase("observe"):
            with profiler.span("ewma-smoothing"):
                if slow:
                    time.sleep(0.02)
    return build_profile(profiler=profiler, meta={"policy": "rfh"})


class TestPerfDiff:
    def test_no_regression_between_identical_sessions(self):
        report = diff_profiles(_session(False), _session(False))
        assert report.exit_code() == 0

    def test_injected_slowdown_is_named(self):
        report = diff_profiles(_session(False), _session(True))
        assert report.exit_code() == 1
        names = [d.name for d in report.regressions()]
        assert "observe;ewma-smoothing" in names  # the offending kernel
        assert "observe" in names  # and its phase
        text = render_perfdiff_text(report)
        assert "REGRESSED" in text
        assert "observe;ewma-smoothing" in text

    def test_counters_neutral_unless_gated(self):
        base = PerfProfile(counters={"graph_hops": 100.0})
        cand = PerfProfile(counters={"graph_hops": 200.0})
        assert diff_profiles(base, cand).exit_code() == 0
        gated = diff_profiles(base, cand, gate_counters=True)
        assert gated.exit_code() == 1
        assert gated.regressions()[0].name == "graph_hops"

    def test_new_stack_compared_against_zero(self):
        base = _session(False)
        cand = build_profile(profiler=HotPathProfiler())
        with_extra = PerfProfile(
            meta={},
            phases=cand.phases,
            nodes=[
                {"stack": ["apply", "new-kernel"], "count": 1,
                 "total_s": 0.5, "self_s": 0.5}
            ],
        )
        report = diff_profiles(base, with_extra)
        assert any(
            d.name == "apply;new-kernel" and d.classification == "regressed"
            for d in report.deltas
        )

    def test_sleep_attributed_in_trace_mode(self):
        def run_once(slow: bool) -> PerfProfile:
            def hot_spot():
                if slow:
                    time.sleep(0.03)

            tracer = TraceProfiler()
            with tracer:
                for _ in range(3):
                    hot_spot()
            return build_profile(tracer=tracer)

        report = diff_profiles(run_once(False), run_once(True))
        assert report.exit_code() == 1
        assert any("hot_spot" in d.name for d in report.regressions())


# ----------------------------------------------------------------------
# CLI: repro profile / repro perfdiff
# ----------------------------------------------------------------------
class TestCli:
    def test_profile_writes_all_artifacts(self, tmp_path, capsys):
        out = tmp_path / "run.prof.json"
        code = main(["profile", *FAST, "--out", str(out)])
        assert code == 0
        profile = PerfProfile.load(out)
        assert profile.meta["policy"] == "rfh"
        assert profile.counters
        flame = tmp_path / "run.flame.html"
        scope = tmp_path / "run.speedscope.json"
        assert flame.exists() and scope.exists()
        assert not re.search(r"https?://", flame.read_text())
        scope_doc = json.loads(scope.read_text())
        assert scope_doc["profiles"][0]["type"] == "sampled"
        captured = capsys.readouterr().out
        assert "hottest" in captured
        assert "work counters" in captured

    def test_profile_trace_mode(self, tmp_path):
        out = tmp_path / "t.prof.json"
        code = main(
            ["profile", *FAST, "--mode", "trace", "--no-alloc",
             "--out", str(out), "--flamegraph", "", "--speedscope", ""]
        )
        assert code == 0
        profile = PerfProfile.load(out)
        assert profile.meta["mode"] == "trace"
        # Trace mode attributes to real functions, not hand-placed spans.
        assert any("engine.py" in key for key in profile.stack_keys())
        assert not (tmp_path / "t.flame.html").exists()

    def test_perfdiff_cli_names_the_regression(self, tmp_path, capsys):
        base, cand = tmp_path / "a.prof.json", tmp_path / "b.prof.json"
        _session(False).save(base)
        _session(True).save(cand)
        code = main(["perfdiff", str(base), str(cand)])
        assert code == 1
        out = capsys.readouterr().out
        assert "observe;ewma-smoothing" in out
        capsys.readouterr()
        assert main(["perfdiff", str(base), str(base)]) == 0

    def test_perfdiff_json_format(self, tmp_path, capsys):
        base, cand = tmp_path / "a.prof.json", tmp_path / "b.prof.json"
        _session(False).save(base)
        _session(True).save(cand)
        code = main(["perfdiff", str(base), str(cand), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressed"] >= 1

    def test_perfdiff_missing_file_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no such profile"):
            main(["perfdiff", str(tmp_path / "a"), str(tmp_path / "b")])


# ----------------------------------------------------------------------
# Dashboard work panel
# ----------------------------------------------------------------------
class TestDashboardWorkPanel:
    def _artifact(self, scale: float = 1.0):
        rec = TimeseriesRecorder(stride=1)
        for epoch in range(5):
            rec.sample(
                epoch,
                {
                    "utilization": 0.5,
                    "work/decisions_evaluated": 8.0 * scale,
                    "work/graph_hops": 40.0 * scale,
                },
            )
        return rec.artifact()

    def test_work_panel_rendered(self):
        from repro.obs.timeseries import render_dashboard

        html = render_dashboard(self._artifact())
        assert "Work per epoch" in html
        assert "decisions_evaluated" in html
        assert not re.search(r"https?://", html)

    def test_work_panel_baseline_overlay(self):
        from repro.obs.timeseries import render_dashboard

        html = render_dashboard(self._artifact(2.0), self._artifact(1.0))
        assert "Work per epoch" in html
