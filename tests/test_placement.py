"""Placement helpers: storage gate, blocking-probability choice."""

import numpy as np

from repro.core.placement import (
    choose_lowest_blocking,
    choose_random_server,
    eligible_servers,
)


class TestEligibleServers:
    def test_all_eligible_initially(self, cluster):
        sids = eligible_servers(cluster, 0, 0.5, 0.7)
        assert sids == list(range(10))

    def test_storage_gate_excludes(self, cluster):
        server = cluster.server(0)
        server.store(0.71 * server.storage_capacity_mb)
        assert 0 not in eligible_servers(cluster, 0, 0.5, 0.7)

    def test_dead_servers_excluded(self, cluster):
        cluster.fail_server(3)
        assert 3 not in eligible_servers(cluster, 0, 0.5, 0.7)

    def test_explicit_exclusion(self, cluster):
        assert 5 not in eligible_servers(cluster, 0, 0.5, 0.7, exclude=[5])


class TestLowestBlocking:
    def test_picks_minimum_bp(self, cluster):
        bp = np.zeros(cluster.num_servers)
        bp[:10] = np.linspace(0.9, 0.0, 10)  # sid 9 has the lowest BP
        assert choose_lowest_blocking(cluster, 0, bp, 0.5, 0.7) == 9

    def test_tie_breaks_by_sid(self, cluster):
        bp = np.zeros(cluster.num_servers)
        assert choose_lowest_blocking(cluster, 0, bp, 0.5, 0.7) == 0

    def test_none_when_dc_full(self, cluster):
        for server in cluster.alive_in_dc(0):
            server.store(0.71 * server.storage_capacity_mb)
        bp = np.zeros(cluster.num_servers)
        assert choose_lowest_blocking(cluster, 0, bp, 0.5, 0.7) is None

    def test_respects_exclusion(self, cluster):
        bp = np.zeros(cluster.num_servers)
        chosen = choose_lowest_blocking(cluster, 0, bp, 0.5, 0.7, exclude=[0])
        assert chosen == 1


class TestRandomChoice:
    def test_uniform_over_eligible(self, cluster, rng):
        picks = {
            choose_random_server(cluster, 0, rng, 0.5, 0.7) for _ in range(200)
        }
        assert picks == set(range(10))

    def test_none_when_empty(self, cluster, rng):
        assert (
            choose_random_server(cluster, 0, rng, 0.5, 0.7, exclude=range(10)) is None
        )

    def test_deterministic_given_stream(self, cluster):
        a = choose_random_server(cluster, 0, np.random.default_rng(5), 0.5, 0.7)
        b = choose_random_server(cluster, 0, np.random.default_rng(5), 0.5, 0.7)
        assert a == b
