"""Migration planning helpers (Eqs. 16–17)."""

import numpy as np

from repro.core.migration import (
    coldest_replica_dc,
    mean_partition_traffic,
    pick_hub_target,
    replica_sid_in_dc,
)


class TestMeanTraffic:
    def test_eq17_average_over_all_nodes(self):
        assert mean_partition_traffic(np.array([2.0, 4.0, 0.0, 2.0])) == 2.0


class TestColdestReplica:
    def test_picks_minimum_traffic(self):
        traffic = np.array([5.0, 1.0, 3.0, 0.5])
        assert coldest_replica_dc(traffic, [0, 1, 2]) == 1

    def test_exclusion(self):
        traffic = np.array([5.0, 1.0, 3.0])
        assert coldest_replica_dc(traffic, [0, 1, 2], exclude=[1]) == 2

    def test_tie_breaks_by_index(self):
        traffic = np.array([1.0, 1.0, 1.0])
        assert coldest_replica_dc(traffic, [2, 0, 1]) == 0

    def test_none_when_empty(self):
        assert coldest_replica_dc(np.array([1.0]), [], exclude=[]) is None


class TestHubTarget:
    def test_prefers_hub_without_replica(self):
        traffic = np.array([9.0, 8.0, 7.0])
        # Hub 0 is hottest but already holds a replica.
        assert pick_hub_target([0, 1, 2], traffic, replica_dcs=[0]) == 1

    def test_falls_back_to_hottest_when_all_covered(self):
        traffic = np.array([9.0, 8.0, 7.0])
        assert pick_hub_target([0, 1, 2], traffic, replica_dcs=[0, 1, 2]) == 0

    def test_none_on_empty_hub_list(self):
        assert pick_hub_target([], np.array([1.0]), []) is None


class TestReplicaSid:
    def test_lowest_sid_in_dc(self):
        layout = {3: [(31, 1), (35, 2)]}
        assert replica_sid_in_dc(layout, 3) == 31

    def test_none_for_uncovered_dc(self):
        assert replica_sid_in_dc({3: [(31, 1)]}, 4) is None
