"""The decision-provenance ledger: recorder capture, the ``.prov.json``
artifact, trace cross-check and the shared artifact-path helpers
(``repro.obs.provenance`` / ``repro.obs.paths``)."""

import json
import math

import pytest

from repro.config import SimulationConfig
from repro.errors import ProvenanceError
from repro.experiments.comparison import POLICIES, compare_policies
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import random_query_scenario
from repro.obs.paths import derived_path, split_suffix, tagged_path
from repro.obs.provenance import (
    ProvArtifact,
    ProvenanceRecorder,
    crosscheck_trace,
    diff_provenance,
)
from repro.obs.trace import RingBufferTracer
from repro.sim import reasons
from repro.sim.actions import Replicate, Suicide


def _scenario(epochs=12, partitions=16):
    config = SimulationConfig()
    import dataclasses

    config = dataclasses.replace(
        config,
        workload=dataclasses.replace(config.workload, num_partitions=partitions),
    )
    return random_query_scenario(config, epochs=epochs)


def _recorded_run(epochs=12, policy="rfh", tracer=None, budget=None):
    recorder = (
        ProvenanceRecorder(budget=budget) if budget else ProvenanceRecorder()
    )
    result = run_experiment(
        policy, _scenario(epochs=epochs), provenance=recorder, tracer=tracer
    )
    return recorder, result


# ----------------------------------------------------------------------
# Recorder unit behaviour
# ----------------------------------------------------------------------
class TestRecorder:
    def test_close_seals_one_action_grow_xor_shrink(self):
        rec = ProvenanceRecorder()
        draft = rec.open(
            epoch=0, partition=3, avg_query=1.0, holder_traffic=2.0,
            unserved=0.0, mean_traffic=1.0, replica_count=1, rmin=2, holder_dc=0,
        )
        draft.branch = "availability"
        actions = [
            Replicate(3, 0, 5, reason=reasons.AVAILABILITY),
            Replicate(3, 0, 9, reason=reasons.TRAFFIC_HUB),
        ]
        rec.close(draft, actions, dc_of=lambda sid: sid // 10)
        (record,) = rec.records
        assert record.action == "replicate"
        assert record.reason == reasons.AVAILABILITY
        assert record.target_sid == 5
        assert record.target_dc == 0

    def test_note_fate_stamps_pending_record(self):
        rec = ProvenanceRecorder()
        draft = rec.open(
            epoch=0, partition=1, avg_query=1.0, holder_traffic=2.0,
            unserved=0.0, mean_traffic=1.0, replica_count=1, rmin=2, holder_dc=0,
        )
        action = Replicate(1, 0, 5, reason=reasons.AVAILABILITY)
        rec.close(draft, [action])
        rec.note_fate(0, "replicate", action, "applied", target_dc=4)
        (record,) = rec.records
        assert record.fate == "applied"
        assert record.target_dc == 4

    def test_note_fate_synthesizes_for_draftless_policy(self):
        rec = ProvenanceRecorder()
        action = Suicide(7, 42, reason=reasons.COLD_REPLICA)
        rec.note_fate(3, "suicide", action, "skipped", cause=reasons.SKIP_LAST_COPY)
        (record,) = rec.records
        assert record.partition == 7
        assert record.branch == ""
        assert record.action == "suicide"
        assert record.target_sid == 42
        assert record.fate == "skipped"
        assert record.fate_cause == reasons.SKIP_LAST_COPY

    def test_pending_does_not_leak_across_epochs(self):
        rec = ProvenanceRecorder()
        draft = rec.open(
            epoch=0, partition=1, avg_query=1.0, holder_traffic=2.0,
            unserved=0.0, mean_traffic=1.0, replica_count=1, rmin=2, holder_dc=0,
        )
        action = Replicate(1, 0, 5, reason=reasons.AVAILABILITY)
        rec.close(draft, [action])
        # A fate arriving in a later epoch must not match epoch 0's
        # pending decision; it synthesizes its own record instead.
        rec.note_fate(1, "replicate", action, "applied")
        assert len(rec.records) == 2
        assert rec.records[0].fate == "none"
        assert rec.records[1].fate == "applied"

    def test_budget_compaction_drops_oldest_noops_keeps_actions(self):
        rec = ProvenanceRecorder(budget=4)
        for epoch in range(3):
            for partition in range(3):
                draft = rec.open(
                    epoch=epoch, partition=partition, avg_query=1.0,
                    holder_traffic=2.0, unserved=0.0, mean_traffic=1.0,
                    replica_count=2, rmin=2, holder_dc=0,
                )
                actions = (
                    [Replicate(partition, 0, 5, reason=reasons.AVAILABILITY)]
                    if partition == 0
                    else []
                )
                rec.close(draft, actions)
        assert len(rec.records) <= 4
        # Every action-bearing record survived compaction.
        kept_actions = [r for r in rec.records if r.action != "none"]
        assert len(kept_actions) == 3
        assert sum(rec.noop_dropped.values()) == 9 - len(rec.records)
        # Drops are accounted to the epochs whose no-ops were evicted.
        assert min(rec.noop_dropped) == 0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ProvenanceRecorder(budget=0)


# ----------------------------------------------------------------------
# Artifact round trip
# ----------------------------------------------------------------------
class TestArtifact:
    def test_round_trip_is_exact(self, tmp_path):
        recorder, _ = _recorded_run(epochs=8)
        artifact = recorder.artifact()
        path = tmp_path / "run.prov.json"
        artifact.save(path)
        loaded = ProvArtifact.load(path)
        assert loaded.meta == artifact.meta
        assert loaded.budget == artifact.budget
        assert len(loaded.records) == len(artifact.records)
        # Field-exact equality via the NaN-aware differ (NaN context
        # terms make plain dataclass equality always-false).
        assert diff_provenance(artifact, loaded).exit_code == 0
        # And a second save is byte-identical (deterministic encoder).
        path2 = tmp_path / "again.prov.json"
        loaded.save(path2)
        assert path.read_bytes() == path2.read_bytes()

    def test_nan_context_terms_survive_json(self, tmp_path):
        rec = ProvenanceRecorder()
        action = Suicide(1, 9, reason=reasons.COLD_REPLICA)
        rec.note_fate(0, "suicide", action, "applied")
        path = tmp_path / "nan.prov.json"
        rec.artifact().save(path)
        # The file itself must be strict JSON (no bare NaN tokens).
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-prov"
        (record,) = ProvArtifact.load(path).records
        assert math.isnan(record.avg_query)

    def test_load_rejects_wrong_format_and_version(self, tmp_path):
        recorder, _ = _recorded_run(epochs=4)
        payload = recorder.artifact().to_dict()
        bad_format = dict(payload, format="not-prov")
        p1 = tmp_path / "bad1.prov.json"
        p1.write_text(json.dumps(bad_format))
        with pytest.raises(ProvenanceError):
            ProvArtifact.load(p1)
        bad_version = dict(payload, version=99)
        p2 = tmp_path / "bad2.prov.json"
        p2.write_text(json.dumps(bad_version))
        with pytest.raises(ProvenanceError):
            ProvArtifact.load(p2)

    def test_load_rejects_out_of_range_intern_index(self, tmp_path):
        recorder, _ = _recorded_run(epochs=4)
        payload = recorder.artifact().to_dict()
        payload["decisions"]["branch"][0] = 10_000
        path = tmp_path / "bad3.prov.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ProvenanceError):
            ProvArtifact.load(path)

    def test_missing_file_raises_provenance_error(self, tmp_path):
        with pytest.raises(ProvenanceError):
            ProvArtifact.load(tmp_path / "nope.prov.json")

    def test_partition_accessors(self):
        recorder, _ = _recorded_run(epochs=6)
        artifact = recorder.artifact()
        partitions = artifact.partitions()
        assert partitions
        some = partitions[0]
        rows = artifact.for_partition(some)
        assert rows and all(r.partition == some for r in rows)
        one_epoch = artifact.for_partition(some, epoch=rows[0].epoch)
        assert one_epoch and all(r.epoch == rows[0].epoch for r in one_epoch)


# ----------------------------------------------------------------------
# Engine integration & lineage guarantee
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_every_trace_action_has_a_provenance_record(self):
        tracer = RingBufferTracer()
        recorder, _ = _recorded_run(epochs=15, tracer=tracer)
        artifact = recorder.artifact()
        assert artifact.num_actions > 0
        assert crosscheck_trace(artifact, tracer.events()) == []

    @pytest.mark.parametrize("policy", [p for p in POLICIES if p != "rfh"])
    def test_baseline_policies_get_synthesized_lineage(self, policy):
        tracer = RingBufferTracer()
        recorder, _ = _recorded_run(epochs=10, policy=policy, tracer=tracer)
        assert crosscheck_trace(recorder.artifact(), tracer.events()) == []

    def test_recorder_attachment_does_not_change_decisions(self):
        scenario = _scenario(epochs=12)
        bare = run_experiment("rfh", scenario)
        recorded = run_experiment("rfh", scenario, provenance=ProvenanceRecorder())
        for name in ("total_replicas", "migration_count", "unserved"):
            assert list(bare.series(name)) == list(recorded.series(name))

    def test_runner_stamps_identity_meta(self):
        recorder, _ = _recorded_run(epochs=4)
        meta = recorder.artifact().meta
        assert meta["policy"] == "rfh"
        assert meta["scenario"] == "random-query"
        assert meta["epochs"] == 12 or "seed" in meta

    def test_compare_provenance_factory_one_ledger_per_policy(self):
        recorders = {}

        def factory(policy):
            recorders[policy] = ProvenanceRecorder()
            return recorders[policy]

        compare_policies(
            _scenario(epochs=6), ("rfh", "random"), provenance_factory=factory
        )
        assert set(recorders) == {"rfh", "random"}
        assert all(r.records for r in recorders.values())

    def test_decision_reason_columns_in_timeseries(self):
        from repro.obs.timeseries import TimeseriesRecorder

        ts = TimeseriesRecorder()
        run_experiment("rfh", _scenario(epochs=15), timeseries=ts)
        art = ts.artifact()
        decision_cols = [
            c for c in art.column_names() if c.startswith("decision/")
        ]
        assert f"decision/{reasons.AVAILABILITY}" in decision_cols
        total = sum(float(art.column(c).sum()) for c in decision_cols)
        assert total > 0

    def test_decision_columns_are_polarity_neutral_in_diff(self):
        from repro.obs.timeseries import polarity_of, tolerance_of

        assert polarity_of(f"decision/{reasons.TRAFFIC_HUB}") == 0
        tol = tolerance_of(f"decision/{reasons.TRAFFIC_HUB}")
        assert tol.rel == 0.25 and tol.abs == 5.0

    def test_dashboard_grows_decision_panel(self):
        from repro.obs.timeseries import TimeseriesRecorder, render_dashboard

        ts = TimeseriesRecorder()
        run_experiment("rfh", _scenario(epochs=10), timeseries=ts)
        html = render_dashboard(ts.artifact())
        assert "Decisions per epoch by reason" in html


# ----------------------------------------------------------------------
# Shared artifact-path helpers
# ----------------------------------------------------------------------
class TestPaths:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("out.tsdb.json", ("out", ".tsdb.json")),
            ("out.prov.json", ("out", ".prov.json")),
            ("dir/run.prof.json", ("dir/run", ".prof.json")),
            ("plain.json", ("plain", ".json")),
            ("noext", ("noext", "")),
            (".json", (".json", "")),
        ],
    )
    def test_split_suffix(self, path, expected):
        assert split_suffix(path) == expected

    def test_tagged_path_inserts_before_compound_suffix(self):
        assert tagged_path("out.tsdb.json", "rfh") == "out.rfh.tsdb.json"
        assert tagged_path("a/b/out.prov.json", "owner") == "a/b/out.owner.prov.json"
        assert tagged_path("noext", "rfh") == "noext.rfh"

    def test_derived_path_swaps_suffix(self):
        assert derived_path("run.prof.json", ".flame.html") == "run.flame.html"
        assert (
            derived_path("run.prof.json", ".speedscope.json")
            == "run.speedscope.json"
        )


# ----------------------------------------------------------------------
# The shared reason vocabulary
# ----------------------------------------------------------------------
class TestReasons:
    def test_action_reasons_are_closed_and_unique(self):
        assert len(set(reasons.ACTION_REASONS)) == len(reasons.ACTION_REASONS)
        assert reasons.TRAFFIC_HUB in reasons.ACTION_REASONS
        assert reasons.MEMBERSHIP_REBALANCE in reasons.ACTION_REASONS

    def test_rootcause_weights_use_shared_constants(self):
        from repro.obs.analysis.rootcause import CAUSE_WEIGHTS

        assert set(CAUSE_WEIGHTS) <= set(reasons.ATTRIBUTION_CAUSES)

    def test_policies_emit_only_known_reasons(self):
        tracer = RingBufferTracer()
        for policy in POLICIES:
            run_experiment(policy, _scenario(epochs=8), tracer=tracer)
        seen = {
            e.reason
            for e in tracer.events()
            if e.kind in ("replicate", "migrate", "suicide")
        }
        assert seen <= set(reasons.ACTION_REASONS) | {""}
