"""Core mathematical pieces: smoothing, thresholds, availability, Erlang-B."""

import math

import numpy as np
import pytest

from repro.core import Ewma, erlang_b
from repro.core.availability import (
    availability_all_alive,
    availability_at_least_one,
    inclusion_exclusion_sum,
    min_replicas_for_availability,
)
from repro.core.blocking import offered_load, server_blocking_probabilities
from repro.core.thresholds import (
    blocked_tolerance,
    is_blocked,
    is_holder_overloaded,
    is_suicide_candidate,
    is_traffic_hub,
    migration_benefit_met,
)
from repro.errors import ConfigurationError


class TestEwma:
    def test_first_update_initialises(self):
        s = Ewma(0.2)
        assert s.update(10.0) == 10.0

    def test_alpha_weights_new_sample(self):
        s = Ewma(0.2)
        s.update(10.0)
        assert s.update(0.0) == pytest.approx(8.0)

    def test_array_stream(self):
        s = Ewma(0.5)
        s.update(np.array([2.0, 4.0]))
        out = s.update(np.array([0.0, 0.0]))
        assert list(out) == [1.0, 2.0]

    def test_converges_to_constant_input(self):
        s = Ewma(0.2)
        for _ in range(100):
            value = s.update(5.0)
        assert value == pytest.approx(5.0)

    def test_shape_change_rejected(self):
        s = Ewma(0.5)
        s.update(np.zeros(3))
        with pytest.raises(ValueError):
            s.update(np.zeros(4))

    def test_type_change_rejected(self):
        s = Ewma(0.5)
        s.update(1.0)
        with pytest.raises(ValueError):
            s.update(np.zeros(2))

    def test_value_before_update_raises(self):
        with pytest.raises(ValueError):
            Ewma(0.5).value

    def test_reset(self):
        s = Ewma(0.5)
        s.update(3.0)
        s.reset()
        assert not s.initialized

    def test_invalid_alpha(self):
        for alpha in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigurationError):
                Ewma(alpha)

    def test_returned_array_is_a_copy(self):
        s = Ewma(0.5)
        out = s.update(np.array([1.0]))
        out[0] = 99.0
        assert float(np.asarray(s.value)[0]) == 1.0


class TestThresholds:
    def test_eq12_holder_overload_inclusive(self):
        assert is_holder_overloaded(2.0, 1.0, beta=2.0)  # equality counts
        assert not is_holder_overloaded(1.99, 1.0, beta=2.0)

    def test_eq13_traffic_hub_inclusive(self):
        assert is_traffic_hub(1.5, 1.0, gamma=1.5)
        assert not is_traffic_hub(1.49, 1.0, gamma=1.5)

    def test_eq15_suicide_inclusive(self):
        assert is_suicide_candidate(0.2, 1.0, delta=0.2)
        assert not is_suicide_candidate(0.21, 1.0, delta=0.2)

    def test_eq16_migration_benefit(self):
        # tr_j - tr_k >= mu * mean
        assert migration_benefit_met(5.0, 1.0, 4.0, mu=1.0)
        assert not migration_benefit_met(5.0, 2.0, 4.0, mu=1.0)

    def test_blocked_tolerance_scales_with_demand(self):
        assert blocked_tolerance(0.1) == 0.5  # floor
        assert blocked_tolerance(10.0) == 5.0  # 0.5 * avg query

    def test_is_blocked(self):
        assert is_blocked(0.6, 0.1)
        assert not is_blocked(0.4, 0.1)
        assert not is_blocked(4.0, 10.0)


class TestAvailability:
    def test_inclusion_exclusion_identity(self):
        """The literal Eq. 14 sum equals 1 - (1-f)^r for all small r."""
        for r in range(0, 8):
            for f in (0.05, 0.1, 0.5):
                assert inclusion_exclusion_sum(r, f) == pytest.approx(
                    1.0 - (1.0 - f) ** r
                )

    def test_all_alive_is_complement(self):
        assert availability_all_alive(3, 0.1) == pytest.approx(0.9**3)

    def test_at_least_one(self):
        assert availability_at_least_one(0, 0.1) == 0.0
        assert availability_at_least_one(1, 0.1) == pytest.approx(0.9)
        assert availability_at_least_one(3, 0.1) == pytest.approx(1 - 1e-3)

    def test_monotone_in_replicas(self):
        values = [availability_at_least_one(r, 0.2) for r in range(1, 10)]
        assert values == sorted(values)

    def test_paper_worked_example(self):
        """'if the system requires a minimum availability of 0.8 and the
        failure probability is 0.1, then the minimum replica number is 2'."""
        assert min_replicas_for_availability(0.8, 0.1) == 2

    def test_stricter_floors_need_more_replicas(self):
        assert min_replicas_for_availability(0.999, 0.1) == 3
        assert min_replicas_for_availability(0.9999, 0.1) == 4
        assert min_replicas_for_availability(0.99, 0.5) == 7

    def test_floor_is_two(self):
        # Even a trivially low requirement keeps two copies.
        assert min_replicas_for_availability(0.1, 0.1) == 2

    def test_result_always_satisfies_requirement(self):
        for a in (0.5, 0.8, 0.99, 0.9999):
            for f in (0.01, 0.1, 0.3, 0.7):
                r = min_replicas_for_availability(a, f)
                assert availability_at_least_one(r, f) >= a

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            min_replicas_for_availability(1.0, 0.1)
        with pytest.raises(ConfigurationError):
            min_replicas_for_availability(0.8, 0.0)
        with pytest.raises(ConfigurationError):
            availability_at_least_one(-1, 0.1)


class TestErlangB:
    def test_zero_load_never_blocks(self):
        assert erlang_b(0.0, 4) == 0.0

    def test_closed_form_small_cases(self):
        # B(a, 1) = a / (1 + a)
        for a in (0.1, 1.0, 5.0):
            assert erlang_b(a, 1) == pytest.approx(a / (1 + a))
        # B(a, 2) = a^2/2 / (1 + a + a^2/2)
        a = 2.0
        assert erlang_b(a, 2) == pytest.approx((a**2 / 2) / (1 + a + a**2 / 2))

    def test_matches_factorial_formula(self):
        """The recurrence equals Eq. 18's factorial form."""
        a, c = 3.7, 6
        denom = sum(a**k / math.factorial(k) for k in range(c + 1))
        expected = (a**c / math.factorial(c)) / denom
        assert erlang_b(a, c) == pytest.approx(expected)

    def test_monotone_in_load(self):
        values = [erlang_b(a, 4) for a in np.linspace(0.1, 20, 30)]
        assert values == sorted(values)

    def test_monotone_in_servers(self):
        values = [erlang_b(5.0, c) for c in range(1, 12)]
        assert values == sorted(values, reverse=True)

    def test_stable_for_huge_load(self):
        bp = erlang_b(1e6, 8)
        assert 0.99 < bp <= 1.0

    def test_probability_bounds(self):
        for a in (0.0, 0.5, 3.0, 50.0):
            for c in (1, 4, 16):
                assert 0.0 <= erlang_b(a, c) <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            erlang_b(-1.0, 4)
        with pytest.raises(ConfigurationError):
            erlang_b(1.0, 0)

    def test_offered_load(self):
        assert offered_load(6.0, 2.0, 8) == 3.0
        with pytest.raises(ConfigurationError):
            offered_load(1.0, 0.0, 8)
        with pytest.raises(ConfigurationError):
            offered_load(-1.0, 1.0, 8)


class TestServerBlocking:
    def test_dead_servers_block_everything(self, cluster):
        cluster.fail_server(0)
        load = np.zeros(cluster.num_servers)
        bp = server_blocking_probabilities(cluster, load)
        assert bp[0] == 1.0
        assert np.all(bp[1:] == 0.0)

    def test_busier_server_blocks_more(self, cluster):
        load = np.zeros(cluster.num_servers)
        load[1] = 50.0
        bp = server_blocking_probabilities(cluster, load)
        assert bp[1] > bp[2]

    def test_shape_checked(self, cluster):
        with pytest.raises(ConfigurationError):
            server_blocking_probabilities(cluster, np.zeros(3))
