"""Metrics: utilization (Eqs. 20–23), cost (Eq. 1), imbalance, series."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.metrics import (
    MetricsCollector,
    Series,
    average_utilization,
    availability_summary,
    mean_path_length,
    migration_cost,
    replica_group_utilization,
    replica_load_cv,
    replica_load_imbalance,
    replication_cost,
    server_load_imbalance,
)


class TestUtilization:
    def test_replica_group_sequential_fill(self):
        # 3 replicas of capacity 2: 5 served -> summed utilization 2.5.
        assert replica_group_utilization(5.0, 3, 2.0) == pytest.approx(2.5)

    def test_replica_group_saturates_at_count(self):
        assert replica_group_utilization(100.0, 3, 2.0) == 3.0

    def test_replica_group_validation(self):
        with pytest.raises(SimulationError):
            replica_group_utilization(1.0, 0, 2.0)
        with pytest.raises(SimulationError):
            replica_group_utilization(1.0, 1, 0.0)
        with pytest.raises(SimulationError):
            replica_group_utilization(-1.0, 1, 1.0)

    def test_average_is_mean_over_replicas(self):
        served = np.array([[2.0, 0.0], [0.0, 1.0]])
        counts = np.array([[1, 0], [0, 1]])
        caps = np.array([2.0, 2.0])
        # Replica 1 full (1.0), replica 2 half (0.5) -> mean 0.75.
        assert average_utilization(served, counts, caps) == pytest.approx(0.75)

    def test_empty_system_is_zero(self):
        assert average_utilization(np.zeros((2, 2)), np.zeros((2, 2), int), np.ones(2)) == 0.0

    def test_bounded_by_one(self):
        served = np.array([[100.0]])
        counts = np.array([[2]])
        caps = np.array([1.0])
        assert average_utilization(served, counts, caps) <= 1.0

    def test_shape_validation(self):
        with pytest.raises(SimulationError):
            average_utilization(np.zeros((2, 2)), np.zeros((2, 3), int), np.ones(2))
        with pytest.raises(SimulationError):
            average_utilization(np.zeros((2, 2)), np.zeros((2, 2), int), np.ones(3))


class TestCost:
    def test_eq1_formula(self):
        # c = d * f * s / b
        assert replication_cost(6000.0, 0.1, 0.5, 300.0) == pytest.approx(1.0)

    def test_migration_uses_migration_bandwidth(self):
        r = replication_cost(6000.0, 0.1, 0.5, 300.0)
        m = migration_cost(6000.0, 0.1, 0.5, 100.0)
        assert m == pytest.approx(3.0 * r)

    def test_cost_monotone_in_distance(self):
        a = replication_cost(1000.0, 0.1, 0.5, 300.0)
        b = replication_cost(2000.0, 0.1, 0.5, 300.0)
        assert b == pytest.approx(2 * a)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            replication_cost(-1.0, 0.1, 0.5, 300.0)
        with pytest.raises(ConfigurationError):
            replication_cost(1.0, 0.0, 0.5, 300.0)
        with pytest.raises(ConfigurationError):
            replication_cost(1.0, 0.1, 0.0, 300.0)
        with pytest.raises(ConfigurationError):
            replication_cost(1.0, 0.1, 0.5, 0.0)


class TestImbalance:
    def test_uniform_load_is_zero(self):
        served = np.array([[2.0, 2.0]])
        counts = np.array([[1, 1]])
        assert replica_load_imbalance(served, counts) == 0.0
        assert replica_load_cv(served, counts) == 0.0

    def test_skew_raises_imbalance(self):
        even = replica_load_cv(np.array([[2.0, 2.0]]), np.array([[1, 1]]))
        skew = replica_load_cv(np.array([[4.0, 0.0]]), np.array([[1, 1]]))
        assert skew > even

    def test_multiplicity_spreads_load(self):
        # Two copies on one server serving 4 -> per-copy load 2 each.
        served = np.array([[4.0, 2.0]])
        counts = np.array([[2, 1]])
        assert replica_load_imbalance(served, counts) == 0.0

    def test_cv_is_scale_free(self):
        served = np.array([[4.0, 0.0]])
        counts = np.array([[1, 1]])
        cv1 = replica_load_cv(served, counts)
        cv2 = replica_load_cv(10 * served, counts)
        assert cv1 == pytest.approx(cv2)

    def test_empty_system(self):
        assert replica_load_imbalance(np.zeros((1, 2)), np.zeros((1, 2), int)) == 0.0

    def test_server_variant(self):
        load = np.array([1.0, 3.0, 100.0])
        alive = np.array([True, True, False])
        assert server_load_imbalance(load, alive) == pytest.approx(1.0)

    def test_server_variant_needs_alive_servers(self):
        with pytest.raises(SimulationError):
            server_load_imbalance(np.array([1.0]), np.array([False]))


class TestPathLength:
    def test_mean(self):
        assert mean_path_length(10.0, 4.0) == 2.5

    def test_idle_epoch(self):
        assert mean_path_length(0.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            mean_path_length(-1.0, 1.0)


class TestAvailabilitySummary:
    def test_summary_fields(self, cluster, mapper):
        from repro.cluster import ReplicaMap

        rm = ReplicaMap(cluster, 4, 0.5)
        rm.bootstrap([0, 1, 2, 3])
        rm.add(0, 10)
        summary = availability_summary(rm, failure_rate=0.1, rmin=2)
        assert summary.fraction_meeting_floor == 0.25
        assert summary.lost_partitions == 0
        assert 0.9 <= summary.mean_availability <= 1.0
        assert summary.min_availability == pytest.approx(0.9)


class TestSeries:
    def test_append_and_read(self):
        s = Series("x")
        s.append(1.0)
        s.append(2.0)
        assert len(s) == 2
        assert s.last() == 2.0
        assert s.values == [1.0, 2.0]
        assert list(s.cumulative()) == [1.0, 3.0]

    def test_means(self):
        s = Series("x")
        for v in (1.0, 2.0, 3.0, 4.0):
            s.append(v)
        assert s.mean() == 2.5
        assert s.tail_mean(2) == 3.5
        assert s.mean(1, 3) == 2.5

    def test_non_finite_rejected(self):
        s = Series("x")
        with pytest.raises(SimulationError):
            s.append(float("nan"))
        with pytest.raises(SimulationError):
            s.append(float("inf"))

    def test_empty_guards(self):
        s = Series("x")
        with pytest.raises(SimulationError):
            s.last()
        with pytest.raises(SimulationError):
            s.mean()

    def test_empty_window_mean_raises_even_on_nonempty_series(self):
        s = Series("x")
        for v in (1.0, 2.0, 3.0):
            s.append(v)
        with pytest.raises(SimulationError):
            s.mean(2, 2)  # start == stop -> empty window
        with pytest.raises(SimulationError):
            s.mean(3)  # start past the end

    def test_tail_mean_at_and_below_boundary(self):
        s = Series("x")
        for v in (1.0, 2.0, 3.0, 4.0):
            s.append(v)
        # Exactly the series length, and asking for more than exists
        # (clamps to the whole series) — both are the full mean.
        assert s.tail_mean(4) == 2.5
        assert s.tail_mean(100) == 2.5
        assert s.tail_mean(1) == 4.0
        with pytest.raises(SimulationError):
            s.tail_mean(0)
        with pytest.raises(SimulationError):
            s.tail_mean(-3)

    def test_cumulative_of_empty_series_is_empty_array(self):
        s = Series("x")
        out = s.cumulative()
        assert isinstance(out, np.ndarray)
        assert out.shape == (0,)

    def test_append_rejects_every_non_finite(self):
        s = Series("x")
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(SimulationError):
                s.append(bad)
        assert len(s) == 0  # nothing slipped through


class TestCollector:
    def test_consistent_keys_enforced(self):
        c = MetricsCollector()
        c.record_epoch({"a": 1.0, "b": 2.0})
        with pytest.raises(SimulationError):
            c.record_epoch({"a": 1.0})

    def test_series_lookup(self):
        c = MetricsCollector()
        c.record_epoch({"a": 1.0})
        c.record_epoch({"a": 3.0})
        assert c.num_epochs == 2
        assert list(c.array("a")) == [1.0, 3.0]
        assert "a" in c
        with pytest.raises(SimulationError):
            c.series("zzz")

    def test_as_dict(self):
        c = MetricsCollector()
        c.record_epoch({"a": 1.0, "b": 2.0})
        assert c.as_dict() == {"a": [1.0], "b": [2.0]}
