"""Trace analytics: lineage, root causes, anomalies, exporters, CLI."""

from __future__ import annotations

import json
import re

from repro.cli import main
from repro.config import SimulationConfig, WorkloadParameters
from repro.obs import (
    InstrumentRegistry,
    JsonlTracer,
    PhaseProfiler,
    RingBufferTracer,
    TraceEvent,
)
from repro.obs.analysis import (
    AnalysisOptions,
    analyze_events,
    analyze_trace,
    attribute_violations,
    build_lineage,
    detect_churn_hotspots,
    detect_pingpong,
    detect_replication_storms,
    registry_from_events,
    render_markdown,
    render_text,
    to_chrome_trace,
    to_prometheus,
    top_causes,
)
from repro.sim.engine import Simulation
from repro.sim.events import MassFailureEvent


def _small_config(seed: int = 11) -> SimulationConfig:
    return SimulationConfig(
        seed=seed,
        workload=WorkloadParameters(
            queries_per_epoch_mean=150.0, num_partitions=16, zipf_exponent=0.9
        ),
    )


def _event(epoch, kind, server=None, partition=None, reason="", **extra):
    return TraceEvent(
        epoch=epoch,
        kind=kind,
        server=server,
        partition=partition,
        reason=reason,
        policy="rfh",
        extra=extra,
    )


# ----------------------------------------------------------------------
# Lineage
# ----------------------------------------------------------------------
class TestLineage:
    def test_full_chain_create_migrate_fail(self):
        events = [
            _event(0, "replica_bootstrap", server=3, partition=0, dc=0),
            _event(5, "replicate", server=7, partition=0, source=3, dc=1, source_dc=0),
            _event(9, "migrate", server=9, partition=0, source=7, dc=2, source_dc=1),
            _event(20, "server_failure", server=9, partitions=[0], dc=2),
        ]
        lineage = build_lineage(events)
        assert len(lineage.lifecycles) == 2
        bootstrap, replica = lineage.lifecycles
        assert bootstrap.alive and bootstrap.servers == [3]
        assert replica.servers == [7, 9]
        assert replica.migrations == 1 and replica.dc_hops == 1
        assert replica.born_kind == "replicate" and replica.end_kind == "failure"
        assert replica.lifetime == 15  # born 5, died 20
        # Two closed stays: the 7-stay (5..9) and the 9-stay (9..20).
        assert sorted(lineage.stay_lifetimes()) == [4, 11]

    def test_suicide_closes_lifecycle(self):
        events = [
            _event(0, "replica_bootstrap", server=1, partition=2, dc=0),
            _event(8, "suicide", server=1, partition=2, dc=0),
        ]
        lineage = build_lineage(events)
        (life,) = lineage.lifecycles
        assert life.end_kind == "suicide" and life.lifetime == 8

    def test_pre_trace_birth_excluded_from_lifetimes(self):
        # A migrate whose source was never seen: the birth predates the
        # trace, so its duration must not pollute the statistics.
        events = [
            _event(4, "migrate", server=5, partition=1, source=2, dc=1, source_dc=0),
            _event(9, "suicide", server=5, partition=1, dc=1),
        ]
        lineage = build_lineage(events)
        (life,) = lineage.lifecycles
        assert life.born_kind == "pre-trace"
        assert life.lifetime is None
        # Only the post-migration stay (4..9) has a known birth.
        assert lineage.stay_lifetimes() == [5]

    def test_failure_without_partition_list_warns(self):
        events = [
            _event(0, "replica_bootstrap", server=1, partition=0, dc=0),
            _event(3, "server_failure", server=1, replicas_lost=1),
        ]
        lineage = build_lineage(events)
        assert lineage.warnings
        assert "partitions" in lineage.warnings[0]
        assert lineage.lifecycles[0].alive  # could not be closed

    def test_restore_starts_new_lifecycle(self):
        events = [_event(7, "partition_restore", server=4, partition=3, dc=1)]
        lineage = build_lineage(events)
        (life,) = lineage.lifecycles
        assert life.born_kind == "partition_restore" and life.alive

    def test_summary_counts(self):
        events = [
            _event(0, "replica_bootstrap", server=1, partition=0, dc=0),
            _event(2, "replicate", server=2, partition=0, source=1, dc=0, source_dc=0),
            _event(6, "suicide", server=2, partition=0, dc=0),
        ]
        summary = build_lineage(events).summary()
        assert summary["lifecycles"] == 2
        assert summary["alive"] == 1 and summary["closed"] == 1
        assert summary["births_by_kind"] == {"bootstrap": 1, "replicate": 1}
        assert summary["deaths_by_kind"] == {"suicide": 1}
        assert summary["lifetime_epochs"]["count"] == 1
        assert summary["lifetime_epochs"]["mean"] == 4.0


class TestLineageRoundTrip:
    def test_trace_reconstruction_matches_engine_histogram(self, tmp_path):
        """simulate → JSONL → analyze: the reconstructed closed-stay
        durations equal the engine-side replica_lifetime_epochs
        histogram exactly (multiset equality, not just counts)."""
        path = tmp_path / "trace.jsonl"
        registry = InstrumentRegistry()
        with JsonlTracer(path) as tracer:
            sim = Simulation(
                _small_config(),
                tracer=tracer,
                instruments=registry,
                events=[MassFailureEvent(epoch=30, count=40)],
            )
            sim.run(80)
        engine_samples = registry.histogram(
            "replica_lifetime_epochs", policy=sim.policy_name
        ).samples
        assert engine_samples, "run produced no replica deaths"
        analysis = analyze_trace(path)
        lineage = analysis.policies[sim.policy_name].lineage
        assert sorted(float(v) for v in lineage.stay_lifetimes()) == sorted(
            engine_samples
        )


# ----------------------------------------------------------------------
# Root-cause chains
# ----------------------------------------------------------------------
class TestRootCause:
    def test_failure_attributed_with_lag(self):
        events = [
            _event(10, "server_failure", server=1, replicas_lost=5, partitions=[1, 2]),
            _event(12, "sla_violation", reason="latency-bound-exceeded", count=40.0),
        ]
        (attribution,) = attribute_violations(events, window=20)
        assert attribution.cause == "server-failure"
        assert attribution.lag == 2
        assert attribution.confidence > 0.5
        assert attribution.misses == 40.0

    def test_out_of_window_cause_is_unattributed(self):
        events = [
            _event(0, "server_failure", server=1, replicas_lost=5, partitions=[1]),
            _event(50, "sla_violation", count=3.0),
        ]
        (attribution,) = attribute_violations(events, window=10)
        assert attribution.cause == "unattributed"
        assert attribution.confidence == 0.0

    def test_restore_beats_nothing_and_failure_beats_restore(self):
        base = [
            _event(9, "partition_restore", server=2, partition=7),
            _event(10, "sla_violation", count=5.0),
        ]
        (only_restore,) = attribute_violations(base, window=10)
        assert only_restore.cause == "lost-partition-restore"
        with_failure = [
            _event(9, "server_failure", server=1, replicas_lost=3, partitions=[7]),
            *base,
        ]
        (both,) = attribute_violations(with_failure, window=10)
        assert both.cause == "server-failure"

    def test_steady_replication_is_not_a_storm(self):
        # One replicate every epoch is the baseline, not a burst.
        events = [
            _event(e, "replicate", server=1, partition=0, source=0) for e in range(40)
        ]
        events.append(_event(39, "sla_violation", count=2.0))
        (attribution,) = attribute_violations(events, window=10)
        assert attribution.cause == "unattributed"

    def test_overload_unmitigated_detected(self):
        events = [
            _event(5, "action_skipped", server=1, partition=0, action="replicate",
                   cause="bandwidth"),
            _event(6, "sla_violation", count=8.0),
        ]
        (attribution,) = attribute_violations(events, window=10)
        assert attribution.cause == "overload-unmitigated"

    def test_top_causes_ranked_by_misses(self):
        events = [
            _event(10, "server_failure", server=1, replicas_lost=5, partitions=[1]),
            _event(11, "sla_violation", count=100.0),
            _event(60, "action_skipped", server=2, partition=3, action="migrate",
                   cause="storage-gate"),
            _event(61, "sla_violation", count=5.0),
        ]
        rows = top_causes(attribute_violations(events, window=10))
        assert [r.cause for r in rows] == ["server-failure", "overload-unmitigated"]
        assert rows[0].misses == 100.0 and rows[0].violations == 1


# ----------------------------------------------------------------------
# Anomalies
# ----------------------------------------------------------------------
class TestAnomalies:
    def test_pingpong_detected_within_k(self):
        events = [
            _event(10, "migrate", server=5, partition=3, source=2, dc=1, source_dc=0),
            _event(14, "migrate", server=2, partition=3, source=5, dc=0, source_dc=1),
        ]
        (anomaly,) = detect_pingpong(events, k=10)
        assert anomaly.kind == "ping-pong"
        assert anomaly.detail["partition"] == 3
        assert anomaly.detail["worst_pair"] == [2, 5]

    def test_slow_reversal_is_not_pingpong(self):
        events = [
            _event(10, "migrate", server=5, partition=3, source=2),
            _event(40, "migrate", server=2, partition=3, source=5),
        ]
        assert detect_pingpong(events, k=10) == []

    def test_storm_detected_after_quiet_baseline(self):
        events = [
            _event(e, "replicate", server=1, partition=0, source=0) for e in range(30)
        ]
        events += [
            _event(30, "replicate", server=s, partition=s, source=0)
            for s in range(20)  # 20 actions in one epoch out of a 1/epoch baseline
        ]
        storms = detect_replication_storms(events, window=20, z_threshold=3.0)
        assert len(storms) == 1
        assert storms[0].detail["peak_actions"] == 20
        assert storms[0].detail["peak_epoch"] == 30

    def test_uniform_rate_is_not_a_storm(self):
        events = [
            _event(e, "replicate", server=1, partition=0, source=0) for e in range(60)
        ]
        assert detect_replication_storms(events, window=20) == []

    def test_churn_hotspot_flags_concentrated_dc(self):
        events = []
        for e in range(10):  # dc 0 takes ten failures
            events.append(
                _event(e, "server_failure", server=e, replicas_lost=1,
                       partitions=[0], dc=0)
            )
        for dc in (1, 2, 3, 4):  # the rest see one action each
            events.append(
                _event(5, "replicate", server=50 + dc, partition=dc, source=0, dc=dc)
            )
        hotspots = detect_churn_hotspots(events, factor=1.5)
        assert len(hotspots) == 1
        assert hotspots[0].detail["dc"] == 0

    def test_balanced_churn_has_no_hotspot(self):
        events = [
            _event(5, "replicate", server=dc, partition=dc, source=0, dc=dc)
            for dc in range(5)
        ]
        assert detect_churn_hotspots(events) == []


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
_PROM_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$")
_PROM_LABEL = r"[a-zA-Z_][a-zA-Z0-9_]*=\"(\\.|[^\"\\])*\""
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    rf"(\{{{_PROM_LABEL}(,{_PROM_LABEL})*\}})?"
    r" (-?[0-9.]+([eE][+-]?[0-9]+)?|NaN|[+-]Inf)$"
)


def assert_valid_prometheus(text: str) -> None:
    """Line-level syntax check of the text exposition format 0.0.4."""
    assert text.endswith("\n")
    typed: set[str] = set()
    for line in text.splitlines():
        if line.startswith("#"):
            assert _PROM_COMMENT.match(line), f"bad comment line: {line!r}"
            if line.startswith("# TYPE"):
                typed.add(line.split()[2])
        else:
            assert _PROM_SAMPLE.match(line), f"bad sample line: {line!r}"
            family = line.split("{")[0].split(" ")[0]
            base = re.sub(r"_(sum|count)$", "", family)
            assert family in typed or base in typed, f"untyped sample: {line!r}"


class TestExporters:
    def test_prometheus_from_registry_is_valid(self):
        registry = InstrumentRegistry()
        registry.counter("actions_total", kind="migrate", policy="rfh").inc(3)
        registry.gauge("alive_servers", policy="rfh").set(97)
        for value in (1.0, 5.0, 9.0):
            registry.histogram("replica_lifetime_epochs", policy="rfh").observe(value)
        text = to_prometheus(registry)
        assert_valid_prometheus(text)
        assert '# TYPE actions_total counter' in text
        assert '# TYPE alive_servers gauge' in text
        assert '# TYPE replica_lifetime_epochs summary' in text
        assert 'replica_lifetime_epochs{policy="rfh",quantile="0.5"} 5' in text
        assert 'replica_lifetime_epochs_count{policy="rfh"} 3' in text

    def test_prometheus_escapes_label_values(self):
        registry = InstrumentRegistry()
        registry.counter("actions_total", reason='say "hi"\\now').inc()
        text = to_prometheus(registry)
        assert_valid_prometheus(text)
        assert '\\"hi\\"' in text

    def test_registry_from_events_counts_everything(self):
        events = [
            _event(0, "replica_bootstrap", server=1, partition=0, dc=0),
            _event(1, "replicate", server=2, partition=0, source=1,
                   reason="availability"),
            _event(2, "action_skipped", server=3, partition=1, action="migrate",
                   cause="bandwidth"),
            _event(3, "server_failure", server=2, replicas_lost=1, partitions=[0]),
            _event(4, "partition_restore", server=4, partition=0),
            _event(5, "sla_violation", count=7.0),
        ]
        registry = registry_from_events(events)
        snap = {
            (row["name"], tuple(sorted(row["labels"].items()))): row["value"]
            for row in registry.snapshot()["counters"]
        }
        assert snap[("actions_total", (("kind", "replicate"), ("policy", "rfh"),
                                       ("reason", "availability")))] == 1
        assert snap[("actions_skipped_total", (("cause", "bandwidth"),
                                               ("kind", "migrate")))] == 1
        assert snap[("membership_events_total", (("kind", "server_failure"),))] == 1
        assert snap[("partitions_restored_total", ())] == 1
        assert snap[("sla_miss_total", (("policy", "rfh"),))] == 7.0
        # The replicate stay (1..3, killed by the failure) is re-stitched.
        hist = registry.histogram("replica_lifetime_epochs", policy="rfh")
        assert 2.0 in hist.samples

    def test_chrome_trace_shape_and_metadata(self):
        events = [
            _event(0, "replica_bootstrap", server=1, partition=0, dc=0),
            _event(3, "migrate", server=2, partition=0, source=1, reason="hub"),
        ]
        profiler = PhaseProfiler()
        sim = Simulation(_small_config(), profiler=profiler)
        sim.run(2)
        payload = to_chrome_trace(events, profiler)
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        trace_events = payload["traceEvents"]
        assert all({"name", "ph", "pid", "tid"} <= set(e) for e in trace_events)
        phases = [e for e in trace_events if e["ph"] == "X"]
        assert len(phases) == 2 * 6  # two epochs, six phases each
        assert all(e["dur"] >= 0 for e in phases)
        instants = [e for e in trace_events if e["ph"] == "i"]
        assert len(instants) == 2
        assert all("ts" in e and "s" in e for e in instants)
        names = {e["args"]["name"] for e in trace_events if e["ph"] == "M"}
        assert {"rfh", "replica_bootstrap", "migrate"} <= names
        json.dumps(payload)  # must be JSON-serialisable as-is


# ----------------------------------------------------------------------
# Pipeline + CLI
# ----------------------------------------------------------------------
class TestPipeline:
    def _traced_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as tracer:
            Simulation(
                _small_config(),
                tracer=tracer,
                events=[MassFailureEvent(epoch=20, count=30)],
            ).run(50)
        return path

    def test_analyze_trace_end_to_end(self, tmp_path):
        path = self._traced_run(tmp_path)
        analysis = analyze_trace(path, options=AnalysisOptions(window=15))
        assert analysis.total_events > 0 and analysis.skipped_lines == 0
        pa = analysis.policies["rfh"]
        assert pa.lineage.lifecycles
        text = render_text(analysis)
        assert "replica lineage" in text and "root causes" in text
        markdown = render_markdown(analysis)
        assert "| top cause |" in markdown or "(no SLA violations traced)" in markdown

    def test_truncated_trace_completes_with_warning(self, tmp_path):
        path = self._traced_run(tmp_path)
        data = path.read_bytes()
        truncated = tmp_path / "trunc.jsonl"
        truncated.write_bytes(data[: int(len(data) * 0.6) + 7])  # mid-line cut
        analysis = analyze_trace(truncated)
        assert analysis.skipped_lines >= 1
        assert analysis.policies  # the readable prefix still analysed
        assert "malformed" in render_text(analysis)

    def test_multi_policy_streams_are_split(self):
        events = [
            TraceEvent(epoch=0, kind="replica_bootstrap", server=1, partition=0,
                       policy="rfh"),
            TraceEvent(epoch=0, kind="replica_bootstrap", server=1, partition=0,
                       policy="random"),
        ]
        analysis = analyze_events(events)
        assert set(analysis.policies) == {"rfh", "random"}
        assert all(pa.events == 1 for pa in analysis.policies.values())

    def test_analysis_to_dict_is_json_ready(self, tmp_path):
        analysis = analyze_trace(self._traced_run(tmp_path))
        json.dumps(analysis.to_dict())


FAST = ["--epochs", "25", "--partitions", "8", "--rate", "60", "--seed", "3"]


class TestAnalyzeCli:
    def _trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert main(["run", "--policy", "rfh", *FAST, "--trace-out", str(path)]) == 0
        return path

    def test_text_report(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "replica lineage" in out
        assert "root causes" in out
        assert "anomalies" in out

    def test_json_format(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["analyze", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "policies" in payload and "rfh" in payload["policies"]

    def test_chrome_trace_format_loads(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        out_path = tmp_path / "trace.json"
        assert main(
            ["analyze", str(path), "--format", "chrome-trace", "--out", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert isinstance(payload["traceEvents"], list) and payload["traceEvents"]

    def test_prometheus_format_is_valid(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["analyze", str(path), "--format", "prometheus"]) == 0
        assert_valid_prometheus(capsys.readouterr().out)

    def test_truncated_file_does_not_crash(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        truncated = tmp_path / "trunc.jsonl"
        truncated.write_bytes(path.read_bytes()[:-40])
        assert main(["analyze", str(truncated)]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 2

    def test_run_with_inline_analyze(self, capsys):
        assert main(["run", "--policy", "rfh", *FAST, "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "replica lineage" in out

    def test_compare_with_inline_analyze_covers_all_policies(self, capsys):
        assert main(["compare", *FAST, "--analyze"]) == 0
        out = capsys.readouterr().out
        for policy in ("rfh", "random", "owner", "request"):
            assert f"[{policy}]" in out
