"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.availability import (
    availability_at_least_one,
    inclusion_exclusion_sum,
    min_replicas_for_availability,
)
from repro.core.blocking import erlang_b
from repro.core.smoothing import Ewma
from repro.core.traffic import serve_epoch
from repro.metrics.imbalance import replica_load_cv, replica_load_imbalance
from repro.metrics.utilization import average_utilization
from repro.net import Router, WanGraph
from repro.ring import HASH_SPACE_SIZE, HashRing, ring_distance, stable_hash
from repro.workload import QueryBatch, zipf_weights

# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------
server_sets = st.sets(st.integers(min_value=0, max_value=500), min_size=1, max_size=40)


class TestRingProperties:
    @given(sids=server_sets, key=st.integers(min_value=0, max_value=HASH_SPACE_SIZE - 1))
    @settings(max_examples=50, deadline=None)
    def test_owner_is_always_a_member(self, sids, key):
        ring = HashRing(tokens_per_server=4)
        for sid in sids:
            ring.add_server(sid)
        assert ring.owner(key) in sids

    @given(sids=server_sets, key=st.integers(min_value=0, max_value=HASH_SPACE_SIZE - 1))
    @settings(max_examples=30, deadline=None)
    def test_removal_never_moves_unrelated_keys(self, sids, key):
        ring = HashRing(tokens_per_server=4)
        for sid in sids:
            ring.add_server(sid)
        owner = ring.owner(key)
        victim = min(sids)
        if victim == owner or len(sids) == 1:
            return
        ring.remove_server(victim)
        assert ring.owner(key) == owner

    @given(
        a=st.integers(min_value=0, max_value=HASH_SPACE_SIZE - 1),
        b=st.integers(min_value=0, max_value=HASH_SPACE_SIZE - 1),
    )
    def test_ring_distance_complement(self, a, b):
        if a == b:
            assert ring_distance(a, b) == 0
        else:
            assert ring_distance(a, b) + ring_distance(b, a) == HASH_SPACE_SIZE

    @given(key=st.text(max_size=40))
    def test_stable_hash_range(self, key):
        assert 0 <= stable_hash(key) < HASH_SPACE_SIZE


# ----------------------------------------------------------------------
# Availability (Eq. 14)
# ----------------------------------------------------------------------
class TestAvailabilityProperties:
    @given(
        r=st.integers(min_value=0, max_value=30),
        f=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_inclusion_exclusion_equals_complement(self, r, f):
        # The alternating sum cancels catastrophically for large r, so
        # the tolerance scales with the largest binomial term.
        scale = max(1.0, math.comb(r, r // 2) * f ** (r // 2))
        assert inclusion_exclusion_sum(r, f) == pytest.approx(
            1.0 - (1.0 - f) ** r, abs=1e-12 * scale + 1e-9
        )

    @given(
        a=st.floats(min_value=0.01, max_value=0.999999),
        f=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_rmin_is_minimal_and_sufficient(self, a, f):
        r = min_replicas_for_availability(a, f)
        assert availability_at_least_one(r, f) >= a
        if r > 2:  # below the fault-tolerance floor minimality is waived
            assert availability_at_least_one(r - 1, f) < a

    @given(
        r=st.integers(min_value=1, max_value=20),
        f=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_availability_in_unit_interval(self, r, f):
        # f^r underflows to exactly 0.0 for large r, so 1.0 is reachable.
        assert 0.0 < availability_at_least_one(r, f) <= 1.0


# ----------------------------------------------------------------------
# Erlang-B (Eq. 18)
# ----------------------------------------------------------------------
class TestErlangProperties:
    @given(
        a=st.floats(min_value=0.0, max_value=1e4),
        c=st.integers(min_value=1, max_value=64),
    )
    def test_probability_bounds(self, a, c):
        assert 0.0 <= erlang_b(a, c) <= 1.0

    @given(
        a=st.floats(min_value=0.01, max_value=100.0),
        c=st.integers(min_value=1, max_value=32),
    )
    def test_more_servers_never_block_more(self, a, c):
        assert erlang_b(a, c + 1) <= erlang_b(a, c) + 1e-12

    @given(
        a=st.floats(min_value=0.01, max_value=100.0),
        c=st.integers(min_value=1, max_value=32),
    )
    def test_more_load_never_blocks_less(self, a, c):
        assert erlang_b(a * 1.1, c) >= erlang_b(a, c) - 1e-12


# ----------------------------------------------------------------------
# EWMA (Eqs. 10-11)
# ----------------------------------------------------------------------
class TestEwmaProperties:
    @given(
        alpha=st.floats(min_value=0.01, max_value=0.99),
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50
        ),
    )
    def test_stays_within_observed_range(self, alpha, values):
        s = Ewma(alpha)
        for v in values:
            out = s.update(v)
        assert min(values) - 1e-6 <= out <= max(values) + 1e-6

    @given(alpha=st.floats(min_value=0.01, max_value=0.99))
    def test_fixed_point_on_constant_stream(self, alpha):
        s = Ewma(alpha)
        for _ in range(5):
            out = s.update(3.5)
        assert out == pytest.approx(3.5)


# ----------------------------------------------------------------------
# Zipf
# ----------------------------------------------------------------------
class TestZipfProperties:
    @given(
        n=st.integers(min_value=1, max_value=256),
        s=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_normalised_nonincreasing(self, n, s):
        w = zipf_weights(n, s)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) <= 1e-12)


# ----------------------------------------------------------------------
# Traffic kernel (Eqs. 2-8)
# ----------------------------------------------------------------------
@st.composite
def traffic_cases(draw):
    num_partitions = draw(st.integers(min_value=1, max_value=4))
    counts = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=20), min_size=4, max_size=4),
            min_size=num_partitions,
            max_size=num_partitions,
        )
    )
    holders = draw(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=num_partitions,
            max_size=num_partitions,
        )
    )
    layouts = []
    for _ in range(num_partitions):
        layout = {}
        for dc in draw(st.sets(st.integers(min_value=0, max_value=3), max_size=3)):
            layout[dc] = [(dc, draw(st.floats(min_value=0.0, max_value=15.0)))]
        layouts.append(layout)
    return counts, holders, layouts


class TestTrafficProperties:
    _router = Router(WanGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]))

    @given(case=traffic_cases())
    @settings(max_examples=80, deadline=None)
    def test_query_conservation(self, case):
        counts, holders, layouts = case
        batch = QueryBatch(0, np.asarray(counts, dtype=np.int64))
        result = serve_epoch(batch, holders, layouts, self._router, 4)
        assert result.total_served + result.unserved.sum() == pytest.approx(
            batch.total
        )

    @given(case=traffic_cases())
    @settings(max_examples=80, deadline=None)
    def test_served_never_exceeds_capacity(self, case):
        counts, holders, layouts = case
        batch = QueryBatch(0, np.asarray(counts, dtype=np.int64))
        result = serve_epoch(batch, holders, layouts, self._router, 4)
        capacity = np.zeros(4)
        for layout in layouts:
            for entries in layout.values():
                for sid, cap in entries:
                    capacity[sid] += cap
        assert np.all(result.served_server.sum(axis=0) <= capacity + 1e-9)

    @given(case=traffic_cases())
    @settings(max_examples=80, deadline=None)
    def test_traffic_nonincreasing_along_path(self, case):
        """Eq. 2: downstream traffic never exceeds upstream traffic."""
        counts, holders, layouts = case
        batch = QueryBatch(0, np.asarray(counts, dtype=np.int64))
        result = serve_epoch(batch, holders, layouts, self._router, 4)
        for p, holder in enumerate(holders):
            row = np.asarray(counts[p])
            for origin in range(4):
                if row[origin] == 0:
                    continue
                path = self._router.path(origin, holder)
                if len(path) < 2:
                    continue
                # A single-origin sanity bound: traffic at the origin is
                # at least the origin's own contribution.
                assert result.traffic_dc[p, origin] >= row[origin] - 1e-9

    @given(case=traffic_cases())
    @settings(max_examples=50, deadline=None)
    def test_everything_nonnegative(self, case):
        counts, holders, layouts = case
        batch = QueryBatch(0, np.asarray(counts, dtype=np.int64))
        result = serve_epoch(batch, holders, layouts, self._router, 4)
        assert np.all(result.served_server >= 0)
        assert np.all(result.traffic_dc >= 0)
        assert np.all(result.unserved >= 0)
        assert result.hop_sum >= 0


# ----------------------------------------------------------------------
# Utilization / imbalance metrics
# ----------------------------------------------------------------------
@st.composite
def metric_matrices(draw):
    p = draw(st.integers(min_value=1, max_value=4))
    s = draw(st.integers(min_value=1, max_value=6))
    counts = np.array(
        draw(
            st.lists(
                st.lists(st.integers(min_value=0, max_value=3), min_size=s, max_size=s),
                min_size=p,
                max_size=p,
            )
        )
    )
    caps = np.array(
        draw(st.lists(st.floats(min_value=0.5, max_value=5.0), min_size=s, max_size=s))
    )
    fractions = np.array(
        draw(
            st.lists(
                st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=s, max_size=s),
                min_size=p,
                max_size=p,
            )
        )
    )
    served = fractions * counts * caps  # within capacity by construction
    return served, counts, caps


class TestMetricProperties:
    @given(case=metric_matrices())
    @settings(max_examples=80, deadline=None)
    def test_utilization_in_unit_interval(self, case):
        served, counts, caps = case
        u = average_utilization(served, counts, caps)
        assert 0.0 <= u <= 1.0 + 1e-9

    @given(case=metric_matrices())
    @settings(max_examples=80, deadline=None)
    def test_imbalance_nonnegative_and_cv_scale_free(self, case):
        served, counts, caps = case
        assert replica_load_imbalance(served, counts) >= 0.0
        cv = replica_load_cv(served, counts)
        assert cv >= 0.0
        assert replica_load_cv(served * 7.0, counts) == pytest.approx(cv, abs=1e-6)
