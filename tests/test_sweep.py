"""The sweep orchestrator stack: manifest expansion, workers, the
merged ``.sweep.json`` artifact, cross-seed statistics, fleet
observability and ``sweepdiff`` gating (``repro.sweep`` +
``repro.obs.fleet``)."""

from __future__ import annotations

import copy
import io
import json
import os
import time

import pytest

from repro.errors import SweepError
from repro.experiments.runner import run_experiment
from repro.obs.fleet import FleetProgress
from repro.obs.fleet.dashboard import render_fleet_dashboard
from repro.obs.fleet.events import (
    cell_failed,
    cell_finished,
    cell_started,
    heartbeat,
)
from repro.staticcheck.sanitizer import DeterminismSanitizer
from repro.sweep import (
    SweepArtifact,
    SweepManifest,
    SweepScale,
    bootstrap_rng,
    build_cell_scenario,
    diff_sweeps,
    format_mean_ci,
    render_sweep,
    run_sweep,
    summarize,
)
from repro.sweep.worker import (
    CellDivergenceError,
    classify_failure,
    load_cell_record,
)

EPOCHS = 6  # tiny runs keep the suite fast; determinism is length-blind


def small_manifest(**overrides):
    defaults = dict(
        policies=("rfh", "random"),
        scenarios=("random",),
        seeds=(1, 2),
        epochs=EPOCHS,
    )
    defaults.update(overrides)
    return SweepManifest(**defaults)


def quiet_progress(total):
    return FleetProgress(total, stream=io.StringIO(), live=False)


# ----------------------------------------------------------------------
# Manifest expansion & content addressing
# ----------------------------------------------------------------------
class TestManifest:
    def test_expansion_is_deterministic_nested_product(self):
        m = small_manifest(seeds=(1, 2, 3))
        cells = m.cells()
        assert len(cells) == m.num_cells == 2 * 1 * 3 * 1 * 1
        assert cells == m.cells()
        # policy-major, then scenario, seed, scale, engine.
        assert [c.cell_id for c in cells[:3]] == [
            "rfh-random-s1-paper-scalar",
            "rfh-random-s2-paper-scalar",
            "rfh-random-s3-paper-scalar",
        ]

    def test_manifest_hash_ignores_name_and_meta(self):
        a = small_manifest()
        b = small_manifest()
        import dataclasses

        renamed = dataclasses.replace(a, name="other", meta={"note": "x"})
        assert a.manifest_hash == b.manifest_hash == renamed.manifest_hash

    def test_manifest_hash_tracks_every_knob(self):
        base = small_manifest()
        assert small_manifest(epochs=EPOCHS + 1).manifest_hash != base.manifest_hash
        assert small_manifest(seeds=(1, 3)).manifest_hash != base.manifest_hash
        assert (
            small_manifest(scales=(SweepScale("paper", rate=200.0),)).manifest_hash
            != base.manifest_hash
        )

    def test_save_load_round_trip(self, tmp_path):
        m = small_manifest(meta={"note": "hello"})
        path = tmp_path / "grid.json"
        m.save(path)
        loaded = SweepManifest.load(path)
        assert loaded == m
        assert loaded.manifest_hash == m.manifest_hash
        # The on-disk hash is advisory and recomputed on load.
        raw = json.loads(path.read_text())
        assert raw["manifest_hash"] == m.manifest_hash

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(policies=()),
            dict(policies=("rfh", "rfh")),
            dict(policies=("nope",)),
            dict(scenarios=("nope",)),
            dict(engines=("nope",)),
            dict(epochs=0),
            dict(timeseries_stride=0),
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(SweepError):
            small_manifest(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SweepError, match="unknown manifest key"):
            SweepManifest.from_dict({"policies": ["rfh"], "bogus": 1})

    def test_cell_digest_tracks_configuration(self):
        a = small_manifest().cells()[0]
        b = small_manifest(epochs=EPOCHS + 1).cells()[0]
        assert a.cell_id == b.cell_id  # epochs not in the id...
        assert a.digest != b.digest  # ...but always in the address
        assert a.dirname == f"{a.cell_id}-{a.digest}"


# ----------------------------------------------------------------------
# Cross-seed statistics
# ----------------------------------------------------------------------
class TestStats:
    def test_summarize_is_deterministic_for_a_manifest_hash(self):
        values = [1.0, 2.0, 3.0, 4.0]
        s1 = summarize(values, bootstrap_rng("abc123def456"))
        s2 = summarize(values, bootstrap_rng("abc123def456"))
        assert s1 == s2
        assert s1["n"] == 4 and s1["mean"] == pytest.approx(2.5)
        assert s1["ci_lo"] <= s1["mean"] <= s1["ci_hi"]

    def test_single_seed_has_zero_width_interval(self):
        s = summarize([7.5], bootstrap_rng("0"))
        assert s["n"] == 1 and s["ci_lo"] == s["ci_hi"] == 7.5
        assert s["stddev"] == 0.0
        assert format_mean_ci(s) == "7.500"  # bare mean, no dishonest ±

    def test_empty_group_is_nan_with_n_zero(self):
        import math

        s = summarize([], bootstrap_rng("0"))
        assert s["n"] == 0 and math.isnan(s["mean"])
        assert format_mean_ci(s) == "–"

    def test_format_mean_ci_prints_half_width(self):
        s = summarize([1.0, 2.0, 3.0], bootstrap_rng("42"))
        text = format_mean_ci(s, "{:.2f}")
        assert "±" in text and text.startswith("2.00")


# ----------------------------------------------------------------------
# The sweep itself
# ----------------------------------------------------------------------
class TestRunSweep:
    def test_inline_sweep_produces_valid_artifact(self, tmp_path):
        m = small_manifest()
        art = run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        assert art.num_ok == m.num_cells and art.num_failed == 0
        loaded = SweepArtifact.load(tmp_path / "sweep.sweep.json")
        assert loaded.fingerprints() == art.fingerprints()
        assert sorted(loaded.groups) == [
            "random/random/paper/scalar",
            "rfh/random/paper/scalar",
        ]
        for stats in loaded.groups.values():
            assert stats["utilization"]["n"] == 2
        # Every cell dir holds the full artifact set.
        for cell in m.cells():
            cell_dir = tmp_path / "cells" / cell.dirname
            for name in ("cell.json", "metrics.csv", "run.tsdb.json", "run.fp.json"):
                assert (cell_dir / name).exists()

    def test_cell_fingerprints_match_sequential_single_runs(self, tmp_path):
        """Acceptance: sweep cells are bit-identical to one-off runs."""
        m = small_manifest()
        art = run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        for cell in m.cells():
            sanitizer = DeterminismSanitizer()
            run_experiment(
                cell.policy,
                build_cell_scenario(cell),
                sanitizer=sanitizer,
                engine=cell.engine,
            )
            assert (
                art.cell_record(cell.cell_id)["fingerprint"]
                == sanitizer.trail().final_chain
            ), f"sweep cell {cell.cell_id} diverged from a sequential run"

    def test_acceptance_grid_all_policies_two_scenarios(self, tmp_path):
        """The issue's acceptance grid shape: 4 policies x 2 scenarios x
        seeds, merged with per-cell fingerprints and full group stats."""
        m = SweepManifest(
            policies=("request", "owner", "random", "rfh"),
            scenarios=("random", "flash"),
            seeds=(1, 2, 3),
            epochs=4,
        )
        art = run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        assert art.num_ok == 24 and art.num_failed == 0
        assert len(art.groups) == 8
        assert all(s["utilization"]["n"] == 3 for s in art.groups.values())

    def test_parallel_sweep_is_bit_identical_to_inline(self, tmp_path):
        m = small_manifest()
        a = run_sweep(
            m, tmp_path / "a", max_workers=1, progress=quiet_progress(m.num_cells)
        )
        b = run_sweep(
            m, tmp_path / "b", max_workers=3, progress=quiet_progress(m.num_cells)
        )
        assert a.fingerprints() == b.fingerprints()
        assert a.groups == b.groups
        report = diff_sweeps(a, b)
        assert report.exit_code() == 0
        assert len(report.cells_identical) == m.num_cells

    def test_injected_exception_becomes_structured_failure(self, tmp_path):
        m = small_manifest()
        art = run_sweep(
            m,
            tmp_path,
            inject_crash="random-random-s1",
            progress=quiet_progress(m.num_cells),
        )
        assert art.num_ok == m.num_cells - 1 and art.num_failed == 1
        [failure] = art.failures
        assert failure["cell_id"] == "random-random-s1-paper-scalar"
        assert failure["kind"] == "worker-error"
        assert "injected crash" in failure["error"]
        assert "RuntimeError" in (failure["traceback"] or "")

    def test_hard_worker_crash_is_caught_by_watchdog(self, tmp_path):
        m = small_manifest()
        art = run_sweep(
            m,
            tmp_path,
            max_workers=2,
            inject_crash="rfh-random-s2",
            inject_mode="exit",
            progress=quiet_progress(m.num_cells),
        )
        assert art.num_ok == m.num_cells - 1
        [failure] = art.failures
        assert failure["kind"] == "worker-crash"
        # Depending on whether the dying worker's queue feeder flushed
        # its cell_started event before os._exit, the crash is booked
        # either by the in-flight watchdog ("exit code N") or by the
        # lost-cell pass ("no live workers") — both name the cell.
        assert failure["cell_id"] == "rfh-random-s2-paper-scalar"

    def test_resume_skips_completed_and_reruns_failed(self, tmp_path):
        m = small_manifest()
        first = run_sweep(
            m,
            tmp_path,
            inject_crash="rfh-random-s1",
            progress=quiet_progress(m.num_cells),
        )
        assert first.num_failed == 1
        stream = io.StringIO()
        second = run_sweep(
            m,
            tmp_path,
            resume=True,
            progress=FleetProgress(m.num_cells, stream=stream, live=False),
        )
        assert second.num_ok == m.num_cells and second.num_failed == 0
        assert second.meta["resumed_cells"] == m.num_cells - 1
        assert stream.getvalue().count("resumed") >= m.num_cells - 1
        # Resumed + fresh must equal an untouched run of the same grid.
        clean = run_sweep(
            m, tmp_path / "clean", progress=quiet_progress(m.num_cells)
        )
        assert diff_sweeps(clean, second).exit_code() == 0

    def test_resume_rejects_tampered_cell_record(self, tmp_path):
        m = small_manifest()
        run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        cell = m.cells()[0]
        record_path = tmp_path / "cells" / cell.dirname / "cell.json"
        raw = json.loads(record_path.read_text())
        raw["digest"] = "deadbeef"
        record_path.write_text(json.dumps(raw))
        assert (
            load_cell_record(
                cell, tmp_path / "cells" / cell.dirname, m.manifest_hash
            )
            is None
        )
        # Other-manifest records are rejected too.
        ok_cell = m.cells()[1]
        assert (
            load_cell_record(
                ok_cell, tmp_path / "cells" / ok_cell.dirname, "somethingelse"
            )
            is None
        )

    def test_verify_cells_runs_the_determinism_guard(self, tmp_path):
        m = small_manifest(seeds=(1,))
        art = run_sweep(
            m, tmp_path, verify=True, progress=quiet_progress(m.num_cells)
        )
        assert art.num_failed == 0
        assert all(record["verified"] for record in art.cells)

    def test_divergence_classifies_as_determinism_failure(self):
        assert (
            classify_failure(CellDivergenceError("boom"))
            == "determinism-divergence"
        )
        assert classify_failure(RuntimeError("boom")) == "worker-error"

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="parallel speedup needs >= 4 cores",
    )
    def test_parallel_speedup_on_multicore(self, tmp_path):
        """Acceptance: wall-clock < 0.5x sequential on >= 4 cores."""
        m = SweepManifest(
            policies=("request", "owner", "random", "rfh"),
            scenarios=("random", "flash"),
            seeds=(1, 2, 3, 4, 5),
            epochs=30,
        )
        t0 = time.perf_counter()
        run_sweep(
            m, tmp_path / "seq", max_workers=1,
            progress=quiet_progress(m.num_cells),
        )
        sequential = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_sweep(
            m, tmp_path / "par", max_workers=4,
            progress=quiet_progress(m.num_cells),
        )
        parallel = time.perf_counter() - t0
        assert parallel < 0.5 * sequential, (
            f"parallel {parallel:.2f}s vs sequential {sequential:.2f}s"
        )


# ----------------------------------------------------------------------
# Artifact format
# ----------------------------------------------------------------------
class TestSweepArtifact:
    def test_round_trip_preserves_everything(self, tmp_path):
        m = small_manifest()
        art = run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        path = tmp_path / "copy.sweep.json"
        art.save(path)
        loaded = SweepArtifact.load(path)
        assert loaded.to_dict() == art.to_dict()

    def test_rejects_wrong_format_and_version(self, tmp_path):
        m = small_manifest()
        art = run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        raw = art.to_dict()
        bad = dict(raw, format="nope")
        with pytest.raises(SweepError, match="format"):
            SweepArtifact.from_dict(bad)
        bad = dict(raw, version=99)
        with pytest.raises(SweepError, match="version"):
            SweepArtifact.from_dict(bad)

    def test_rejects_manifest_hash_mismatch(self, tmp_path):
        m = small_manifest()
        art = run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        raw = art.to_dict()
        raw["manifest_hash"] = "000000000000"
        with pytest.raises(SweepError, match="manifest hash mismatch"):
            SweepArtifact.from_dict(raw)

    def test_unreadable_file_raises_sweep_error(self, tmp_path):
        path = tmp_path / "junk.sweep.json"
        path.write_text("{not json")
        with pytest.raises(SweepError, match="cannot read"):
            SweepArtifact.load(path)


# ----------------------------------------------------------------------
# Report & dashboard
# ----------------------------------------------------------------------
class TestReporting:
    def test_report_prints_mean_ci_tables(self, tmp_path):
        m = small_manifest()
        art = run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        text = render_sweep(art)
        assert "±" in text
        assert "| rfh " in text and "| random " in text
        assert m.manifest_hash in text
        assert "failures" not in text  # clean sweep, no failure section

    def test_report_lists_structured_failures(self, tmp_path):
        m = small_manifest()
        art = run_sweep(
            m,
            tmp_path,
            inject_crash="rfh-random-s1",
            progress=quiet_progress(m.num_cells),
        )
        text = render_sweep(art)
        assert "## failures" in text
        assert "rfh-random-s1-paper-scalar" in text
        assert "worker-error" in text

    def test_fleet_dashboard_renders_band_plots_offline(self, tmp_path):
        m = small_manifest(seeds=(1, 2, 3))
        art = run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        page = render_fleet_dashboard(art, tmp_path)
        assert page.count('<figure class="panel"') >= 8
        assert '<polygon class="band"' in page
        assert "mean over 3 seed(s)" in page
        body = page.split("</title>", 1)[1]
        assert "http://" not in body and "https://" not in body

    def test_fleet_dashboard_requires_cell_artifacts(self, tmp_path):
        m = small_manifest()
        art = run_sweep(m, tmp_path, progress=quiet_progress(m.num_cells))
        with pytest.raises(SweepError, match="no loadable cell time series"):
            render_fleet_dashboard(art, tmp_path / "elsewhere")


# ----------------------------------------------------------------------
# sweepdiff gating
# ----------------------------------------------------------------------
class TestSweepDiff:
    def _two_runs(self, tmp_path):
        m = small_manifest()
        a = run_sweep(m, tmp_path / "a", progress=quiet_progress(m.num_cells))
        b = run_sweep(m, tmp_path / "b", progress=quiet_progress(m.num_cells))
        return a, b

    def test_same_manifest_sweeps_diff_clean(self, tmp_path):
        a, b = self._two_runs(tmp_path)
        report = diff_sweeps(a, b)
        assert report.exit_code() == 0
        assert report.same_manifest
        assert not report.cell_mismatches
        assert {j[2] for j in report.judgements} == {"identical"}
        assert "verdict: OK" in report.render()

    def test_fingerprint_mismatch_gates(self, tmp_path):
        a, b = self._two_runs(tmp_path)
        raw = copy.deepcopy(b.to_dict())
        raw["cells"][0]["fingerprint"] = "feedfacecafebeef"
        tampered = SweepArtifact.from_dict(raw)
        report = diff_sweeps(a, tampered)
        assert report.exit_code() == 1
        assert len(report.cell_mismatches) == 1
        assert "FINGERPRINT MISMATCH" in report.render()

    def test_ci_disjoint_regression_gates_by_polarity(self, tmp_path):
        a, b = self._two_runs(tmp_path)
        raw = copy.deepcopy(b.to_dict())
        group = raw["groups"]["rfh/random/paper/scalar"]
        # utilization has polarity +1: a clearly lower CI is a regression.
        group["utilization"] = {
            "n": 2, "mean": 0.01, "stddev": 0.001, "min": 0.009,
            "max": 0.011, "p05": 0.009, "p95": 0.011,
            "ci_lo": 0.009, "ci_hi": 0.011,
        }
        worse = SweepArtifact.from_dict(raw)
        report = diff_sweeps(a, worse)
        assert report.exit_code() == 1
        assert any(j[2] == "regressed" and j[1] == "utilization"
                   for j in report.judgements)
        # The same shift in the improving direction does not gate.
        raw2 = copy.deepcopy(b.to_dict())
        raw2["groups"]["rfh/random/paper/scalar"]["utilization"] = {
            "n": 2, "mean": 0.99, "stddev": 0.001, "min": 0.989,
            "max": 0.991, "p05": 0.989, "p95": 0.991,
            "ci_lo": 0.989, "ci_hi": 0.991,
        }
        better = SweepArtifact.from_dict(raw2)
        better_report = diff_sweeps(a, better)
        assert any(j[2] == "improved" for j in better_report.judgements)
        assert not better_report.regressions

    def test_disjoint_cells_reported_not_gated(self, tmp_path):
        m_a = small_manifest(seeds=(1, 2))
        m_b = small_manifest(seeds=(2, 3))
        a = run_sweep(m_a, tmp_path / "a", progress=quiet_progress(4))
        b = run_sweep(m_b, tmp_path / "b", progress=quiet_progress(4))
        report = diff_sweeps(a, b)
        assert not report.same_manifest
        assert len(report.cells_only_a) == 2  # seed 1 cells
        assert len(report.cells_only_b) == 2  # seed 3 cells
        assert len(report.cells_identical) == 2  # shared seed-2 cells


# ----------------------------------------------------------------------
# Fleet progress rendering
# ----------------------------------------------------------------------
class TestFleetProgress:
    def test_pipe_mode_prints_one_line_per_completion(self):
        stream = io.StringIO()
        progress = FleetProgress(3, stream=stream, live=False)
        progress.handle(cell_started(0, 0, "cell-a"))
        progress.handle(heartbeat(0, "cell-a", 1.0, 0))
        progress.handle(
            cell_finished(0, 0, "cell-a", {"duration_s": 1.25})
        )
        progress.handle(cell_started(1, 1, "cell-b"))
        progress.handle(
            cell_failed(
                1, 1, "cell-b",
                {"kind": "worker-error", "error": "RuntimeError: nope"},
            )
        )
        progress.note_resumed("cell-c")
        progress.finish(wall_s=2.0)
        out = stream.getvalue()
        assert "[1/3] ok cell-a 1.2s (worker 0)" in out
        assert "FAILED cell-b [worker-error]" in out
        assert "resumed cell-c" in out
        assert "sweep: 1 ok, 1 failed, 1 resumed of 3 cell(s)" in out
        assert "\r" not in out  # pipe mode never uses carriage returns

    def test_tty_mode_rewrites_a_status_line(self):
        stream = io.StringIO()
        progress = FleetProgress(2, stream=stream, live=True)
        progress.handle(cell_started(0, 0, "cell-a"))
        assert "\r" in stream.getvalue()
        assert "run=1 | cell-a" in progress.status_line()

    def test_eta_appears_once_durations_exist(self):
        progress = FleetProgress(4, stream=io.StringIO(), live=False)
        assert progress.eta_seconds() is None
        progress.handle(cell_started(0, 0, "a"))
        progress.handle(cell_finished(0, 0, "a", {"duration_s": 2.0}))
        progress.handle(cell_started(0, 1, "b"))
        assert progress.eta_seconds() == pytest.approx(6.0)

    def test_broken_stream_never_raises(self):
        class Broken(io.StringIO):
            def write(self, _):
                raise OSError("gone")

        progress = FleetProgress(1, stream=Broken(), live=False)
        progress.handle(cell_finished(0, 0, "a", {"duration_s": 0.1}))
        progress.finish(0.1)
