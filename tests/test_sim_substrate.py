"""Simulation substrate: RNG tree, clock, events, failure injection."""

import pytest

from repro.cluster import FailureInjector, ReplicaMap
from repro.errors import SimulationError
from repro.sim import EpochClock, EventQueue, MassFailureEvent
from repro.sim.events import ServerFailureEvent, ServerJoinEvent, ServerRecoveryEvent
from repro.sim.rng import RngTree, stable_hash32


class TestRngTree:
    def test_same_seed_same_streams(self):
        a = RngTree(42).stream("x")
        b = RngTree(42).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        tree = RngTree(42)
        a = tree.stream("x").random()
        b = tree.stream("y").random()
        assert a != b

    def test_stream_is_cached(self):
        tree = RngTree(42)
        assert tree.stream("x") is tree.stream("x")

    def test_fresh_restarts_sequence(self):
        tree = RngTree(42)
        first = tree.stream("x").random()
        fresh = tree.fresh("x").random()
        assert first == fresh

    def test_consuming_one_stream_leaves_others_untouched(self):
        baseline = RngTree(42).stream("b").random()
        tree = RngTree(42)
        tree.stream("a").random(size=1000)  # burn a lot of "a"
        assert tree.stream("b").random() == baseline

    def test_child_trees_differ(self):
        tree = RngTree(42)
        assert tree.child("rep1").root_seed != tree.child("rep2").root_seed

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngTree(-1)

    def test_stable_hash32_is_stable(self):
        assert stable_hash32("workload") == stable_hash32("workload")
        assert stable_hash32("a") != stable_hash32("b")


class TestEpochClock:
    def test_advance_and_seconds(self):
        clock = EpochClock(epoch_seconds=10.0)
        assert clock.epoch == 0 and clock.seconds == 0.0
        clock.advance()
        assert clock.epoch == 1 and clock.seconds == 10.0
        clock.advance(4)
        assert clock.epoch == 5

    def test_negative_advance_rejected(self):
        clock = EpochClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_rate_conversion(self):
        clock = EpochClock(epoch_seconds=10.0)
        assert clock.rate_per_second(300.0) == 30.0

    def test_reset(self):
        clock = EpochClock()
        clock.advance(7)
        clock.reset()
        assert clock.epoch == 0

    def test_invalid_epoch_seconds(self):
        with pytest.raises(ValueError):
            EpochClock(epoch_seconds=0.0)


class TestEventQueue:
    def test_pop_due_returns_in_schedule_order(self):
        q = EventQueue()
        e1 = MassFailureEvent(epoch=5, count=1)
        e2 = ServerJoinEvent(epoch=5, dc=0)
        e3 = ServerRecoveryEvent(epoch=3)
        q.schedule(e1)
        q.schedule(e2)
        q.schedule(e3)
        assert q.pop_due(4) == [e3]
        assert q.pop_due(5) == [e1, e2]  # FIFO within an epoch
        assert q.pop_due(100) == []

    def test_len_and_peek(self):
        q = EventQueue()
        assert len(q) == 0 and q.peek_epoch() is None
        q.schedule(MassFailureEvent(epoch=9, count=1))
        assert len(q) == 1 and q.peek_epoch() == 9

    def test_negative_epoch_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(MassFailureEvent(epoch=-1, count=1))


class TestFailureInjector:
    def test_choose_victims_distinct_and_alive(self, cluster, rng_tree):
        injector = FailureInjector(cluster, rng_tree.stream("failures"))
        victims = injector.choose_victims(30)
        assert len(set(victims)) == 30
        alive = set(cluster.alive_server_ids())
        assert set(victims) <= alive

    def test_choose_too_many_raises(self, cluster, rng_tree):
        injector = FailureInjector(cluster, rng_tree.stream("failures"))
        with pytest.raises(SimulationError):
            injector.choose_victims(101)

    def test_fail_random_drops_replicas(self, cluster, mapper, rng_tree):
        rm = ReplicaMap(cluster, 64, 0.5)
        rm.bootstrap(mapper.holders())
        injector = FailureInjector(cluster, rng_tree.stream("failures"))
        before = rm.total_replicas()
        affected = injector.fail_random(rm, 30)
        assert len(affected) == 30
        assert rm.total_replicas() <= before
        assert len(cluster.alive_servers()) == 70

    def test_recover(self, cluster, rng_tree):
        injector = FailureInjector(cluster, rng_tree.stream("failures"))
        victims = injector.choose_victims(5)
        rm = ReplicaMap(cluster, 4, 0.5)
        rm.bootstrap([90, 91, 92, 93])
        injector.fail(rm, victims)
        injector.recover(victims)
        assert len(cluster.alive_servers()) == 100

    def test_victim_choice_is_deterministic(self, cluster):
        a = FailureInjector(cluster, RngTree(9).stream("f")).choose_victims(10)
        # Fresh cluster with same membership -> same choice for same stream.
        b = FailureInjector(cluster, RngTree(9).stream("f")).choose_victims(10)
        assert a == b


class TestServerFailureEvent:
    def test_dataclasses_are_frozen(self):
        event = ServerFailureEvent(epoch=1, sids=(1, 2))
        with pytest.raises(AttributeError):
            event.epoch = 2  # type: ignore[misc]
