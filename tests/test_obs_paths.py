"""Edge cases for the shared artifact-path helpers (repro.obs.paths)."""

from __future__ import annotations

import pathlib

import pytest

from repro.obs.paths import (
    ARTIFACT_SUFFIXES,
    derived_path,
    split_suffix,
    tagged_path,
)


class TestSplitSuffix:
    def test_compound_suffix_recognized_as_unit(self):
        assert split_suffix("out.tsdb.json") == ("out", ".tsdb.json")
        assert split_suffix("run.prov.json") == ("run", ".prov.json")
        assert split_suffix("run.fp.json") == ("run", ".fp.json")

    def test_longest_suffix_wins_over_plain_json(self):
        # .tsdb.json must not be split as (out.tsdb, .json).
        assert split_suffix("out.tsdb.json")[1] == ".tsdb.json"
        assert split_suffix("out.json") == ("out", ".json")

    def test_relative_path_keeps_directory_part(self):
        assert split_suffix("runs/week1/out.tsdb.json") == (
            "runs/week1/out",
            ".tsdb.json",
        )
        assert split_suffix("./out.fp.json") == ("./out", ".fp.json")

    def test_absolute_and_pathlib_inputs(self):
        assert split_suffix("/tmp/a/b.prof.json") == ("/tmp/a/b", ".prof.json")
        stem, suffix = split_suffix(pathlib.PurePosixPath("x/y.jsonl"))
        assert (stem, suffix) == ("x/y", ".jsonl")

    def test_multi_dot_stem_survives(self):
        # Only the recognized artifact suffix is removed; dots in the
        # stem (versions, dates) stay put.
        assert split_suffix("run.v2.1.tsdb.json") == ("run.v2.1", ".tsdb.json")
        assert split_suffix("2026.08.07.fp.json") == ("2026.08.07", ".fp.json")

    def test_tagged_compound_suffix_splits_outside_the_tag(self):
        # A previously-tagged file re-splits at the artifact suffix.
        assert split_suffix("cmp.rfh.fp.json") == ("cmp.rfh", ".fp.json")
        assert split_suffix("cmp.rfh.tsdb.json") == ("cmp.rfh", ".tsdb.json")

    def test_unrecognized_suffix_is_empty(self):
        assert split_suffix("notes.txt") == ("notes.txt", "")
        assert split_suffix("archive.tar.gz") == ("archive.tar.gz", "")
        assert split_suffix("plain") == ("plain", "")

    def test_bare_suffix_named_file_never_splits_to_empty_stem(self):
        # A file literally named ".json" must not split to an empty stem;
        # a dotfile matching a *longer* compound suffix falls through to
        # the shorter one that leaves a non-empty stem.
        assert split_suffix(".json") == (".json", "")
        assert split_suffix("dir/.tsdb.json") == ("dir/.tsdb", ".json")

    @pytest.mark.parametrize("suffix", ARTIFACT_SUFFIXES)
    def test_every_registered_suffix_round_trips(self, suffix):
        stem, got = split_suffix(f"file{suffix}")
        assert (stem, got) == ("file", suffix)


class TestTaggedPath:
    def test_tag_lands_before_compound_suffix(self):
        assert tagged_path("out.tsdb.json", "rfh") == "out.rfh.tsdb.json"
        assert tagged_path("cmp.fp.json", "owner") == "cmp.owner.fp.json"

    def test_tagging_twice_stacks_outside_in(self):
        once = tagged_path("out.tsdb.json", "rfh")
        assert tagged_path(once, "retry") == "out.rfh.retry.tsdb.json"

    def test_relative_directories_preserved(self):
        assert (
            tagged_path("results/day2/out.prov.json", "rfh")
            == "results/day2/out.rfh.prov.json"
        )

    def test_no_recognized_suffix_appends_tag(self):
        assert tagged_path("outfile", "rfh") == "outfile.rfh"
        assert tagged_path("notes.txt", "rfh") == "notes.txt.rfh"


class TestDerivedPath:
    def test_replaces_compound_suffix(self):
        assert (
            derived_path("run.prof.json", ".speedscope.json")
            == "run.speedscope.json"
        )
        assert derived_path("out.tsdb.json", ".fp.json") == "out.fp.json"

    def test_multi_dot_and_relative_stems(self):
        assert (
            derived_path("runs/a.b/out.v1.prof.json", ".speedscope.json")
            == "runs/a.b/out.v1.speedscope.json"
        )

    def test_unrecognized_suffix_appends(self):
        assert derived_path("plain", ".json") == "plain.json"
