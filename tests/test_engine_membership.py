"""Engine + policies across membership churn (join, recover, rebuild)."""

import numpy as np
import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.sim import (
    MassFailureEvent,
    ServerFailureEvent,
    ServerJoinEvent,
    ServerRecoveryEvent,
    Simulation,
)


def make_sim(policy="rfh", seed=17):
    cfg = SimulationConfig(
        seed=seed,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )
    return Simulation(cfg, policy=policy)


class TestJoinedServers:
    def test_rfh_uses_joined_servers(self):
        """New capacity in a hot datacenter gets adopted by placement."""
        sim = make_sim()
        sim.run(40)
        hot_dc = int(np.argmax(sim.last_result.traffic_dc.sum(axis=0)))
        sim.schedule_event(ServerJoinEvent(epoch=40, dc=hot_dc, count=5))
        sim.run(80)
        new_sids = set(range(100, 105))
        used = {
            sid
            for p in range(16)
            for sid, _ in sim.replicas.servers_with(p)
            if sid in new_sids
        }
        # At least some of the new servers host replicas by now.
        assert used

    def test_metrics_width_tracks_growth(self):
        sim = make_sim()
        sim.schedule_event(ServerJoinEvent(epoch=5, dc=0, count=2))
        sim.run(10)
        assert sim.last_result.served_server.shape[1] == 102

    def test_every_policy_survives_churn(self):
        for policy in ("rfh", "random", "owner", "request"):
            sim = make_sim(policy=policy)
            sim.schedule_event(MassFailureEvent(epoch=10, count=20))
            sim.schedule_event(ServerJoinEvent(epoch=20, dc=3, count=4))
            sim.schedule_event(ServerRecoveryEvent(epoch=30))
            metrics = sim.run(50)
            assert metrics.num_epochs == 50
            alive = metrics.array("alive_servers")
            assert alive[10] == 80
            assert alive[20] == 84
            assert alive[30] == 104


class TestRecoveryDynamics:
    def test_recovered_servers_rejoin_ring(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=5, count=30))
        sim.schedule_event(ServerRecoveryEvent(epoch=15))
        sim.run(20)
        assert len(sim.ring.members) == 100

    def test_failure_storage_accounting_consistent(self):
        """After arbitrary churn, total stored MB equals copies x size."""
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=10, count=25))
        sim.schedule_event(ServerRecoveryEvent(epoch=25))
        sim.run(60)
        total_mb = sum(s.storage_used_mb for s in sim.cluster.servers)
        expected = sim.replicas.total_replicas() * sim.config.workload.partition_size_mb
        assert total_mb == pytest.approx(expected)

    def test_availability_floor_restored_after_failure(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=20, count=40))
        sim.run(80)
        counts = sim.replicas.per_partition_counts()
        assert all(c >= sim.rmin for c in counts)

    def test_mean_availability_dips_then_recovers(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=30, count=40))
        m = sim.run(100)
        avail = m.array("mean_availability")
        assert avail[30] <= avail[29]  # the hit
        assert avail[-1] >= avail[29] - 1e-9  # healed


class TestCrossPolicyDeterminism:
    def test_shared_trace_isolation(self):
        """Two policies on one trace see identical queries but leave the
        trace object unchanged for the next consumer."""
        from repro.experiments import random_query_scenario

        cfg = SimulationConfig(
            seed=23,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16
            ),
        )
        scenario = random_query_scenario(cfg, epochs=30)
        total_before = scenario.trace.total_queries()
        Simulation(cfg, policy="rfh", workload=scenario.trace).run(30)
        Simulation(cfg, policy="random", workload=scenario.trace).run(30)
        assert scenario.trace.total_queries() == total_before


class TestRestoreLostPartitions:
    """Edge cases of ``_restore_lost_partitions``: the cold-archive
    restore that re-creates partitions whose every copy died."""

    @staticmethod
    def holders_of(sim, partition):
        return tuple(sid for sid, _ in sim.replicas.servers_with(partition))

    def test_restore_when_every_holder_dies(self):
        """Killing every server with a copy restores the partition at the
        ring owner, which is alive by construction."""
        sim = make_sim()
        sim.run(5)
        partition = 0
        victims = self.holders_of(sim, partition)
        sim.schedule_event(ServerFailureEvent(epoch=5, sids=victims))
        metrics = sim.run(1)
        assert metrics.array("lost_partitions")[-1] >= 1
        assert sim.replicas.has_holder(partition)
        owner = sim.replicas.holder(partition)
        assert sim.cluster.server(owner).alive
        assert owner not in victims

    def test_restore_when_owning_datacenter_is_down(self):
        """A whole-DC outage (chaos correlated failure pinned to the
        holder's datacenter) must restore into a *different* DC."""
        from repro.chaos import ChaosSchedule, CorrelatedFailure

        probe = make_sim(seed=31)
        probe.run(1)
        partition = 4
        dc = probe.cluster.dc_of(probe.replicas.holder(partition))
        # Kill the owning DC and every other copy of the partition.
        schedule = ChaosSchedule(
            "dc-kill",
            (
                CorrelatedFailure(
                    epoch=3, scope="datacenter", domains=1,
                    domain_keys=(f"dc:{dc}",), downtime=None,
                ),
            ),
        )
        sim_chaos = Simulation(probe.config, policy="rfh", chaos=schedule)
        sim_chaos.run(2)
        stragglers = tuple(
            sid
            for sid, _ in sim_chaos.replicas.servers_with(partition)
            if sim_chaos.cluster.dc_of(sid) != dc
        )
        if stragglers:
            sim_chaos.schedule_event(ServerFailureEvent(epoch=3, sids=stragglers))
        sim_chaos.run(2)
        assert sim_chaos.replicas.has_holder(partition)
        owner = sim_chaos.replicas.holder(partition)
        assert sim_chaos.cluster.server(owner).alive
        assert sim_chaos.cluster.dc_of(owner) != dc

    def test_restore_races_same_epoch_join(self):
        """A join scheduled at the same epoch as the killing blow lands
        before the restore (FIFO within the epoch), so the fresh server
        is a legal restore target and invariants hold either way."""
        sim = make_sim()
        sim.run(5)
        partition = 2
        victims = self.holders_of(sim, partition)
        sim.schedule_event(ServerFailureEvent(epoch=5, sids=victims))
        sim.schedule_event(ServerJoinEvent(epoch=5, dc=1, count=3))
        sim.run(5)
        assert sim.replicas.has_holder(partition)
        owner = sim.replicas.holder(partition)
        assert sim.cluster.server(owner).alive
        # The world stayed conservation-clean throughout (strict checker
        # from REPRO_CHECK_INVARIANTS would have raised otherwise).
        total_mb = sum(s.storage_used_mb for s in sim.cluster.servers)
        expected = (
            sim.replicas.total_replicas() * sim.config.workload.partition_size_mb
        )
        assert total_mb == pytest.approx(expected)

    def test_restore_emits_trace_record(self):
        from repro.obs.trace import RingBufferTracer

        tracer = RingBufferTracer()
        cfg = SimulationConfig(
            seed=17,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
            ),
        )
        sim = Simulation(cfg, tracer=tracer)
        sim.run(5)
        victims = self.holders_of(sim, 0)
        sim.schedule_event(ServerFailureEvent(epoch=5, sids=victims))
        sim.run(1)
        restores = tracer.events(kind="partition_restore")
        assert any(r.partition == 0 and r.reason == "all-copies-lost" for r in restores)
