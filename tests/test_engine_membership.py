"""Engine + policies across membership churn (join, recover, rebuild)."""

import numpy as np
import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.sim import (
    MassFailureEvent,
    ServerJoinEvent,
    ServerRecoveryEvent,
    Simulation,
)


def make_sim(policy="rfh", seed=17):
    cfg = SimulationConfig(
        seed=seed,
        workload=WorkloadParameters(
            queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9
        ),
    )
    return Simulation(cfg, policy=policy)


class TestJoinedServers:
    def test_rfh_uses_joined_servers(self):
        """New capacity in a hot datacenter gets adopted by placement."""
        sim = make_sim()
        sim.run(40)
        hot_dc = int(np.argmax(sim.last_result.traffic_dc.sum(axis=0)))
        sim.schedule_event(ServerJoinEvent(epoch=40, dc=hot_dc, count=5))
        sim.run(80)
        new_sids = set(range(100, 105))
        used = {
            sid
            for p in range(16)
            for sid, _ in sim.replicas.servers_with(p)
            if sid in new_sids
        }
        # At least some of the new servers host replicas by now.
        assert used

    def test_metrics_width_tracks_growth(self):
        sim = make_sim()
        sim.schedule_event(ServerJoinEvent(epoch=5, dc=0, count=2))
        sim.run(10)
        assert sim.last_result.served_server.shape[1] == 102

    def test_every_policy_survives_churn(self):
        for policy in ("rfh", "random", "owner", "request"):
            sim = make_sim(policy=policy)
            sim.schedule_event(MassFailureEvent(epoch=10, count=20))
            sim.schedule_event(ServerJoinEvent(epoch=20, dc=3, count=4))
            sim.schedule_event(ServerRecoveryEvent(epoch=30))
            metrics = sim.run(50)
            assert metrics.num_epochs == 50
            alive = metrics.array("alive_servers")
            assert alive[10] == 80
            assert alive[20] == 84
            assert alive[30] == 104


class TestRecoveryDynamics:
    def test_recovered_servers_rejoin_ring(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=5, count=30))
        sim.schedule_event(ServerRecoveryEvent(epoch=15))
        sim.run(20)
        assert len(sim.ring.members) == 100

    def test_failure_storage_accounting_consistent(self):
        """After arbitrary churn, total stored MB equals copies x size."""
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=10, count=25))
        sim.schedule_event(ServerRecoveryEvent(epoch=25))
        sim.run(60)
        total_mb = sum(s.storage_used_mb for s in sim.cluster.servers)
        expected = sim.replicas.total_replicas() * sim.config.workload.partition_size_mb
        assert total_mb == pytest.approx(expected)

    def test_availability_floor_restored_after_failure(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=20, count=40))
        sim.run(80)
        counts = sim.replicas.per_partition_counts()
        assert all(c >= sim.rmin for c in counts)

    def test_mean_availability_dips_then_recovers(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=30, count=40))
        m = sim.run(100)
        avail = m.array("mean_availability")
        assert avail[30] <= avail[29]  # the hit
        assert avail[-1] >= avail[29] - 1e-9  # healed


class TestCrossPolicyDeterminism:
    def test_shared_trace_isolation(self):
        """Two policies on one trace see identical queries but leave the
        trace object unchanged for the next consumer."""
        from repro.experiments import random_query_scenario

        cfg = SimulationConfig(
            seed=23,
            workload=WorkloadParameters(
                queries_per_epoch_mean=120.0, num_partitions=16
            ),
        )
        scenario = random_query_scenario(cfg, epochs=30)
        total_before = scenario.trace.total_queries()
        Simulation(cfg, policy="rfh", workload=scenario.trace).run(30)
        Simulation(cfg, policy="random", workload=scenario.trace).run(30)
        assert scenario.trace.total_queries() == total_before
