"""The new analyzer families: kernel purity (REP1xx), concurrency
lifecycle (REP2xx) and the cross-module project auditors (AUD).

Every rule gets a positive fixture (asserting the rule id fires on the
expected line) and a negative fixture exercising its exemption logic,
per ISSUE 10's acceptance criteria.  The project auditors run against
miniature project trees built under ``tmp_path`` that mirror the real
repository layout (``pyproject.toml`` + ``src/repro/...`` + ``tests/``),
including the required demonstration that removing an override from the
differential test's ``DIFFERENTIAL_HOOKS`` tuple makes AUD001 fail.
"""

import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    Baseline,
    changed_python_files,
    expand_select,
    lint_paths,
    lint_source,
    render_text,
    run_project_audit,
)

#: REP1xx rules are scoped to kernel directories; this path is inside.
KERNEL = "src/repro/sim/columnar/kern.py"
#: ...and this one is outside (same package, not a kernel).
NON_KERNEL = "src/repro/sweep/mod.py"


def check(source: str, path: str = KERNEL):
    return lint_source(path, textwrap.dedent(source))


def rule_lines(source: str, rule_id: str, path: str = KERNEL) -> list[int]:
    return [
        f.line for f in check(source, path) if f.rule_id == rule_id and f.active
    ]


# ======================================================================
# Family 1 — numeric-kernel purity (REP101–REP104)
# ======================================================================
class TestREP101DtypePromotion:
    def test_int_array_true_division(self):
        src = """\
        import numpy as np

        counts = np.zeros(4, dtype=np.int64)
        totals = np.zeros(4)
        mean = totals / counts
        """
        assert rule_lines(src, "REP101") == [5]

    def test_mixed_int_float_arithmetic(self):
        src = """\
        import numpy as np

        counts = np.zeros(4, dtype=np.int64)
        weights = np.ones(4)
        scaled = weights * counts
        """
        assert rule_lines(src, "REP101") == [5]

    def test_bool_sum_without_dtype(self):
        src = """\
        import numpy as np

        load = np.zeros(8)
        mask = load > 0.0
        alive = mask.sum()
        """
        assert rule_lines(src, "REP101") == [5]

    def test_np_sum_over_bool_without_dtype(self):
        src = """\
        import numpy as np

        load = np.zeros(8)
        alive = np.sum(load > 0.0)
        """
        assert rule_lines(src, "REP101") == [4]

    def test_explicit_astype_is_exempt(self):
        src = """\
        import numpy as np

        counts = np.zeros(4, dtype=np.int64)
        totals = np.zeros(4)
        mean = totals / counts.astype(np.float64)
        alive = (totals > 0.0).sum(dtype=np.int64)
        """
        assert rule_lines(src, "REP101") == []

    def test_finding_carries_fix_hint(self):
        src = """\
        import numpy as np

        counts = np.zeros(4, dtype=np.int64)
        x = counts / counts
        """
        (finding,) = [f for f in check(src) if f.rule_id == "REP101"]
        assert " — fix: " in finding.message

    def test_scope_limits_family_to_kernel_dirs(self):
        src = """\
        import numpy as np

        counts = np.zeros(4, dtype=np.int64)
        x = counts / counts
        """
        assert rule_lines(src, "REP101", path=NON_KERNEL) == []


class TestREP102OrderSensitiveReduction:
    def test_sum_over_set(self):
        src = """\
        values = {0.1, 0.2, 0.7}
        total = sum(values)
        """
        assert rule_lines(src, "REP102") == [2]

    def test_fromiter_over_generator_over_set(self):
        src = """\
        import numpy as np

        sids = {3, 1, 2}
        arr = np.fromiter((s * 0.5 for s in sids), dtype=np.float64)
        """
        assert rule_lines(src, "REP102") == [4]

    def test_sorted_set_is_exempt(self):
        src = """\
        values = {0.1, 0.2, 0.7}
        total = sum(sorted(values))
        """
        assert rule_lines(src, "REP102") == []


class TestREP103HiddenCopies:
    def test_flatten_always_copies(self):
        src = """\
        import numpy as np

        m = np.zeros((4, 4))
        flat = m.flatten()
        """
        assert rule_lines(src, "REP103") == [4]

    def test_np_append(self):
        src = """\
        import numpy as np

        out = np.zeros(0)
        out = np.append(out, 1.0)
        """
        assert rule_lines(src, "REP103") == [4]

    def test_concatenate_inside_loop(self):
        src = """\
        import numpy as np

        acc = np.zeros(4)
        for _ in range(3):
            acc = np.concatenate([acc, acc])
        """
        assert rule_lines(src, "REP103") == [5]

    def test_chained_subscript_assignment(self):
        src = """\
        import numpy as np

        m = np.zeros((4, 4))
        idx = [0, 2]
        m[idx][0] = 1.0
        """
        assert rule_lines(src, "REP103") == [5]

    def test_ravel_and_single_concatenate_are_exempt(self):
        src = """\
        import numpy as np

        m = np.zeros((4, 4))
        flat = m.ravel()
        joined = np.concatenate([flat, flat])
        """
        assert rule_lines(src, "REP103") == []


class TestREP104PythonLoopOverArray:
    def test_for_over_ndarray(self):
        src = """\
        import numpy as np

        xs = np.zeros(8)
        for x in xs:
            pass
        """
        assert rule_lines(src, "REP104") == [4]

    def test_tolist_makes_boxing_explicit(self):
        src = """\
        import numpy as np

        xs = np.zeros(8)
        for x in xs.tolist():
            pass
        for i in range(8):
            pass
        """
        assert rule_lines(src, "REP104") == []


# ======================================================================
# Family 2 — concurrency / lifecycle (REP201–REP205)
# ======================================================================
class TestREP201LifecycleCleanup:
    def test_process_never_joined(self):
        src = """\
        from multiprocessing import Process

        def launch(work):
            p = Process(target=work)
            p.start()
        """
        assert rule_lines(src, "REP201", path=NON_KERNEL) == [4]

    def test_cleanup_only_on_happy_path(self):
        src = """\
        from multiprocessing import Process

        def launch(work, body):
            p = Process(target=work)
            p.start()
            body()
            p.join()
        """
        assert rule_lines(src, "REP201", path=NON_KERNEL) == [4]

    def test_cleanup_in_finally_is_clean(self):
        src = """\
        from multiprocessing import Process

        def launch(work, body):
            p = Process(target=work)
            p.start()
            try:
                body()
            finally:
                p.join()
        """
        assert rule_lines(src, "REP201", path=NON_KERNEL) == []

    def test_context_manager_is_clean(self):
        src = """\
        from multiprocessing import Pool

        def launch(f, xs):
            pool = Pool(4)
            with pool:
                return pool.map(f, xs)
        """
        assert rule_lines(src, "REP201", path=NON_KERNEL) == []

    def test_ownership_transfer_is_exempt(self):
        src = """\
        from multiprocessing import Queue

        def make_queue():
            q = Queue()
            return q
        """
        assert rule_lines(src, "REP201", path=NON_KERNEL) == []

    def test_noqa_suppresses_new_family(self):
        src = """\
        from multiprocessing import Process

        def launch(work):
            p = Process(target=work)  # repro: noqa[REP201]
            p.start()
        """
        findings = check(src, path=NON_KERNEL)
        assert [f.rule_id for f in findings if f.suppressed] == ["REP201"]
        assert not any(f.active for f in findings)


class TestREP202BlockingQueueGet:
    def test_bare_get_on_queue_param(self):
        src = """\
        def drain(event_q):
            while True:
                item = event_q.get()
        """
        assert rule_lines(src, "REP202", path=NON_KERNEL) == [3]

    def test_timeout_and_nonblocking_forms_are_exempt(self):
        src = """\
        def drain(event_q, options):
            a = event_q.get(timeout=1.0)
            b = event_q.get(block=False)
            c = event_q.get_nowait()
            d = options.get("stride")
        """
        assert rule_lines(src, "REP202", path=NON_KERNEL) == []


class TestREP203OsExitPlacement:
    def test_exit_outside_worker(self):
        src = """\
        import os

        def cleanup():
            os._exit(1)
        """
        assert rule_lines(src, "REP203", path=NON_KERNEL) == [4]

    def test_worker_entry_points_are_exempt(self):
        src = """\
        import os

        def worker_main():
            os._exit(3)

        def run_worker():
            os._exit(3)
        """
        assert rule_lines(src, "REP203", path=NON_KERNEL) == []


class TestREP204ForkUnsafeState:
    def test_module_dict_mutated_from_target(self):
        src = """\
        from multiprocessing import Process

        CACHE = {}

        def work():
            CACHE["k"] = 1

        def launch(body):
            p = Process(target=work)
            p.start()
            try:
                body()
            finally:
                p.join()
        """
        assert rule_lines(src, "REP204", path=NON_KERNEL) == [6]

    def test_non_target_function_is_exempt(self):
        src = """\
        CACHE = {}

        def warm():
            CACHE["k"] = 1
        """
        assert rule_lines(src, "REP204", path=NON_KERNEL) == []


class TestREP205DaemonThreadShutdown:
    def test_daemon_thread_never_joined(self):
        src = """\
        import threading

        def run(beat):
            t = threading.Thread(target=beat, daemon=True)
            t.start()
        """
        assert rule_lines(src, "REP205", path=NON_KERNEL) == [4]

    def test_bounded_join_is_a_shutdown_path(self):
        src = """\
        import threading

        def run(beat, body):
            t = threading.Thread(target=beat, daemon=True)
            t.start()
            try:
                body()
            finally:
                t.join(timeout=2.0)
        """
        assert rule_lines(src, "REP205", path=NON_KERNEL) == []


# ======================================================================
# Family 3 — project auditors (AUD001–AUD003)
# ======================================================================
ENGINE_SRC = """\
class Simulation:
    def _serve_epoch(self):
        pass

    def _utilization_value(self):
        pass
"""

COLUMNAR_SRC = """\
class ColumnarSimulation(Simulation):
    def _serve_epoch(self):
        pass

    def _utilization_value(self):
        pass
"""


def make_project(
    tmp_path: Path,
    *,
    engine: str = ENGINE_SRC,
    columnar: str = COLUMNAR_SRC,
    differential: str | None = None,
    reasons: str = "",
    src_files: dict[str, str] | None = None,
    test_files: dict[str, str] | None = None,
) -> Path:
    """A miniature project tree mirroring the real repository layout."""
    root = tmp_path / "proj"
    sim = root / "src" / "repro" / "sim"
    (sim / "columnar").mkdir(parents=True)
    (root / "tests").mkdir()
    (root / "pyproject.toml").write_text('[project]\nname = "proj"\n')
    (sim / "engine.py").write_text(engine)
    (sim / "columnar" / "engine.py").write_text(columnar)
    (sim / "reasons.py").write_text(reasons)
    if differential is not None:
        (root / "tests" / "test_columnar_equivalence.py").write_text(
            differential
        )
    for rel, content in (src_files or {}).items():
        target = root / "src" / "repro" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(content))
    for rel, content in (test_files or {}).items():
        (root / "tests" / rel).write_text(textwrap.dedent(content))
    return root


def audit(root: Path, *rule_ids: str):
    return run_project_audit(root, frozenset(rule_ids))


class TestAUD001EngineParity:
    FULL_HOOKS = 'DIFFERENTIAL_HOOKS = ("_serve_epoch", "_utilization_value")\n'

    def test_complete_coverage_is_clean(self, tmp_path):
        root = make_project(tmp_path, differential=self.FULL_HOOKS)
        assert audit(root, "AUD001") == []

    def test_removing_an_override_from_the_tuple_fails(self, tmp_path):
        """The acceptance demo: drop a hook from the differential list
        and the auditor must flag that override's def site."""
        root = make_project(
            tmp_path, differential='DIFFERENTIAL_HOOKS = ("_serve_epoch",)\n'
        )
        (finding,) = audit(root, "AUD001")
        assert finding.rule_id == "AUD001"
        assert "_utilization_value" in finding.message
        assert finding.path.endswith("columnar/engine.py")
        assert finding.line == 5  # the override's def line

    def test_missing_tuple_is_one_finding_on_the_test_module(self, tmp_path):
        root = make_project(tmp_path, differential="ENGINES = ()\n")
        (finding,) = audit(root, "AUD001")
        assert finding.rule_id == "AUD001"
        assert "DIFFERENTIAL_HOOKS" in finding.message
        assert finding.path.endswith("test_columnar_equivalence.py")
        assert finding.line == 1

    def test_stale_entry_is_flagged_at_the_tuple(self, tmp_path):
        root = make_project(
            tmp_path,
            differential=(
                "DIFFERENTIAL_HOOKS = (\n"
                '    "_serve_epoch",\n'
                '    "_utilization_value",\n'
                '    "_removed_hook",\n'
                ")\n"
            ),
        )
        (finding,) = audit(root, "AUD001")
        assert "stale" in finding.message and "_removed_hook" in finding.message
        assert finding.path.endswith("test_columnar_equivalence.py")
        assert finding.line == 1  # the assignment's line


class TestAUD002ReasonVocabulary:
    REASONS = 'OVERLOAD = "overload"\nAVAILABILITY = "availability"\n'

    def test_literal_duplicating_a_constant(self, tmp_path):
        root = make_project(
            tmp_path,
            differential=TestAUD001EngineParity.FULL_HOOKS,
            reasons=self.REASONS,
            src_files={
                "policy.py": """\
                def decide(hot):
                    reason = "overload" if hot else "availability"
                    return reason
                """
            },
        )
        findings = audit(root, "AUD002")
        assert [f.rule_id for f in findings] == ["AUD002", "AUD002"]
        assert all(f.path.endswith("policy.py") for f in findings)
        assert "OVERLOAD" in findings[0].message
        assert "import OVERLOAD from repro.sim.reasons" in findings[0].message

    def test_message_notes_an_existing_import(self, tmp_path):
        root = make_project(
            tmp_path,
            differential=TestAUD001EngineParity.FULL_HOOKS,
            reasons=self.REASONS,
            src_files={
                "policy.py": """\
                from .sim.reasons import OVERLOAD

                def decide():
                    return {"reason": "overload"}
                """
            },
        )
        (finding,) = audit(root, "AUD002")
        assert "already imported as OVERLOAD" in finding.message

    def test_constant_use_and_foreign_literals_are_exempt(self, tmp_path):
        root = make_project(
            tmp_path,
            differential=TestAUD001EngineParity.FULL_HOOKS,
            reasons=self.REASONS,
            src_files={
                "policy.py": """\
                from .sim.reasons import OVERLOAD

                def decide():
                    reason = OVERLOAD
                    other = "not-in-the-vocabulary"
                    label = "overload"  # not a reason/cause context
                    return reason, other, label
                """
            },
        )
        assert audit(root, "AUD002") == []


class TestAUD003ArtifactVersioning:
    ARTIFACT = """\
    _FORMAT = "repro-thing"
    _VERSION = 1

    class Thing:
        pass
    """

    COVERING_TEST = """\
    import pytest

    def test_bumped_version_is_rejected():
        payload = {"format": "repro-thing", "version": 2}
        with pytest.raises(ValueError):
            Thing.from_dict(payload)
    """

    def test_uncovered_artifact_module(self, tmp_path):
        root = make_project(
            tmp_path,
            differential=TestAUD001EngineParity.FULL_HOOKS,
            src_files={"artifact.py": self.ARTIFACT},
        )
        (finding,) = audit(root, "AUD003")
        assert finding.rule_id == "AUD003"
        assert "repro-thing" in finding.message
        assert finding.path.endswith("artifact.py")
        assert finding.line == 2  # the version constant's line

    def test_version_rejection_test_satisfies_the_auditor(self, tmp_path):
        root = make_project(
            tmp_path,
            differential=TestAUD001EngineParity.FULL_HOOKS,
            src_files={"artifact.py": self.ARTIFACT},
            test_files={"test_artifact.py": self.COVERING_TEST},
        )
        assert audit(root, "AUD003") == []

    def test_subscript_bump_form_counts_as_coverage(self, tmp_path):
        covering = """\
        import pytest

        def test_future_version(make_thing):
            payload = make_thing()
            payload["version"] = payload["version"] + 1
            with pytest.raises(ValueError):
                Thing.from_dict(payload)
        """
        root = make_project(
            tmp_path,
            differential=TestAUD001EngineParity.FULL_HOOKS,
            src_files={"artifact.py": self.ARTIFACT},
            test_files={"test_artifact.py": covering},
        )
        assert audit(root, "AUD003") == []

    def test_raises_without_version_bump_is_not_coverage(self, tmp_path):
        weak = """\
        import pytest

        def test_malformed_raises():
            with pytest.raises(ValueError):
                Thing.from_dict({"format": "nope"})
        """
        root = make_project(
            tmp_path,
            differential=TestAUD001EngineParity.FULL_HOOKS,
            src_files={"artifact.py": self.ARTIFACT},
            test_files={"test_artifact.py": weak},
        )
        assert len(audit(root, "AUD003")) == 1


# ======================================================================
# Selection, parallel driver, --changed, fingerprints, baseline life
# ======================================================================
REP1_FIXTURE = textwrap.dedent(
    """\
    import numpy as np

    counts = np.zeros(4, dtype=np.int64)
    ratio = counts / counts
    """
)

REP2_FIXTURE = textwrap.dedent(
    """\
    from multiprocessing import Process

    def launch(work):
        p = Process(target=work)
        p.start()
    """
)


def make_lint_tree(tmp_path: Path) -> Path:
    """One planted REP1xx kernel hazard plus one REP2xx hazard."""
    root = tmp_path / "tree"
    kernel_dir = root / "src" / "repro" / "sim" / "columnar"
    sweep_dir = root / "src" / "repro" / "sweep"
    kernel_dir.mkdir(parents=True)
    sweep_dir.mkdir(parents=True)
    (kernel_dir / "kern.py").write_text(REP1_FIXTURE)
    (sweep_dir / "spawn.py").write_text(REP2_FIXTURE)
    return root


class TestSelectIsolation:
    def test_rep2_only_run_ignores_planted_rep1_fixture(self, tmp_path):
        root = make_lint_tree(tmp_path)
        result = lint_paths([root], select=["REP2"])
        assert result.errors == []
        assert {f.rule_id for f in result.active} == {"REP201"}

    def test_rep1_only_run_sees_only_the_kernel_hazard(self, tmp_path):
        root = make_lint_tree(tmp_path)
        result = lint_paths([root], select=["REP1"])
        assert {f.rule_id for f in result.active} == {"REP101"}

    def test_family_expansion(self):
        assert expand_select(["REP2"]) == frozenset(
            {"REP201", "REP202", "REP203", "REP204", "REP205"}
        )
        assert expand_select(["REP1,AUD"]) == frozenset(
            {"REP101", "REP102", "REP103", "REP104",
             "AUD001", "AUD002", "AUD003"}
        )
        with pytest.raises(ValueError, match="REP9"):
            expand_select(["REP9"])

    def test_default_select_excludes_audits(self, tmp_path):
        """AUD needs a project root, so it is opt-in; the default set is
        every per-file REP rule."""
        root = make_lint_tree(tmp_path)
        result = lint_paths([root])
        assert {f.rule_id for f in result.active} == {"REP101", "REP201"}


class TestParallelDriver:
    def test_parallel_output_is_byte_identical_to_serial(self, tmp_path):
        root = make_lint_tree(tmp_path)
        serial = lint_paths([root], jobs=1)
        parallel = lint_paths([root], jobs=2)
        assert render_text(parallel) == render_text(serial)
        assert parallel.files_checked == serial.files_checked == 2


class TestChangedFiles:
    def make_repo(self, tmp_path: Path) -> Path:
        root = tmp_path / "repo"
        (root / "pkg").mkdir(parents=True)
        (root / "pkg" / "stable.py").write_text("STABLE = 1\n")
        (root / "pkg" / "edited.py").write_text("EDITED = 1\n")

        def git(*args: str) -> None:
            subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
                cwd=root, check=True, capture_output=True,
            )

        git("init", "-q")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")
        (root / "pkg" / "edited.py").write_text("EDITED = 2\n")
        (root / "pkg" / "fresh.py").write_text("FRESH = 1\n")
        (root / "pkg" / "notes.txt").write_text("not python\n")
        return root

    def test_modified_and_untracked_python_files(self, tmp_path):
        root = self.make_repo(tmp_path)
        changed = changed_python_files([root / "pkg"], cwd=root)
        assert [p.name for p in changed] == ["edited.py", "fresh.py"]

    def test_scope_filter(self, tmp_path):
        root = self.make_repo(tmp_path)
        (root / "other").mkdir()
        (root / "other" / "extra.py").write_text("EXTRA = 1\n")
        changed = changed_python_files([root / "other"], cwd=root)
        assert [p.name for p in changed] == ["extra.py"]

    def test_outside_a_repo_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            changed_python_files([tmp_path], cwd=tmp_path)

    def test_cli_changed_with_clean_tree(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        root = self.make_repo(tmp_path)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "add", "-A"],
            cwd=root, check=True, capture_output=True,
        )
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-q", "-m", "all"],
            cwd=root, check=True, capture_output=True,
        )
        monkeypatch.chdir(root)
        assert main(["lint", "--changed", "--no-baseline", "pkg"]) == 0
        assert "no changed python files" in capsys.readouterr().out

    def test_cli_changed_lints_only_the_dirty_file(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        root = self.make_repo(tmp_path)
        (root / "pkg" / "fresh.py").write_text(REP2_FIXTURE)
        monkeypatch.chdir(root)
        assert main(["lint", "--changed", "--no-baseline", "pkg"]) == 1
        out = capsys.readouterr().out
        assert "REP201" in out
        assert "stable.py" not in out


class TestFingerprintStability:
    def test_new_family_fingerprints_survive_line_shifts(self):
        for fixture, rule in ((REP1_FIXTURE, "REP101"), (REP2_FIXTURE, "REP201")):
            path = KERNEL if rule == "REP101" else NON_KERNEL
            before = [
                f for f in lint_source(path, fixture) if f.rule_id == rule
            ]
            shifted_src = "# leading comment\n\n" + fixture
            shifted = [
                f
                for f in lint_source(path, shifted_src)
                if f.rule_id == rule
            ]
            assert [f.fingerprint for f in before] == [
                f.fingerprint for f in shifted
            ]
            assert shifted[0].line == before[0].line + 2


class TestBaselineLifecycle:
    def test_write_then_clean_rerun(self, tmp_path, monkeypatch):
        root = make_lint_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        first = lint_paths([root])
        assert len(first.active) == 2
        baseline = Baseline.from_findings(first.findings)
        baseline.save(tmp_path / "base.json")
        reloaded = Baseline.load(tmp_path / "base.json")
        second = lint_paths([root], baseline=reloaded)
        assert second.active == []
        assert len(second.baselined) == 2
        assert second.exit_code == 0
        assert second.warnings == []

    def test_stale_entries_become_warnings_not_failures(self, tmp_path):
        root = make_lint_tree(tmp_path)
        stale = Baseline(
            [
                {
                    "path": "gone/removed.py",
                    "rule": "REP201",
                    "line": 4,
                    "snippet": "p = Process(target=work)",
                    "fingerprint": "0" * 16,
                }
            ]
        )
        result = lint_paths([root], select=["REP2"], baseline=stale)
        assert len(result.warnings) == 1
        assert "stale baseline entry" in result.warnings[0]
        assert "gone/removed.py" in result.warnings[0]
        # warnings never gate: exit code reflects findings only
        assert result.exit_code == 1  # the planted REP201 still fires
        rendered = render_text(result)
        assert "warning:" in rendered

    def test_audit_findings_respect_the_baseline(self, tmp_path, monkeypatch):
        root = make_project(
            tmp_path, differential='DIFFERENTIAL_HOOKS = ("_serve_epoch",)\n'
        )
        monkeypatch.chdir(tmp_path)
        first = lint_paths(
            [root / "src"], select=["AUD001"], project_root=root
        )
        assert [f.rule_id for f in first.active] == ["AUD001"]
        baseline = Baseline.from_findings(first.findings)
        second = lint_paths(
            [root / "src"], select=["AUD001"], project_root=root,
            baseline=baseline,
        )
        assert second.active == [] and second.exit_code == 0


class TestAuditEngineIntegration:
    def test_missing_project_root_is_a_lint_error(self, tmp_path):
        (tmp_path / "loose.py").write_text("X = 1\n")
        result = lint_paths([tmp_path / "loose.py"], select=["AUD"])
        assert result.exit_code == 1
        assert any("project root" in e.message for e in result.errors)

    def test_noqa_applies_to_audit_findings(self, tmp_path):
        root = make_project(
            tmp_path,
            differential=TestAUD001EngineParity.FULL_HOOKS,
            reasons='OVERLOAD = "overload"\n',
            src_files={
                "policy.py": """\
                def decide():
                    reason = "overload"  # repro: noqa[AUD002]
                    return reason
                """
            },
        )
        result = lint_paths([root / "src"], select=["AUD"], project_root=root)
        assert result.active == []
        assert [f.rule_id for f in result.suppressed] == ["AUD002"]
