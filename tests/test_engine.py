"""Engine integration: the epoch loop, action application, events."""

import numpy as np
import pytest

from repro.config import SimulationConfig, WorkloadParameters
from repro.errors import ActionError, SimulationError
from repro.sim import (
    MassFailureEvent,
    Migrate,
    Replicate,
    ServerJoinEvent,
    ServerRecoveryEvent,
    Simulation,
    Suicide,
)
from repro.sim.events import ServerFailureEvent


def make_sim(policy="rfh", seed=5, **wl) -> Simulation:
    defaults = dict(queries_per_epoch_mean=120.0, num_partitions=16, zipf_exponent=0.9)
    defaults.update(wl)
    cfg = SimulationConfig(seed=seed, workload=WorkloadParameters(**defaults))
    return Simulation(cfg, policy=policy)


class _ScriptedPolicy:
    """Emits a fixed action list once, then nothing."""

    name = "scripted"

    def __init__(self, actions):
        self._actions = list(actions)

    def decide(self, obs):
        actions, self._actions = self._actions, []
        return actions


class TestConstruction:
    def test_world_is_bootstrapped(self):
        sim = make_sim()
        assert sim.cluster.num_servers == 100
        assert sim.replicas.total_replicas() == 16
        assert sim.rmin == 2

    def test_unknown_policy_rejected(self):
        cfg = SimulationConfig()
        with pytest.raises(SimulationError):
            Simulation(cfg, policy="nope")

    def test_policy_factory(self):
        cfg = SimulationConfig()
        captured = {}

        def factory(sim):
            captured["sim"] = sim
            return _ScriptedPolicy([])

        sim = Simulation(cfg, policy=factory)
        assert captured["sim"] is sim

    def test_policy_object_accepted(self):
        cfg = SimulationConfig()
        policy = _ScriptedPolicy([])
        sim = Simulation(cfg, policy=policy)
        assert sim.policy is policy


class TestEpochLoop:
    def test_run_records_all_series(self):
        sim = make_sim()
        metrics = sim.run(5)
        assert metrics.num_epochs == 5
        for name in metrics.STANDARD_SERIES:
            assert name in metrics, name
            assert len(metrics.series(name)) == 5

    def test_conservation_every_epoch(self):
        sim = make_sim()
        m = sim.run(20)
        served = m.array("served")
        unserved = m.array("unserved")
        queries = m.array("queries")
        assert np.allclose(served + unserved, queries)

    def test_step_returns_service_result(self):
        sim = make_sim()
        result = sim.step()
        assert result.query_count == int(sim.metrics.array("queries")[0])

    def test_run_requires_positive_epochs(self):
        with pytest.raises(SimulationError):
            make_sim().run(0)

    def test_determinism_end_to_end(self):
        a, b = make_sim(seed=77), make_sim(seed=77)
        ma, mb = a.run(30), b.run(30)
        for name in ma.STANDARD_SERIES:
            assert list(ma.array(name)) == list(mb.array(name)), name

    def test_different_seeds_differ(self):
        ma = make_sim(seed=1).run(20)
        mb = make_sim(seed=2).run(20)
        assert list(ma.array("served")) != list(mb.array("served"))


class TestActionApplication:
    def test_replicate_applied_with_cost(self):
        sim = make_sim()
        holder = sim.replicas.holder(0)
        target = (holder + 50) % 100
        sim.policy = _ScriptedPolicy([Replicate(0, holder, target)])
        sim.step()
        assert sim.replicas.count(0, target) == 1
        assert sim.metrics.array("replication_count")[0] == 1
        assert sim.metrics.array("replication_cost")[0] > 0

    def test_same_dc_replication_is_cheap_but_not_free(self):
        sim = make_sim()
        holder = sim.replicas.holder(0)
        dc = sim.cluster.dc_of(holder)
        neighbour = next(
            s.sid for s in sim.cluster.alive_in_dc(dc) if s.sid != holder
        )
        sim.policy = _ScriptedPolicy([Replicate(0, holder, neighbour)])
        sim.step()
        cost = sim.metrics.array("replication_cost")[0]
        assert 0 < cost < 0.001  # intra-DC kilometre

    def test_migrate_applied(self):
        sim = make_sim()
        holder = sim.replicas.holder(0)
        a, b = (holder + 11) % 100, (holder + 57) % 100
        sim.policy = _ScriptedPolicy([Replicate(0, holder, a)])
        sim.step()
        sim.policy = _ScriptedPolicy([Migrate(0, a, b)])
        sim.step()
        assert sim.replicas.count(0, a) == 0
        assert sim.replicas.count(0, b) == 1
        assert sim.metrics.array("migration_cost")[1] > 0

    def test_suicide_applied(self):
        sim = make_sim()
        holder = sim.replicas.holder(0)
        a = (holder + 11) % 100
        sim.policy = _ScriptedPolicy([Replicate(0, holder, a)])
        sim.step()
        sim.policy = _ScriptedPolicy([Suicide(0, a)])
        sim.step()
        assert sim.replicas.count(0, a) == 0
        assert sim.metrics.array("suicide_count")[1] == 1

    def test_suicide_of_last_copy_skipped(self):
        sim = make_sim()
        holder = sim.replicas.holder(0)
        sim.policy = _ScriptedPolicy([Suicide(0, holder)])
        sim.step()
        assert sim.replicas.replica_count(0) == 1
        assert sim.metrics.array("skipped_actions")[0] == 1

    def test_replicate_from_copyless_source_raises(self):
        sim = make_sim()
        holder = sim.replicas.holder(0)
        wrong_source = (holder + 1) % 100
        sim.policy = _ScriptedPolicy([Replicate(0, wrong_source, (holder + 2) % 100)])
        with pytest.raises(ActionError):
            sim.step()

    def test_migrate_to_self_raises(self):
        sim = make_sim()
        holder = sim.replicas.holder(0)
        sim.policy = _ScriptedPolicy([Migrate(0, holder, holder)])
        with pytest.raises(ActionError):
            sim.step()

    def test_storage_gate_race_is_skipped_not_fatal(self):
        sim = make_sim()
        # This test fills storage behind the replica map's back to force
        # the gate shut, which (by design) breaks storage accounting.
        sim.invariants = None
        holder = sim.replicas.holder(0)
        target = (holder + 50) % 100
        server = sim.cluster.server(target)
        server.store(0.71 * server.storage_capacity_mb)
        sim.policy = _ScriptedPolicy([Replicate(0, holder, target)])
        sim.step()
        assert sim.replicas.count(0, target) == 0
        assert sim.metrics.array("skipped_actions")[0] == 1


class TestEvents:
    def test_mass_failure_drops_servers_and_replicas(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=2, count=30))
        m = sim.run(4)
        alive = m.array("alive_servers")
        assert alive[1] == 100 and alive[2] == 70

    def test_specific_failure_event(self):
        sim = make_sim()
        sim.schedule_event(ServerFailureEvent(epoch=1, sids=(0, 1, 2)))
        sim.run(2)
        assert not sim.cluster.server(0).alive

    def test_recovery_event_restores_all(self):
        sim = make_sim()
        sim.schedule_event(MassFailureEvent(epoch=1, count=20))
        sim.schedule_event(ServerRecoveryEvent(epoch=3))
        m = sim.run(5)
        alive = m.array("alive_servers")
        assert alive[1] == 80 and alive[3] == 100

    def test_join_event_grows_cluster(self):
        sim = make_sim()
        sim.schedule_event(ServerJoinEvent(epoch=1, dc=4, count=3))
        m = sim.run(3)
        assert m.array("alive_servers")[1] == 103
        assert sim.cluster.num_servers == 103
        assert sim.ring.members == tuple(range(103))

    def test_lost_partitions_are_restored(self):
        """Killing every holder of some partition forces a cold-archive
        restore, surfaced via the lost_partitions series."""
        sim = make_sim()
        sim.policy = _ScriptedPolicy([])  # no replication interference
        holders = tuple(sid for sid, _ in sim.replicas.servers_with(0))
        sim.schedule_event(ServerFailureEvent(epoch=1, sids=holders))
        m = sim.run(3)
        assert sim.replicas.has_holder(0)
        assert m.array("lost_partitions").sum() >= 1

    def test_past_event_rejected(self):
        sim = make_sim()
        sim.run(3)
        with pytest.raises(SimulationError):
            sim.schedule_event(MassFailureEvent(epoch=1, count=1))


class TestBandwidthBudget:
    def test_replication_bandwidth_limits_actions(self):
        """A source can only push bandwidth/size replications per epoch."""
        # 20 MB partitions against a 300 MB/epoch budget -> 15 transfers.
        sim = make_sim(partition_size_mb=20.0)
        holder = sim.replicas.holder(0)
        budget = int(
            sim.config.cluster.replication_bandwidth_mb
            / sim.config.workload.partition_size_mb
        )
        assert budget == 15
        targets = [sid for sid in range(100) if sid != holder][: budget + 10]
        sim.policy = _ScriptedPolicy([Replicate(0, holder, t) for t in targets])
        sim.step()
        assert sim.metrics.array("replication_count")[0] == budget
        assert sim.metrics.array("skipped_actions")[0] == 10

    def test_migration_bandwidth_is_per_source_and_separate(self):
        sim = make_sim(partition_size_mb=60.0)
        holder = sim.replicas.holder(0)
        a = (holder + 7) % 100
        # Two copies on server a (multiplicity is legal).
        sim.policy = _ScriptedPolicy([Replicate(0, holder, a), Replicate(0, holder, a)])
        sim.step()
        assert sim.replicas.count(0, a) == 2
        # Migration budget is 100 MB/epoch per source: one 60 MB move
        # from `a` fits, the second is skipped.
        b, c = (holder + 21) % 100, (holder + 33) % 100
        sim.policy = _ScriptedPolicy([Migrate(0, a, b), Migrate(0, a, c)])
        sim.step()
        assert sim.metrics.array("migration_count")[1] == 1
        assert sim.metrics.array("skipped_actions")[1] == 1
