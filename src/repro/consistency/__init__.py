"""Replica-consistency tracking (the paper's stated future work).

Section V: "As a future work, we will further study the effectiveness
of RFH in real business cases and plan to focus on the research of
consistency maintenance."  The evaluation itself treats consistency as
out of scope ("maintaining data consistency is not the focus of this
work"), so nothing here changes any reproduced figure — the tracker is
an *optional* engine extension that measures what a placement algorithm
does to update propagation:

* how stale replicas get under write load (version lag),
* what fraction of reads hit stale replicas,
* how much propagation traffic keeping them fresh costs.

The interesting systems question it answers: RFH's suicide/migration
churn creates and destroys replicas — does that help consistency (fresh
copies are created synced) or hurt it (propagation work is wasted on
copies that die)?  See ``examples/consistency_study.py``.
"""

from .tracker import ConsistencyConfig, ConsistencySummary, ConsistencyTracker

__all__ = ["ConsistencyConfig", "ConsistencySummary", "ConsistencyTracker"]
