"""Version-vector consistency tracking over the replica map.

Model
-----
Each partition carries an integer *version*, bumped once per write.
Every replica records the version it last synchronised to.  Writes land
at the primary holder (it is always current); propagation is lazy
anti-entropy: once per epoch the holder pushes the latest version to up
to ``fanout`` of its stalest replicas (``fanout=None`` = eager, all
replicas every epoch), paying the Eq. 1 transfer cost per push.

Write arrivals are tied to read demand: each epoch a partition receives
``Binomial(queries_i, write_ratio)`` writes, so hot partitions are
write-hot too — the classic correlated read/write skew.

Replica lifecycle needs no engine hooks: :meth:`ConsistencyTracker.observe`
reconciles against the replica map each epoch.  Replicas that appear are
*fresh copies* of the current state (a replication/migration transfers
current bytes); replicas that disappear are forgotten.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.replicas import ReplicaMap
from ..errors import ConfigurationError
from ..metrics.cost import replication_cost
from ..net.coordinates import INTRA_DATACENTER_KM
from ..net.routing import Router

__all__ = ["ConsistencyConfig", "ConsistencySummary", "ConsistencyTracker"]


@dataclass(frozen=True)
class ConsistencyConfig:
    """Knobs of the consistency model.

    Attributes
    ----------
    write_ratio:
        Probability that a query has an accompanying write (writes are
        drawn per-partition as ``Binomial(queries, write_ratio)``).
    fanout:
        Replicas the holder refreshes per partition per epoch;
        ``None`` means eager propagation (every stale replica, every
        epoch).
    """

    write_ratio: float = 0.1
    fanout: int | None = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError(
                f"write_ratio must be in [0, 1], got {self.write_ratio}"
            )
        if self.fanout is not None and self.fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1 or None, got {self.fanout}")


@dataclass(frozen=True)
class ConsistencySummary:
    """One epoch's consistency roll-up."""

    #: Writes applied this epoch (all partitions).
    writes: float
    #: Version-refresh transfers pushed this epoch.
    propagation_transfers: float
    #: Eq. 1 cost of those transfers.
    propagation_cost: float
    #: Mean version lag over all non-holder replicas (0 = all current).
    mean_staleness: float
    #: Fraction of replicas that are behind the partition version.
    stale_replica_fraction: float
    #: Fraction of served reads answered by a stale replica.
    stale_read_fraction: float


class ConsistencyTracker:
    """Tracks versions, propagates updates, and scores staleness."""

    def __init__(
        self,
        config: ConsistencyConfig,
        rng: np.random.Generator,
        partition_size_mb: float,
        failure_rate: float,
        replication_bandwidth_mb: float,
    ) -> None:
        self._config = config
        self._rng = rng
        self._size_mb = partition_size_mb
        self._failure_rate = failure_rate
        self._bandwidth = replication_bandwidth_mb
        self._version: dict[int, int] = {}
        # (partition, sid) -> version last synced.
        self._replica_version: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    @property
    def config(self) -> ConsistencyConfig:
        return self._config

    def version(self, partition: int) -> int:
        """Current committed version of a partition."""
        return self._version.get(partition, 0)

    def replica_version(self, partition: int, sid: int) -> int | None:
        """Version a replica last synced, or None if untracked."""
        return self._replica_version.get((partition, sid))

    # ------------------------------------------------------------------
    def observe(
        self,
        queries_per_partition: np.ndarray,
        served_server: np.ndarray,
        replicas: ReplicaMap,
        cluster: Cluster,
        router: Router,
    ) -> ConsistencySummary:
        """Advance the consistency model one epoch.

        Order of operations matters and mirrors a real epoch: membership
        reconciliation (copies made this epoch are fresh), then write
        arrivals, then one round of anti-entropy, then scoring.
        """
        self._reconcile(replicas)
        writes = self._apply_writes(queries_per_partition)
        transfers, cost = self._propagate(replicas, cluster, router)
        return self._score(writes, transfers, cost, served_server, replicas)

    # ------------------------------------------------------------------
    def _reconcile(self, replicas: ReplicaMap) -> None:
        live: set[tuple[int, int]] = set()
        for partition in range(replicas.num_partitions):
            if not replicas.has_holder(partition):
                continue
            current = self._version.setdefault(partition, 0)
            for sid, _count in replicas.servers_with(partition):
                key = (partition, sid)
                live.add(key)
                # A newly-seen copy was just transferred: it is current.
                self._replica_version.setdefault(key, current)
        for key in [k for k in self._replica_version if k not in live]:
            del self._replica_version[key]

    def _apply_writes(self, queries_per_partition: np.ndarray) -> float:
        ratio = self._config.write_ratio
        if ratio <= 0.0:
            return 0.0
        total = 0
        for partition, q in enumerate(queries_per_partition):
            if q <= 0:
                continue
            w = int(self._rng.binomial(int(q), ratio))
            if w > 0:
                self._version[partition] = self._version.get(partition, 0) + w
                total += w
        return float(total)

    def _propagate(
        self, replicas: ReplicaMap, cluster: Cluster, router: Router
    ) -> tuple[float, float]:
        fanout = self._config.fanout
        transfers = 0.0
        cost = 0.0
        for partition in range(replicas.num_partitions):
            if not replicas.has_holder(partition):
                continue
            current = self._version.get(partition, 0)
            holder = replicas.holder(partition)
            self._replica_version[(partition, holder)] = current  # holder is current
            stale = [
                (sid, self._replica_version[(partition, sid)])
                for sid, _ in replicas.servers_with(partition)
                if sid != holder and self._replica_version[(partition, sid)] < current
            ]
            if not stale:
                continue
            # Stalest first, sid tie-break: the holder triages refreshes.
            stale.sort(key=lambda item: (item[1], item[0]))
            budget = len(stale) if fanout is None else min(fanout, len(stale))
            holder_dc = cluster.dc_of(holder)
            for sid, _old in stale[:budget]:
                self._replica_version[(partition, sid)] = current
                dst_dc = cluster.dc_of(sid)
                distance = (
                    INTRA_DATACENTER_KM
                    if dst_dc == holder_dc
                    else router.distance_km(holder_dc, dst_dc)
                )
                transfers += 1.0
                cost += replication_cost(
                    distance, self._failure_rate, self._size_mb, self._bandwidth
                )
        return transfers, cost

    def _score(
        self,
        writes: float,
        transfers: float,
        cost: float,
        served_server: np.ndarray,
        replicas: ReplicaMap,
    ) -> ConsistencySummary:
        lags: list[int] = []
        stale_reads = 0.0
        total_reads = 0.0
        for partition in range(replicas.num_partitions):
            if not replicas.has_holder(partition):
                continue
            current = self._version.get(partition, 0)
            holder = replicas.holder(partition)
            for sid, _count in replicas.servers_with(partition):
                if sid == holder:
                    continue
                lag = current - self._replica_version[(partition, sid)]
                lags.append(lag)
                reads = float(served_server[partition, sid])
                total_reads += reads
                if lag > 0:
                    stale_reads += reads
            total_reads += float(served_server[partition, holder])
        return ConsistencySummary(
            writes=writes,
            propagation_transfers=transfers,
            propagation_cost=cost,
            mean_staleness=float(np.mean(lags)) if lags else 0.0,
            stale_replica_fraction=(
                sum(1 for lag in lags if lag > 0) / len(lags) if lags else 0.0
            ),
            stale_read_fraction=(stale_reads / total_reads if total_reads > 0 else 0.0),
        )
