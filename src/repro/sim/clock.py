"""Epoch clock.

The paper's simulation advances in fixed epochs of 10 seconds (Table I).
:class:`EpochClock` is a tiny counter that also converts between epochs
and simulated seconds — the Erlang-B blocking model (Eq. 18) needs
arrival rates *per second* while the rest of the simulation works in
queries *per epoch*.
"""

from __future__ import annotations

from .. import config as _config

__all__ = ["EpochClock"]


class EpochClock:
    """Monotonic epoch counter with second conversion.

    Parameters
    ----------
    epoch_seconds:
        Duration of one epoch in simulated seconds (default: Table I's
        10 s).
    """

    def __init__(self, epoch_seconds: float = _config.DEFAULT_EPOCH_SECONDS) -> None:
        if epoch_seconds <= 0:
            raise ValueError(f"epoch_seconds must be > 0, got {epoch_seconds}")
        self._epoch_seconds = float(epoch_seconds)
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """The current epoch index (0-based)."""
        return self._epoch

    @property
    def epoch_seconds(self) -> float:
        """Seconds per epoch."""
        return self._epoch_seconds

    @property
    def seconds(self) -> float:
        """Simulated seconds elapsed at the *start* of the current epoch."""
        return self._epoch * self._epoch_seconds

    def advance(self, epochs: int = 1) -> int:
        """Advance the clock by ``epochs`` and return the new epoch index."""
        if epochs < 0:
            raise ValueError(f"cannot advance by a negative number of epochs: {epochs}")
        self._epoch += epochs
        return self._epoch

    def reset(self) -> None:
        """Rewind to epoch 0 (used when replaying a recorded trace)."""
        self._epoch = 0

    def rate_per_second(self, per_epoch: float) -> float:
        """Convert a per-epoch count into a per-second rate."""
        return per_epoch / self._epoch_seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EpochClock(epoch={self._epoch}, epoch_seconds={self._epoch_seconds})"
