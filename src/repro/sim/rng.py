"""Deterministic tree of named random-number streams.

Reproducibility rule (DESIGN.md Section 5): a single root seed must fully
determine every random draw in a simulation, and independent components
(workload, capacity draws, failure injection, policy tie-breaking) must
consume *independent* streams so that adding a draw in one component never
perturbs another.

:class:`RngTree` implements this with :class:`numpy.random.SeedSequence`:
each named child stream is derived from ``(root_seed, sha256(name))`` so
the mapping is stable across processes and Python versions (no reliance on
``hash()`` randomisation).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngTree", "stable_hash32"]


def stable_hash32(name: str) -> int:
    """Return a stable 32-bit integer digest of ``name``.

    Uses SHA-256 (not Python's ``hash``, which is salted per process) so
    that the same name always maps to the same stream key.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class RngTree:
    """A root seed that hands out independent named generator streams.

    Examples
    --------
    >>> tree = RngTree(42)
    >>> a = tree.stream("workload")
    >>> b = tree.stream("failures")
    >>> a is not b
    True
    >>> tree2 = RngTree(42)
    >>> float(a.random()) == float(tree2.stream("workload").random())
    True
    """

    def __init__(self, root_seed: int) -> None:
        if root_seed < 0:
            raise ValueError(f"root seed must be non-negative, got {root_seed}")
        self._root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this tree was created with."""
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so a component that stores the stream and one that
        re-fetches it by name see an identical sequence.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self._root_seed, stable_hash32(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` positioned at its origin.

        Unlike :meth:`stream` this does not cache: every call restarts the
        sequence.  Used by trace replay to re-run a recorded workload from
        the beginning.
        """
        seq = np.random.SeedSequence([self._root_seed, stable_hash32(name)])
        return np.random.default_rng(seq)

    def stream_states(self) -> dict[str, dict]:
        """Bit-generator state of every stream created so far, by name.

        Sorted by stream name so the mapping itself is deterministic.
        The states are the raw ``bit_generator.state`` dicts — two trees
        whose streams have consumed identical draw sequences compare
        equal, which is what the determinism sanitizer fingerprints.
        """
        return {
            name: self._streams[name].bit_generator.state
            for name in sorted(self._streams)
        }

    def child(self, name: str) -> "RngTree":
        """Derive a whole sub-tree, e.g. one per experiment repetition."""
        return RngTree((self._root_seed * 0x9E3779B1 + stable_hash32(name)) % 2**31)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngTree(root_seed={self._root_seed}, streams={sorted(self._streams)})"
