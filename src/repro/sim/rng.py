"""Deterministic tree of named random-number streams.

Reproducibility rule (DESIGN.md Section 5): a single root seed must fully
determine every random draw in a simulation, and independent components
(workload, capacity draws, failure injection, policy tie-breaking) must
consume *independent* streams so that adding a draw in one component never
perturbs another.

:class:`RngTree` implements this with :class:`numpy.random.SeedSequence`:
each named child stream is derived from ``(root_seed, sha256(name))`` so
the mapping is stable across processes and Python versions (no reliance on
``hash()`` randomisation).
"""

from __future__ import annotations

import hashlib
from typing import Any, cast

import numpy as np

__all__ = ["RngTree", "stable_hash32"]


def stable_hash32(name: str) -> int:
    """Return a stable 32-bit integer digest of ``name``.

    Uses SHA-256 (not Python's ``hash``, which is salted per process) so
    that the same name always maps to the same stream key.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class _CountingStream:
    """Forwarding proxy that counts method invocations on a stream.

    The perf work-counter model (``repro.obs.perf``) wants "RNG draws
    per stream" without touching any draw site: the proxy forwards
    every attribute to the real generator and bumps a shared counter
    once per *method call* (one vectorised ``poisson(size=N)`` call is
    one unit of work — the cost model counts kernel invocations, not
    variates).  The real generator stays in the tree's ``_streams``
    cache, so ``stream_states()`` and the determinism sanitizer are
    unaffected.
    """

    __slots__ = ("_gen", "_counts", "_name")

    def __init__(
        self, gen: np.random.Generator, counts: dict[str, int], name: str
    ) -> None:
        self._gen = gen
        self._counts = counts
        self._name = name

    @property
    def bit_generator(self) -> np.random.BitGenerator:
        return self._gen.bit_generator

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._gen, attr)
        if not callable(value):
            return value
        counts, name = self._counts, self._name

        def counted(*args: Any, **kwargs: Any) -> Any:
            counts[name] = counts.get(name, 0) + 1
            return value(*args, **kwargs)

        return counted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_CountingStream({self._name!r}, {self._gen!r})"


class RngTree:
    """A root seed that hands out independent named generator streams.

    Examples
    --------
    >>> tree = RngTree(42)
    >>> a = tree.stream("workload")
    >>> b = tree.stream("failures")
    >>> a is not b
    True
    >>> tree2 = RngTree(42)
    >>> float(a.random()) == float(tree2.stream("workload").random())
    True
    """

    def __init__(self, root_seed: int) -> None:
        if root_seed < 0:
            raise ValueError(f"root seed must be non-negative, got {root_seed}")
        self._root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._draw_counts: dict[str, int] | None = None
        self._proxies: dict[str, _CountingStream] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this tree was created with."""
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so a component that stores the stream and one that
        re-fetches it by name see an identical sequence.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self._root_seed, stable_hash32(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        if self._draw_counts is None:
            return gen
        proxy = self._proxies.get(name)
        if proxy is None:
            proxy = self._proxies[name] = _CountingStream(
                gen, self._draw_counts, name
            )
        return cast(np.random.Generator, proxy)

    def attach_draw_counter(self, counts: dict[str, int]) -> None:
        """Count stream method invocations into ``counts`` (by name).

        Must be attached before components cache their streams: from
        then on :meth:`stream` hands out counting proxies (the cached
        real generators are untouched, so fingerprints and replay stay
        bit-identical with or without counting).
        """
        if self._streams:
            raise ValueError(
                "attach_draw_counter must be called before any stream is "
                f"created (streams exist: {sorted(self._streams)})"
            )
        self._draw_counts = counts

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` positioned at its origin.

        Unlike :meth:`stream` this does not cache: every call restarts the
        sequence.  Used by trace replay to re-run a recorded workload from
        the beginning.
        """
        seq = np.random.SeedSequence([self._root_seed, stable_hash32(name)])
        return np.random.default_rng(seq)

    def stream_states(self) -> dict[str, dict]:
        """Bit-generator state of every stream created so far, by name.

        Sorted by stream name so the mapping itself is deterministic.
        The states are the raw ``bit_generator.state`` dicts — two trees
        whose streams have consumed identical draw sequences compare
        equal, which is what the determinism sanitizer fingerprints.
        """
        return {
            name: self._streams[name].bit_generator.state
            for name in sorted(self._streams)
        }

    def child(self, name: str) -> "RngTree":
        """Derive a whole sub-tree, e.g. one per experiment repetition."""
        return RngTree((self._root_seed * 0x9E3779B1 + stable_hash32(name)) % 2**31)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngTree(root_seed={self._root_seed}, streams={sorted(self._streams)})"
