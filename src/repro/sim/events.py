"""Scheduled membership events.

Fig. 10's experiment ("30 servers are randomly removed at epoch 290")
and the join/recovery goals of Section III-G are driven by events
scheduled on an :class:`EventQueue` and applied by the engine at epoch
boundaries, *before* that epoch's queries are generated.

Events carry data only; the engine interprets them.  This keeps the
queue serialisable and the engine the single place where cluster, ring
and replica map are mutated together.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = [
    "MassFailureEvent",
    "ServerFailureEvent",
    "ServerRecoveryEvent",
    "ServerJoinEvent",
    "ChaosFailureEvent",
    "ChaosRecoveryEvent",
    "LinkFailureEvent",
    "LinkRecoveryEvent",
    "EventQueue",
]


@dataclass(frozen=True)
class MassFailureEvent:
    """Fail ``count`` random alive servers (victims drawn from the
    failure RNG stream at apply time, so the schedule stays declarative)."""

    epoch: int
    count: int


@dataclass(frozen=True)
class ServerFailureEvent:
    """Fail specific servers by id."""

    epoch: int
    sids: tuple[int, ...]


@dataclass(frozen=True)
class ServerRecoveryEvent:
    """Recover specific previously-failed servers (empty disks).

    With ``sids=()`` the engine recovers *all* currently-failed servers.
    """

    epoch: int
    sids: tuple[int, ...] = ()


@dataclass(frozen=True)
class ServerJoinEvent:
    """Add ``count`` brand-new servers to datacenter ``dc``."""

    epoch: int
    dc: int
    count: int = 1


@dataclass(frozen=True)
class ChaosFailureEvent:
    """Fail the named servers, *skipping* any that are already down.

    Compiled chaos schedules (rolling outages, flapping, correlated
    domain failures) may legitimately overlap — two injections can claim
    the same server — so unlike :class:`ServerFailureEvent` this variant
    is idempotent per victim.  ``cause`` tags traces (e.g.
    ``"rack-outage"``, ``"flap-down"``).
    """

    epoch: int
    sids: tuple[int, ...]
    cause: str = "chaos"


@dataclass(frozen=True)
class ChaosRecoveryEvent:
    """Recover the named servers, *skipping* any that are already up."""

    epoch: int
    sids: tuple[int, ...]
    cause: str = "chaos"


@dataclass(frozen=True)
class LinkFailureEvent:
    """Take WAN links down (``(u, v)`` datacenter-index pairs).

    The engine recomputes routing over the surviving subgraph; requester
    → holder pairs with no remaining path go unserved, and replication
    or migration across the cut is refused.  Links already down are
    skipped.
    """

    epoch: int
    links: tuple[tuple[int, int], ...]
    cause: str = "wan-partition"


@dataclass(frozen=True)
class LinkRecoveryEvent:
    """Bring previously-failed WAN links back up (already-up links are
    skipped)."""

    epoch: int
    links: tuple[tuple[int, int], ...]
    cause: str = "wan-heal"


MembershipEvent = (
    MassFailureEvent
    | ServerFailureEvent
    | ServerRecoveryEvent
    | ServerJoinEvent
    | ChaosFailureEvent
    | ChaosRecoveryEvent
    | LinkFailureEvent
    | LinkRecoveryEvent
)


@dataclass(order=True)
class _Entry:
    epoch: int
    seq: int
    event: MembershipEvent = field(compare=False)


class EventQueue:
    """A stable priority queue of membership events keyed by epoch.

    Events scheduled for the same epoch are applied in scheduling order
    (FIFO), which keeps multi-event scenarios deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._seq = 0

    def schedule(self, event: MembershipEvent) -> None:
        """Add an event; its ``epoch`` must be non-negative."""
        if event.epoch < 0:
            raise SimulationError(f"event epoch must be >= 0, got {event.epoch}")
        heapq.heappush(self._heap, _Entry(event.epoch, self._seq, event))
        self._seq += 1

    def pop_due(self, epoch: int) -> list[MembershipEvent]:
        """Remove and return all events scheduled at or before ``epoch``."""
        due: list[MembershipEvent] = []
        while self._heap and self._heap[0].epoch <= epoch:
            due.append(heapq.heappop(self._heap).event)
        return due

    def __len__(self) -> int:
        return len(self._heap)

    def peek_epoch(self) -> int | None:
        """Epoch of the earliest pending event, or None when empty."""
        return self._heap[0].epoch if self._heap else None
