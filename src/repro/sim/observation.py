"""The immutable per-epoch snapshot handed to replication policies.

Policies are *pure observers* (DESIGN.md Section 5): they see one
:class:`EpochObservation` per epoch and return actions; the engine owns
all mutation.  The observation bundles everything any of the four
algorithms consults:

* the raw query matrix ``q_ijt`` (Eq. 9 inputs),
* the per-(partition, datacenter) traffic ``tr_ikt`` (Eq. 8 outputs),
* per-(partition, server) served counts (utilization, Eq. 20 inputs),
* per-server blocking probabilities (Eq. 18),
* replica layout, cluster and router references (read-only by contract),
* the availability floor ``r_min`` (Eq. 14) and the RFH parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.replicas import ReplicaMap
from ..config import RFHParameters
from ..net.routing import Router
from ..workload.query import QueryBatch

__all__ = ["EpochObservation"]


@dataclass(frozen=True)
class EpochObservation:
    """Read-only world state at the end of one epoch's service phase.

    Attributes
    ----------
    epoch:
        The epoch index just served.
    queries:
        The epoch's query matrix (``q_ijt``; partitions x datacenters).
    traffic_dc:
        ``(P, D)`` array: traffic of each datacenter for each partition
        this epoch (Eq. 8 — the flow *arriving* at the datacenter after
        upstream replicas absorbed their share; the serving site's own
        service is not subtracted).
    served_server:
        ``(P, S)`` array: queries of partition ``i`` served by server
        ``sid`` this epoch.  ``S`` is ``cluster.num_servers`` (dead
        servers' columns are zero).
    unserved:
        Length-``P`` array: queries that overflowed every replica
        *including* the holder (blocked this epoch).
    holder_traffic:
        Length-``P`` array: Eq. 12's ``tr_iit`` — the flow that reached
        the holder *server* itself after every other replica on the
        path (including co-located ones) absorbed its share.
    blocking_probability:
        Length-``S`` array: each server's Erlang-B blocking probability
        estimate (Eq. 18), 1.0 for dead servers.
    replicas:
        The replica layout.  **Read-only by contract** — policies must
        only call query methods.
    cluster:
        The physical deployment.  Read-only by contract.
    router:
        WAN shortest-path oracle (paths, distances, hop counts).
    rmin:
        Minimum replica count satisfying the availability floor
        (Eq. 14) under the configured failure rate.
    params:
        The RFH control constants (thresholds are shared with baselines
        so all algorithms use one overload definition).
    partition_size_mb:
        Size of one partition copy (for storage-gate checks).
    """

    epoch: int
    queries: QueryBatch
    traffic_dc: np.ndarray
    served_server: np.ndarray
    unserved: np.ndarray
    holder_traffic: np.ndarray
    blocking_probability: np.ndarray
    replicas: ReplicaMap
    cluster: Cluster
    router: Router
    rmin: int
    params: RFHParameters
    partition_size_mb: float

    # ------------------------------------------------------------------
    # Convenience queries shared by several policies
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return self.queries.num_partitions

    @property
    def num_datacenters(self) -> int:
        return self.queries.num_origins

    def system_average_query(self) -> np.ndarray:
        """Eq. 9's per-partition average query over requesters (raw)."""
        return self.queries.system_average_query()

    def holder_dc(self, partition: int) -> int:
        """Datacenter of the partition's primary holder."""
        return self.cluster.dc_of(self.replicas.holder(partition))

    def partition_traffic_mean(self, partition: int) -> float:
        """Eq. 17: average traffic of all datacenters for one partition."""
        return float(self.traffic_dc[partition].mean())
