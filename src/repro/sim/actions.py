"""The action vocabulary replication policies emit.

The paper's algorithms differ only in *which* of three primitives they
invoke, and where (Section II-E decision tree): **replicate** a partition
onto a server, **migrate** a copy between servers, or **suicide** a copy
("to avoid maintenance overhead and resource waste ... it will commit
suicide").  Policies return a list of these dataclasses; the engine
validates and applies them, charging bandwidth and cost.

Keeping the vocabulary closed makes the four algorithms directly
comparable: the engine treats an RFH action exactly like a baseline's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["Replicate", "Migrate", "Suicide", "Action"]


@dataclass(frozen=True)
class Replicate:
    """Create one new copy of ``partition`` on ``target_sid``.

    ``source_sid`` is where the bytes come from (normally the primary
    holder); it pays the replication bandwidth of Table I and the Eq. 1
    cost ``c = d * f * s / b``.
    """

    partition: int
    source_sid: int
    target_sid: int
    #: Free-form tag for metrics/debugging ("availability", "traffic-hub",
    #: "overload", ...); never interpreted by the engine.
    reason: str = ""


@dataclass(frozen=True)
class Migrate:
    """Move one copy of ``partition`` from ``source_sid`` to ``target_sid``.

    Pays migration bandwidth (Table I: 100 MB/epoch) and the Eq. 1 cost
    with the migration bandwidth in the denominator.
    """

    partition: int
    source_sid: int
    target_sid: int
    reason: str = ""


@dataclass(frozen=True)
class Suicide:
    """Remove one copy of ``partition`` from ``sid`` (resource reclaim)."""

    partition: int
    sid: int
    reason: str = ""


Action = Union[Replicate, Migrate, Suicide]
