"""Discrete-event simulation substrate.

The paper's evaluation is epoch-driven (Table I: epoch = 10 s).  This
package provides the pieces an epoch simulation needs:

* :mod:`repro.sim.rng` — a deterministic tree of named random streams;
* :mod:`repro.sim.clock` — the epoch clock;
* :mod:`repro.sim.events` — a scheduled event queue (failures, joins,
  recoveries);
* :mod:`repro.sim.actions` — the action vocabulary replication policies
  emit and the engine applies;
* :mod:`repro.sim.observation` — the immutable per-epoch snapshot handed
  to policies;
* :mod:`repro.sim.engine` — the engine tying workload, routing, policy
  and metrics together.
"""

from .actions import Action, Migrate, Replicate, Suicide
from .clock import EpochClock
from .engine import Simulation
from .events import (
    ChaosFailureEvent,
    ChaosRecoveryEvent,
    EventQueue,
    LinkFailureEvent,
    LinkRecoveryEvent,
    MassFailureEvent,
    ServerFailureEvent,
    ServerJoinEvent,
    ServerRecoveryEvent,
)
from .observation import EpochObservation
from .rng import RngTree

__all__ = [
    "Action",
    "Replicate",
    "Migrate",
    "Suicide",
    "EpochClock",
    "EventQueue",
    "MassFailureEvent",
    "ServerFailureEvent",
    "ServerRecoveryEvent",
    "ServerJoinEvent",
    "ChaosFailureEvent",
    "ChaosRecoveryEvent",
    "LinkFailureEvent",
    "LinkRecoveryEvent",
    "EpochObservation",
    "RngTree",
    "Simulation",
]
