"""The epoch-driven simulation engine.

One :class:`Simulation` owns the full world — WAN, cluster, ring,
replica map, workload, policy, metrics — and advances it epoch by epoch
(DESIGN.md Section 3):

1. apply due membership events (failures / recoveries / joins) and
   restore partitions that lost every copy;
2. generate the epoch's query matrix;
3. route and serve it through the current replica layout
   (:func:`repro.core.traffic.serve_epoch` — Eqs. 2–8);
4. hand the policy an immutable observation, collect its actions;
5. apply the actions under storage gates, bandwidth budgets and Eq. 1
   cost accounting;
6. record every metric series of the paper's figures.

The engine is policy-agnostic: ``policy="rfh" | "random" | "owner" |
"request"`` builds the corresponding algorithm, and any object
satisfying :class:`~repro.sim.policy.ReplicationPolicy` is accepted
directly, which is how ablation experiments plug in variants.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.failure import FailureInjector

if TYPE_CHECKING:  # imported lazily at runtime (chaos imports sim.events)
    from ..chaos.controller import ChaosController
    from ..chaos.invariants import InvariantChecker
    from ..chaos.schedule import ChaosSchedule
    from ..consistency.tracker import ConsistencySummary
    from ..metrics.availability_metric import AvailabilitySummary
    from ..obs.perf.counters import WorkCounters
    from ..obs.provenance.recorder import ProvenanceRecorder
    from ..obs.timeseries import TimeseriesRecorder
    from ..staticcheck.sanitizer import DeterminismSanitizer
    from ..workload.query import QueryBatch
from ..consistency.tracker import ConsistencyConfig, ConsistencyTracker
from ..cluster.replicas import ReplicaMap
from ..config import SimulationConfig
from ..core.availability import min_replicas_for_availability
from ..core.blocking import server_blocking_probabilities
from ..core.traffic import ServiceResult, serve_epoch
from ..errors import ActionError, SimulationError
from ..geo.hierarchy import GeoHierarchy, build_default_hierarchy
from ..metrics.availability_metric import availability_summary
from ..metrics.collector import MetricsCollector
from ..metrics.cost import migration_cost, replication_cost
from ..metrics.imbalance import replica_load_cv, server_load_imbalance
from ..metrics.latency import LatencyModel
from ..metrics.utilization import average_utilization
from ..net.builder import build_wan
from ..net.coordinates import INTRA_DATACENTER_KM
from ..net.graph import WanGraph
from ..net.routing import Router
from ..obs.profiler import NullProfiler, PhaseProfiler
from ..obs.registry import InstrumentRegistry
from ..obs.trace import NullTracer, TraceEvent, Tracer
from ..ring.hashring import HashRing
from ..ring.partition import PartitionMapper
from ..workload.generator import QueryGenerator
from ..workload.patterns import UniformPattern
from .actions import Action, Migrate, Replicate, Suicide
from .clock import EpochClock
from .events import (
    ChaosFailureEvent,
    ChaosRecoveryEvent,
    EventQueue,
    LinkFailureEvent,
    LinkRecoveryEvent,
    MassFailureEvent,
    MembershipEvent,
    ServerFailureEvent,
    ServerJoinEvent,
    ServerRecoveryEvent,
)
from .observation import EpochObservation
from .policy import ReplicationPolicy
from .reasons import (
    ALL_COPIES_LOST,
    BOOTSTRAP,
    JOIN,
    LATENCY_BOUND_EXCEEDED,
    MASS_FAILURE,
    RECOVERY,
    SERVER_FAILURE,
    SKIP_BANDWIDTH,
    SKIP_LAST_COPY,
    SKIP_NETWORK_PARTITION,
    SKIP_STORAGE_GATE,
)
from .rng import RngTree

__all__ = ["Simulation"]

#: Something with a ``generate(epoch) -> QueryBatch`` method (a live
#: :class:`QueryGenerator` or a recorded :class:`WorkloadTrace`).
WorkloadSource = object

PolicySpec = str | ReplicationPolicy | Callable[["Simulation"], ReplicationPolicy]


class Simulation:
    """A complete, reproducible simulation run.

    Parameters
    ----------
    config:
        Full parameter set (Table I defaults).
    policy:
        Algorithm name (``"rfh"``, ``"random"``, ``"owner"``,
        ``"request"``), a ready policy object, or a factory called with
        the simulation (for policies that need the mapper / RNG tree).
    workload:
        Optional workload source; defaults to a fresh Poisson generator
        over a :class:`UniformPattern` seeded from the config.  Pass a
        :class:`~repro.workload.trace.WorkloadTrace` to compare
        algorithms on identical queries.
    events:
        Membership events to schedule up-front.
    hierarchy / wan:
        Topology overrides (defaults: the paper's 10-site deployment).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; every membership
        event, restore, applied/skipped action and SLA violation emits
        one typed record.  Defaults to a :class:`NullTracer` whose cost
        is one attribute check per emission site.
    profiler:
        Optional :class:`~repro.obs.profiler.PhaseProfiler` timing the
        six phases of :meth:`step`.  Defaults to a no-op.
    instruments:
        Optional :class:`~repro.obs.registry.InstrumentRegistry`; when
        given, the engine maintains labelled counters
        (``actions_total{kind=..., reason=..., policy=...}``), gauges
        and the ``replica_lifetime_epochs`` histogram.
    chaos:
        Optional :class:`~repro.chaos.schedule.ChaosSchedule`; compiled
        against this simulation's cluster at construction (victims drawn
        from the seeded ``"chaos"`` stream) and scheduled on the event
        queue.  The compiled controller stays reachable as ``self.chaos``.
    invariants:
        Runtime conservation checking
        (:class:`~repro.chaos.invariants.InvariantChecker`), validated
        at the end of every epoch.  Pass a checker, ``True`` for a
        strict default checker, or ``False`` to disable.  The default
        ``None`` consults the ``REPRO_CHECK_INVARIANTS`` environment
        variable — the test suite sets it, so every test run is checked.
    timeseries:
        Optional :class:`~repro.obs.timeseries.TimeseriesRecorder`;
        once per epoch the engine feeds it the epoch's metric values,
        per-datacenter traffic, every instrument counter/gauge (when
        ``instruments`` is attached) and phase timings (when a real
        profiler is attached), plus membership/chaos event markers.
    sanitizer:
        Optional :class:`~repro.staticcheck.sanitizer.DeterminismSanitizer`;
        once per epoch (end of the record phase) the engine feeds it the
        replica map, cluster storage accounting, RNG stream positions
        and the epoch's metric values, building a fingerprint hash
        chain.  Two same-seed runs can then be diffed down to the first
        divergent epoch and component (``repro sanitize``).
    work:
        Optional :class:`~repro.obs.perf.counters.WorkCounters`; when
        attached, the engine and the kernels it drives count units of
        algorithmic work (partitions scanned, decisions evaluated,
        actions applied, ring lookups, graph hops, RNG draws per
        stream).  Per-epoch deltas are recorded into the timeseries as
        ``work/*`` columns.  Counters are deterministic: two same-seed
        runs produce identical values.
    """

    #: Engine tag stamped into experiment metadata and benchmark records
    #: (the columnar subclass overrides it).
    engine_name: str = "scalar"

    def __init__(
        self,
        config: SimulationConfig,
        policy: PolicySpec = "rfh",
        *,
        workload: WorkloadSource | None = None,
        events: Iterable[MembershipEvent] = (),
        hierarchy: GeoHierarchy | None = None,
        wan: WanGraph | None = None,
        latency: LatencyModel | None = None,
        consistency: ConsistencyConfig | None = None,
        tracer: Tracer | None = None,
        profiler: PhaseProfiler | None = None,
        instruments: InstrumentRegistry | None = None,
        chaos: ChaosSchedule | None = None,
        invariants: InvariantChecker | bool | None = None,
        timeseries: TimeseriesRecorder | None = None,
        sanitizer: DeterminismSanitizer | None = None,
        work: WorkCounters | None = None,
        provenance: ProvenanceRecorder | None = None,
    ) -> None:
        self.config = config
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        self.profiler = profiler if profiler is not None else NullProfiler()
        self.instruments = instruments
        self.timeseries = timeseries
        self.sanitizer = sanitizer
        #: Decision-provenance ledger (``repro.obs.provenance``); when
        #: attached, the policy's decision tree records every threshold
        #: predicate and the apply phase stamps each action's fate.
        self.provenance = provenance
        #: Hardware-independent work counters (``repro.obs.perf``); when
        #: attached, the hot paths bump cheap integer counters and the
        #: per-epoch deltas ride into the timeseries as ``work/*`` columns.
        self.work = work
        #: Response-time model used for the latency/SLA series (the
        #: intro's 300 ms bound by default).
        self.latency = latency if latency is not None else LatencyModel()
        self.rng_tree = RngTree(config.seed)
        if work is not None:
            # Must attach before any component caches its stream.
            self.rng_tree.attach_draw_counter(work.rng_draws)
        self.hierarchy = hierarchy if hierarchy is not None else build_default_hierarchy()
        self.wan = wan if wan is not None else build_wan(self.hierarchy)
        self.router = Router(self.wan)
        self.cluster = Cluster(
            self.hierarchy, config.cluster, self.rng_tree.stream("capacity")
        )
        self.ring = HashRing()
        for server in self.cluster.servers:
            self.ring.add_server(server.sid)
        self.mapper = PartitionMapper(config.workload.num_partitions, self.ring)
        self.replicas = ReplicaMap(
            self.cluster,
            config.workload.num_partitions,
            config.workload.partition_size_mb,
        )
        self.replicas.bootstrap(self.mapper.holders())
        self.injector = FailureInjector(self.cluster, self.rng_tree.stream("failures"))
        self.clock = EpochClock(config.epoch_seconds)
        self.metrics = MetricsCollector()
        self.rmin = min_replicas_for_availability(
            config.rfh.min_availability, config.rfh.failure_rate
        )
        self._events = EventQueue()
        for event in events:
            self._events.schedule(event)
        # Degraded-routing state for chaos WAN partitions: the physical
        # graph (self.wan) never changes; self.router reflects the
        # currently-up link set.
        self._base_router = self.router
        self._down_links: set[tuple[int, int]] = set()
        #: Compiled chaos controller, or None when no schedule was given.
        self.chaos: ChaosController | None = None
        if chaos is not None:
            from ..chaos.controller import ChaosController
            from ..chaos.domains import FaultDomainIndex

            self.chaos = ChaosController(
                chaos,
                FaultDomainIndex(self.cluster),
                self.hierarchy,
                self.wan,
                self.rng_tree.stream("chaos"),
            )
            for event in self.chaos.compiled_events():
                self._events.schedule(event)
        #: Runtime conservation checking (see class docstring).
        self.invariants: InvariantChecker | None = self._resolve_invariants(invariants)
        if workload is None:
            pattern = UniformPattern(
                config.workload.num_partitions,
                self.hierarchy.num_datacenters,
                config.workload.zipf_exponent,
            )
            workload = QueryGenerator(
                config.workload, pattern, self.rng_tree.stream("workload")
            )
        self.workload = workload
        # Smoothed per-server load feeding the Eq. 18 blocking estimates
        # (maintained by hand because the server count can grow on joins).
        self._smoothed_load = np.zeros(self.cluster.num_servers, dtype=np.float64)
        self._load_initialized = False
        self.policy = self._resolve_policy(policy)
        #: Policy tag stamped on every trace record and instrument label.
        self.policy_name: str = getattr(
            self.policy, "name", type(self.policy).__name__
        )
        # Perf instrumentation hand-off: policies that support it receive
        # the kernel-span profiler and work counters (duck-typed so the
        # ReplicationPolicy protocol stays unchanged).
        attach = getattr(self.policy, "attach_perf", None)
        if attach is not None and (
            work is not None or getattr(self.profiler, "supports_spans", False)
        ):
            attach(profiler=self.profiler, work=work)
        # Provenance hand-off (same duck-typed pattern): policies without
        # an instrumented decision tree still get ledger coverage through
        # the apply phase's fate notes (synthesized minimal records).
        if provenance is not None:
            attach_prov = getattr(self.policy, "attach_provenance", None)
            if attach_prov is not None:
                attach_prov(provenance)
        # Birth epochs of live copies, feeding the replica-lifetime
        # histogram; only maintained when instruments are attached.
        self._replica_birth: dict[tuple[int, int], int] = {}
        if self.instruments is not None:
            for partition in range(self.replicas.num_partitions):
                for sid, _count in self.replicas.servers_with(partition):
                    self._replica_birth[(partition, sid)] = 0
        # Bootstrap placements are engine-internal (no action produced
        # them), so lineage reconstruction from a trace alone needs them
        # emitted explicitly — one record per original copy.
        if self.tracer.enabled:
            for partition in range(self.replicas.num_partitions):
                for sid, _count in self.replicas.servers_with(partition):
                    self.tracer.emit(
                        TraceEvent(
                            epoch=self.clock.epoch,
                            kind="replica_bootstrap",
                            server=sid,
                            partition=partition,
                            reason=BOOTSTRAP,
                            policy=self.policy_name,
                            extra={"dc": self.cluster.dc_of(sid)},
                        )
                    )
        # High-water mark of the tracer's drop counter already exported
        # to the trace_events_dropped_total instrument.
        self._dropped_exported = 0.0
        # Applied-action counts by policy reason for the last epoch,
        # exported as ``decision/<reason>`` time-series columns.
        self._decision_counts: dict[str, float] = {}
        self.last_result: ServiceResult | None = None
        # Optional consistency extension (the paper's future work; off by
        # default so every reproduced figure is unaffected).
        self.consistency: ConsistencyTracker | None = None
        if consistency is not None:
            self.consistency = ConsistencyTracker(
                consistency,
                self.rng_tree.stream("consistency"),
                config.workload.partition_size_mb,
                config.rfh.failure_rate,
                config.cluster.replication_bandwidth_mb,
            )

    # ------------------------------------------------------------------
    # Invariant resolution
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_invariants(
        spec: InvariantChecker | bool | None,
    ) -> InvariantChecker | None:
        if spec is None:
            spec = os.environ.get("REPRO_CHECK_INVARIANTS", "") not in ("", "0")
        if spec is False:
            return None
        if spec is True:
            from ..chaos.invariants import InvariantChecker

            return InvariantChecker(strict=True)
        return spec

    # ------------------------------------------------------------------
    # Policy resolution
    # ------------------------------------------------------------------
    def _resolve_policy(self, spec: PolicySpec) -> ReplicationPolicy:
        if isinstance(spec, str):
            from ..baselines.owner_oriented import OwnerOrientedPolicy
            from ..baselines.random_policy import RandomPolicy
            from ..baselines.request_oriented import RequestOrientedPolicy
            from ..core.policy import RFHPolicy

            builders: dict[str, Callable[[], ReplicationPolicy]] = {
                "rfh": lambda: RFHPolicy(self.config.rfh),
                "random": lambda: RandomPolicy(
                    self.config.rfh, self.mapper, self.rng_tree.stream("policy-random")
                ),
                "owner": lambda: OwnerOrientedPolicy(self.config.rfh),
                "request": lambda: RequestOrientedPolicy(
                    self.config.rfh, self.rng_tree.stream("policy-request")
                ),
            }
            try:
                return builders[spec]()
            except KeyError:
                raise SimulationError(
                    f"unknown policy {spec!r}; choose from {sorted(builders)}"
                ) from None
        if callable(spec) and not hasattr(spec, "decide"):
            return spec(self)  # factory
        return spec  # ready policy object

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule_event(self, event: MembershipEvent) -> None:
        """Schedule a membership event for a future epoch."""
        if event.epoch < self.clock.epoch:
            raise SimulationError(
                f"cannot schedule an event at past epoch {event.epoch} "
                f"(now at {self.clock.epoch})"
            )
        self._events.schedule(event)

    # ------------------------------------------------------------------
    # The epoch loop
    # ------------------------------------------------------------------
    def run(self, epochs: int) -> MetricsCollector:
        """Advance ``epochs`` epochs and return the metric collector."""
        if epochs < 1:
            raise SimulationError(f"epochs must be >= 1, got {epochs}")
        for _ in range(epochs):
            self.step()
        return self.metrics

    def step(self) -> ServiceResult:
        """Advance exactly one epoch; returns the epoch's service result."""
        epoch = self.clock.epoch
        profiler = self.profiler
        with profiler.phase("membership"):
            restored = self._apply_due_events(epoch)
            self.cluster.reset_epoch_budgets()

        with profiler.phase("workload"):
            batch = self.workload.generate(epoch)
            if batch.num_partitions != self.replicas.num_partitions:
                raise SimulationError(
                    f"workload produces {batch.num_partitions} partitions, "
                    f"world has {self.replicas.num_partitions}"
                )

        with profiler.phase("serve"):
            result = self._serve_epoch(batch)
            self.last_result = result

        with profiler.phase("observe"):
            blocking = self._update_blocking(result)
            obs = EpochObservation(
                epoch=epoch,
                queries=batch,
                traffic_dc=result.traffic_dc,
                served_server=result.served_server,
                unserved=result.unserved,
                holder_traffic=result.holder_traffic,
                blocking_probability=blocking,
                replicas=self.replicas,
                cluster=self.cluster,
                router=self.router,
                rmin=self.rmin,
                params=self.config.rfh,
                partition_size_mb=self.config.workload.partition_size_mb,
            )
            actions = self.policy.decide(obs)

        with profiler.phase("apply"):
            applied = self._apply_actions(actions, epoch)

        with profiler.phase("record"):
            if self.tracer.enabled and result.sla_miss > 0:
                self.tracer.emit(
                    TraceEvent(
                        epoch=epoch,
                        kind="sla_violation",
                        reason=LATENCY_BOUND_EXCEEDED,
                        policy=self.policy_name,
                        extra={
                            "count": float(result.sla_miss),
                            "queries": float(batch.total),
                        },
                    )
                )
            if self.instruments is not None:
                self.instruments.counter(
                    "sla_miss_total", policy=self.policy_name
                ).inc(float(result.sla_miss))
                self.instruments.gauge(
                    "total_replicas", policy=self.policy_name
                ).set(float(self.replicas.total_replicas()))
                self.instruments.gauge(
                    "alive_servers", policy=self.policy_name
                ).set(float(len(self.cluster.alive_servers())))
                # Surface silent ring-buffer eviction: without this the
                # only sign of a truncated trace is a missing tail.
                dropped = float(getattr(self.tracer, "dropped", 0))
                if dropped > self._dropped_exported:
                    self.instruments.counter("trace_events_dropped_total").inc(
                        dropped - self._dropped_exported
                    )
                    self._dropped_exported = dropped
            consistency = None
            if self.consistency is not None:
                consistency = self.consistency.observe(
                    batch.per_partition(),
                    result.served_server,
                    self.replicas,
                    self.cluster,
                    self.router,
                )
            values = self._record_metrics(batch, result, applied, restored, consistency)
            if self.sanitizer is not None:
                self.sanitizer.observe(
                    epoch,
                    replicas=self.replicas,
                    cluster=self.cluster,
                    rng_tree=self.rng_tree,
                    metrics=values,
                )
            if self.timeseries is not None:
                self._sample_timeseries(epoch, values, result)
            self._check_invariants(epoch)
            self.clock.advance()
        return result

    def _sample_timeseries(
        self, epoch: int, values: dict[str, float], result: ServiceResult
    ) -> None:
        """Feed the time-series recorder one flat row for this epoch."""
        row = dict(values)
        per_dc = result.traffic_dc.sum(axis=0)
        for dc in range(per_dc.shape[0]):
            row[f"traffic_dc/{dc}"] = float(per_dc[dc])
        if self.instruments is not None:
            for kind, name, labels, value in self.instruments.iter_scalars():
                suffix = (
                    "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels
                    else ""
                )
                row[f"{kind}/{name}{suffix}"] = value
        if self.profiler.enabled:
            for phase, seconds in self.profiler.latest().items():
                row[f"phase_s/{phase}"] = seconds
        if self.work is not None:
            for name, count in self.work.epoch_deltas().items():
                row[f"work/{name}"] = float(count)
        for reason, count in self._decision_counts.items():
            row[f"decision/{reason}"] = count
        self.timeseries.sample(epoch, row)

    def _check_invariants(self, epoch: int) -> None:
        """End-of-epoch conservation check (see ``invariants`` in __init__)."""
        if self.invariants is None:
            return
        violations = self.invariants.collect(epoch, self.cluster, self.replicas)
        for violation in violations:
            if self.tracer.enabled:
                self.tracer.emit(
                    TraceEvent(
                        epoch=epoch,
                        kind="invariant_violation",
                        server=violation.server,
                        partition=violation.partition,
                        reason=violation.invariant,
                        policy=self.policy_name,
                        extra={"detail": violation.detail},
                    )
                )
            if self.instruments is not None:
                self.instruments.counter(
                    "invariant_violations_total", invariant=violation.invariant
                ).inc()
        if violations and self.invariants.strict:
            raise violations[0]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_due_events(self, epoch: int) -> int:
        """Apply membership events due at ``epoch``; returns the number of
        fully-lost partitions restored afterwards."""
        for event in self._events.pop_due(epoch):
            if isinstance(event, MassFailureEvent):
                victims = self.injector.choose_victims(event.count)
                self._fail(victims, epoch, cause=MASS_FAILURE)
            elif isinstance(event, ServerFailureEvent):
                self._fail(event.sids, epoch, cause=SERVER_FAILURE)
            elif isinstance(event, ServerRecoveryEvent):
                sids = event.sids or tuple(
                    s.sid for s in self.cluster.servers if not s.alive
                )
                for sid in sids:
                    self.cluster.recover_server(sid)
                    self.ring.add_server(sid)
                    self._trace_membership(
                        epoch,
                        "server_recovery",
                        sid,
                        RECOVERY,
                        dc=self.cluster.dc_of(sid),
                    )
            elif isinstance(event, ServerJoinEvent):
                for _ in range(event.count):
                    server = self.cluster.join_server(event.dc)
                    self.ring.add_server(server.sid)
                    self._trace_membership(
                        epoch, "server_join", server.sid, JOIN, dc=event.dc
                    )
            elif isinstance(event, ChaosFailureEvent):
                # Chaos injections may overlap (flapping over a rolling
                # outage): victims already down are skipped, not errors.
                victims = tuple(
                    sid for sid in event.sids if self.cluster.server(sid).alive
                )
                self._fail(victims, epoch, cause=event.cause)
            elif isinstance(event, ChaosRecoveryEvent):
                for sid in event.sids:
                    if self.cluster.server(sid).alive:
                        continue
                    self.cluster.recover_server(sid)
                    self.ring.add_server(sid)
                    self._trace_membership(
                        epoch,
                        "server_recovery",
                        sid,
                        event.cause,
                        dc=self.cluster.dc_of(sid),
                    )
            elif isinstance(event, LinkFailureEvent):
                self._apply_link_change(epoch, event.links, down=True, cause=event.cause)
            elif isinstance(event, LinkRecoveryEvent):
                self._apply_link_change(epoch, event.links, down=False, cause=event.cause)
            else:  # pragma: no cover - closed union
                raise SimulationError(f"unknown event type: {event!r}")
        return self._restore_lost_partitions(epoch)

    def _apply_link_change(
        self,
        epoch: int,
        links: tuple[tuple[int, int], ...],
        *,
        down: bool,
        cause: str,
    ) -> None:
        """Cut or heal WAN links, then recompute the degraded router."""
        changed = []
        for u, v in links:
            link = (u, v) if u < v else (v, u)
            if down and link not in self._down_links:
                self._down_links.add(link)
                changed.append(link)
            elif not down and link in self._down_links:
                self._down_links.discard(link)
                changed.append(link)
        if not changed:
            return
        if self._down_links:
            self.router = Router(self.wan.without_links(self._down_links))
        else:
            self.router = self._base_router
        kind = "link_failure" if down else "link_recovery"
        for u, v in changed:
            if self.timeseries is not None:
                self.timeseries.mark(epoch, kind, cause)
            if self.tracer.enabled:
                self.tracer.emit(
                    TraceEvent(
                        epoch=epoch,
                        kind=kind,
                        reason=cause,
                        policy=self.policy_name,
                        extra={"u": u, "v": v},
                    )
                )
            if self.instruments is not None:
                self.instruments.counter("wan_link_events_total", kind=kind).inc()

    def _trace_membership(
        self, epoch: int, kind: str, sid: int, reason: str, **extra: object
    ) -> None:
        if self.timeseries is not None:
            self.timeseries.mark(epoch, kind, reason)
        if self.tracer.enabled:
            self.tracer.emit(
                TraceEvent(
                    epoch=epoch,
                    kind=kind,
                    server=sid,
                    reason=reason,
                    policy=self.policy_name,
                    extra=dict(extra),
                )
            )
        if self.instruments is not None:
            self.instruments.counter("membership_events_total", kind=kind).inc()

    def _fail(self, sids: Iterable[int], epoch: int, cause: str) -> None:
        for sid in sids:
            self.cluster.fail_server(sid)
            dropped = self.replicas.drop_server(sid)
            self.ring.remove_server(sid)
            # ``partitions`` names every copy that died with the server,
            # so trace consumers can close the right replica lifecycles.
            self._trace_membership(
                epoch,
                "server_failure",
                sid,
                cause,
                replicas_lost=len(dropped),
                partitions=list(dropped),
                dc=self.cluster.dc_of(sid),
            )
            if self.instruments is not None:
                lifetimes = self.instruments.histogram(
                    "replica_lifetime_epochs", policy=self.policy_name
                )
                for partition in dropped:
                    born = self._replica_birth.pop((partition, sid), None)
                    if born is not None:
                        lifetimes.observe(float(epoch - born))

    def _restore_lost_partitions(self, epoch: int) -> int:
        """Re-create partitions that lost every copy at their current ring
        owner (a synthetic cold-archive restore; counted in metrics as
        ``lost_partitions`` for the epoch it happened)."""
        restored = 0
        for partition in range(self.replicas.num_partitions):
            if self.replicas.has_holder(partition):
                continue
            owner = self.mapper.holder(partition)  # ring holds alive servers only
            if self.work is not None:
                self.work.ring_lookups += 1
            self.replicas.restore(partition, owner)
            restored += 1
            if self.timeseries is not None:
                self.timeseries.mark(epoch, "partition_restore", ALL_COPIES_LOST)
            if self.tracer.enabled:
                self.tracer.emit(
                    TraceEvent(
                        epoch=epoch,
                        kind="partition_restore",
                        server=owner,
                        partition=partition,
                        reason=ALL_COPIES_LOST,
                        policy=self.policy_name,
                        extra={"dc": self.cluster.dc_of(owner)},
                    )
                )
            if self.instruments is not None:
                self.instruments.counter("partitions_restored_total").inc()
                self._replica_birth[(partition, owner)] = epoch
        return restored

    def _serve_epoch(self, batch: "QueryBatch") -> ServiceResult:
        """Route one epoch's queries through the current replica layout.

        The scalar reference implementation; the columnar engine
        (:mod:`repro.sim.columnar`) overrides this with the vectorized
        kernel under the bit-identical reduction contract.
        """
        holder_dc, holder_sid, layouts = self._current_layouts()
        return serve_epoch(
            batch,
            holder_dc,
            layouts,
            self.router,
            self.cluster.num_servers,
            holder_sid=holder_sid,
            latency=self.latency,
            work=self.work,
            profiler=self.profiler,
        )

    def _current_layouts(
        self,
    ) -> tuple[
        list[int | None], list[int | None], list[dict[int, list[tuple[int, float]]]]
    ]:
        holder_dc: list[int | None] = []
        holder_sid: list[int | None] = []
        layouts: list[dict[int, list[tuple[int, float]]]] = []
        for partition in range(self.replicas.num_partitions):
            if not self.replicas.has_holder(partition):
                holder_dc.append(None)
                holder_sid.append(None)
                layouts.append({})
                continue
            sid = self.replicas.holder(partition)
            holder_sid.append(sid)
            holder_dc.append(self.cluster.dc_of(sid))
            layout: dict[int, list[tuple[int, float]]] = {}
            for dc, entries in self.replicas.replicas_by_dc(partition).items():
                layout[dc] = [
                    (entry_sid, count * self.cluster.server(entry_sid).replica_capacity)
                    for entry_sid, count in entries
                    if self.cluster.server(entry_sid).alive
                ]
            layouts.append(layout)
        return holder_dc, holder_sid, layouts

    def _update_blocking(self, result: ServiceResult) -> np.ndarray:
        load = result.per_server_load
        if load.shape[0] > self._smoothed_load.shape[0]:
            grown = np.zeros(load.shape[0], dtype=np.float64)
            grown[: self._smoothed_load.shape[0]] = self._smoothed_load
            self._smoothed_load = grown
        alpha = self.config.rfh.alpha
        if not self._load_initialized:
            self._smoothed_load = load.astype(np.float64, copy=True)
            self._load_initialized = True
        else:
            # Same EWMA convention as core.smoothing: alpha weights the
            # new sample.
            self._smoothed_load = (1.0 - alpha) * self._smoothed_load + alpha * load
        return self._blocking_probabilities(self._smoothed_load)

    def _blocking_probabilities(self, load: np.ndarray) -> np.ndarray:
        """Eq. 18 per-server blocking from smoothed load (columnar overrides)."""
        return server_blocking_probabilities(self.cluster, load)

    # ------------------------------------------------------------------
    # Action application
    # ------------------------------------------------------------------
    def _apply_actions(self, actions: list[Action], epoch: int) -> dict[str, float]:
        stats = {
            "replication_count": 0.0,
            "replication_cost": 0.0,
            "migration_count": 0.0,
            "migration_cost": 0.0,
            "suicide_count": 0.0,
            "skipped_actions": 0.0,
        }
        if self.timeseries is not None:
            self._decision_counts = {}
        for action in actions:
            if isinstance(action, Replicate):
                self._apply_replicate(action, stats, epoch)
            elif isinstance(action, Migrate):
                self._apply_migrate(action, stats, epoch)
            elif isinstance(action, Suicide):
                self._apply_suicide(action, stats, epoch)
            else:  # pragma: no cover - closed union
                raise ActionError(f"unknown action type: {action!r}")
        return stats

    def _count_decision(self, action: Action) -> None:
        """Bump the per-epoch applied-action count for the action's reason."""
        if self.timeseries is None:
            return
        reason = action.reason or "unspecified"
        self._decision_counts[reason] = self._decision_counts.get(reason, 0.0) + 1.0

    def _note_fate(
        self,
        epoch: int,
        kind: str,
        action: Action,
        fate: str,
        cause: str = "",
        target_dc: int = -1,
    ) -> None:
        """Report an action's applied/skipped fate to the provenance ledger."""
        if self.provenance is not None:
            self.provenance.note_fate(
                epoch, kind, action, fate, cause=cause, target_dc=target_dc
            )

    def _trace_action(
        self,
        epoch: int,
        kind: str,
        action: Action,
        server: int,
        partition: int,
        cost: float = 0.0,
        **extra: object,
    ) -> None:
        """One record per applied action, tagged with the policy's reason."""
        if self.tracer.enabled:
            self.tracer.emit(
                TraceEvent(
                    epoch=epoch,
                    kind=kind,
                    server=server,
                    partition=partition,
                    reason=action.reason,
                    cost=cost,
                    policy=self.policy_name,
                    extra=dict(extra),
                )
            )
        if self.instruments is not None:
            self.instruments.counter(
                "actions_total",
                kind=kind,
                reason=action.reason,
                policy=self.policy_name,
            ).inc()

    def _skip_action(
        self, epoch: int, kind: str, action: Action, cause: str, stats: dict[str, float]
    ) -> None:
        """A gate refused the action: count it and say which gate."""
        stats["skipped_actions"] += 1
        self._note_fate(epoch, kind, action, "skipped", cause=cause)
        if self.tracer.enabled:
            self.tracer.emit(
                TraceEvent(
                    epoch=epoch,
                    kind="action_skipped",
                    server=getattr(action, "target_sid", getattr(action, "sid", None)),
                    partition=action.partition,
                    reason=action.reason,
                    policy=self.policy_name,
                    extra={"action": kind, "cause": cause},
                )
            )
        if self.instruments is not None:
            self.instruments.counter(
                "actions_skipped_total", kind=kind, cause=cause
            ).inc()

    def _observe_replica_death(self, epoch: int, partition: int, sid: int) -> None:
        """Feed the lifetime histogram when a copy is deliberately removed."""
        if self.instruments is None:
            return
        born = self._replica_birth.pop((partition, sid), None)
        if born is not None:
            self.instruments.histogram(
                "replica_lifetime_epochs", policy=self.policy_name
            ).observe(float(epoch - born))

    def _transfer_distance_km(self, src_dc: int, dst_dc: int) -> float:
        if src_dc == dst_dc:
            return INTRA_DATACENTER_KM
        return self.router.distance_km(src_dc, dst_dc)

    def _apply_replicate(
        self, action: Replicate, stats: dict[str, float], epoch: int
    ) -> None:
        source = self.cluster.server(action.source_sid)
        target = self.cluster.server(action.target_sid)
        if not source.alive:
            raise ActionError(f"replication source {source.sid} is down: {action}")
        if not target.alive:
            raise ActionError(f"replication target {target.sid} is down: {action}")
        if self.replicas.count(action.partition, action.source_sid) < 1:
            raise ActionError(
                f"replication source holds no copy of partition "
                f"{action.partition}: {action}"
            )
        if not self.router.reachable(source.dc, target.dc):
            self._skip_action(epoch, "replicate", action, SKIP_NETWORK_PARTITION, stats)
            return
        size = self.config.workload.partition_size_mb
        # Resource races between same-epoch actions are skips, not bugs.
        if not target.storage_gate_open(size, self.config.rfh.phi):
            self._skip_action(epoch, "replicate", action, SKIP_STORAGE_GATE, stats)
            return
        if not source.consume_replication_bandwidth(size):
            self._skip_action(epoch, "replicate", action, SKIP_BANDWIDTH, stats)
            return
        self.replicas.add(action.partition, action.target_sid)
        stats["replication_count"] += 1
        if self.work is not None:
            self.work.replicate_actions += 1
        cost = replication_cost(
            self._transfer_distance_km(source.dc, target.dc),
            self.config.rfh.failure_rate,
            size,
            self.config.cluster.replication_bandwidth_mb,
        )
        stats["replication_cost"] += cost
        if self.instruments is not None:
            self._replica_birth[(action.partition, action.target_sid)] = epoch
        self._count_decision(action)
        self._note_fate(epoch, "replicate", action, "applied", target_dc=target.dc)
        self._trace_action(
            epoch,
            "replicate",
            action,
            action.target_sid,
            action.partition,
            cost=cost,
            source=action.source_sid,
            dc=target.dc,
            source_dc=source.dc,
        )

    def _apply_migrate(
        self, action: Migrate, stats: dict[str, float], epoch: int
    ) -> None:
        source = self.cluster.server(action.source_sid)
        target = self.cluster.server(action.target_sid)
        if action.source_sid == action.target_sid:
            raise ActionError(f"migration to self: {action}")
        if not source.alive or not target.alive:
            raise ActionError(f"migration endpoint is down: {action}")
        if self.replicas.count(action.partition, action.source_sid) < 1:
            raise ActionError(
                f"migration source holds no copy of partition "
                f"{action.partition}: {action}"
            )
        if not self.router.reachable(source.dc, target.dc):
            self._skip_action(epoch, "migrate", action, SKIP_NETWORK_PARTITION, stats)
            return
        size = self.config.workload.partition_size_mb
        if not target.storage_gate_open(size, self.config.rfh.phi):
            self._skip_action(epoch, "migrate", action, SKIP_STORAGE_GATE, stats)
            return
        if not source.consume_migration_bandwidth(size):
            self._skip_action(epoch, "migrate", action, SKIP_BANDWIDTH, stats)
            return
        self.replicas.move(action.partition, action.source_sid, action.target_sid)
        stats["migration_count"] += 1
        if self.work is not None:
            self.work.migrate_actions += 1
        cost = migration_cost(
            self._transfer_distance_km(source.dc, target.dc),
            self.config.rfh.failure_rate,
            size,
            self.config.cluster.migration_bandwidth_mb,
        )
        stats["migration_cost"] += cost
        if self.instruments is not None:
            self._observe_replica_death(epoch, action.partition, action.source_sid)
            self._replica_birth[(action.partition, action.target_sid)] = epoch
        self._count_decision(action)
        self._note_fate(epoch, "migrate", action, "applied", target_dc=target.dc)
        self._trace_action(
            epoch,
            "migrate",
            action,
            action.target_sid,
            action.partition,
            cost=cost,
            source=action.source_sid,
            dc=target.dc,
            source_dc=source.dc,
        )

    def _apply_suicide(
        self, action: Suicide, stats: dict[str, float], epoch: int
    ) -> None:
        if self.replicas.count(action.partition, action.sid) < 1:
            raise ActionError(
                f"suicide on a server without a copy of partition "
                f"{action.partition}: {action}"
            )
        if self.replicas.replica_count(action.partition) <= 1:
            self._skip_action(epoch, "suicide", action, SKIP_LAST_COPY, stats)
            return
        self.replicas.remove(action.partition, action.sid)
        stats["suicide_count"] += 1
        if self.work is not None:
            self.work.evict_actions += 1
        self._observe_replica_death(epoch, action.partition, action.sid)
        self._count_decision(action)
        self._note_fate(
            epoch,
            "suicide",
            action,
            "applied",
            target_dc=self.cluster.dc_of(action.sid),
        )
        self._trace_action(
            epoch,
            "suicide",
            action,
            action.sid,
            action.partition,
            dc=self.cluster.dc_of(action.sid),
        )

    # ------------------------------------------------------------------
    # Metric recording
    # ------------------------------------------------------------------
    def _replica_count_matrix(self) -> np.ndarray:
        counts = np.zeros(
            (self.replicas.num_partitions, self.cluster.num_servers), dtype=np.int64
        )
        for partition in range(self.replicas.num_partitions):
            for sid, count in self.replicas.servers_with(partition):
                counts[partition, sid] = count
        return counts

    def _server_capacity_array(self) -> np.ndarray:
        """Per-server ``replica_capacity`` (read-only; columnar caches it)."""
        return np.array(
            [s.replica_capacity for s in self.cluster.servers], dtype=np.float64
        )

    def _alive_mask_array(self) -> np.ndarray:
        """Per-server liveness mask (read-only; columnar caches it)."""
        return np.array([s.alive for s in self.cluster.servers], dtype=bool)

    def _alive_server_count(self) -> int:
        """Number of live servers (columnar counts its cached mask)."""
        return len(self.cluster.alive_servers())

    def _total_replicas(self) -> int:
        """Total live copies across all partitions (columnar overrides)."""
        return self.replicas.total_replicas()

    def _availability_summary(self) -> "AvailabilitySummary":
        """Eq. 9 availability summary (columnar caches by layout version)."""
        return availability_summary(
            self.replicas, self.config.rfh.failure_rate, self.rmin
        )

    # Metric-kernel hooks: the columnar engine overrides these with
    # cached-index evaluations of the same formulas (bit-identical by
    # construction); the scalar reference calls the metric module.
    def _utilization_value(
        self, served_server: np.ndarray, counts: np.ndarray, capacities: np.ndarray
    ) -> float:
        return average_utilization(served_server, counts, capacities)

    def _load_cv_value(self, served_server: np.ndarray, counts: np.ndarray) -> float:
        return replica_load_cv(served_server, counts)

    def _server_imbalance_value(
        self, per_server_load: np.ndarray, alive_mask: np.ndarray
    ) -> float:
        return server_load_imbalance(per_server_load, alive_mask)

    def _record_metrics(
        self,
        batch: "QueryBatch",
        result: ServiceResult,
        applied: dict[str, float],
        restored: int,
        consistency: "ConsistencySummary | None" = None,
    ) -> dict[str, float]:
        with self.profiler.span("storage-accounting"):
            counts = self._replica_count_matrix()
            capacities = self._server_capacity_array()
            alive_mask = self._alive_mask_array()
            summary = self._availability_summary()
        latency = self.latency.summarize_epoch(
            result.distance_sum_km,
            result.hop_sum,
            result.sla_miss,
            float(batch.total),
        )
        total_replicas = self._total_replicas()
        values = {
                "utilization": self._utilization_value(
                    result.served_server, counts, capacities
                ),
                "total_replicas": float(total_replicas),
                "avg_replicas": total_replicas / self.replicas.num_partitions,
                "replication_count": applied["replication_count"],
                "replication_cost": applied["replication_cost"],
                "migration_count": applied["migration_count"],
                "migration_cost": applied["migration_cost"],
                "suicide_count": applied["suicide_count"],
                "load_imbalance": self._load_cv_value(result.served_server, counts),
                "server_load_imbalance": self._server_imbalance_value(
                    result.per_server_load, alive_mask
                ),
                "path_length": result.mean_path_length,
                "mean_latency_ms": latency.mean_ms,
                "sla_attainment": latency.sla_attainment,
                "unserved": float(result.unserved.sum()),
                "served": result.total_served,
                "queries": float(batch.total),
                "alive_servers": float(self._alive_server_count()),
                "mean_availability": summary.mean_availability,
                "lost_partitions": float(restored),
                "skipped_actions": applied["skipped_actions"],
        }
        if consistency is not None:
            values.update(
                {
                    "writes": consistency.writes,
                    "propagation_transfers": consistency.propagation_transfers,
                    "propagation_cost": consistency.propagation_cost,
                    "mean_staleness": consistency.mean_staleness,
                    "stale_replica_fraction": consistency.stale_replica_fraction,
                    "stale_read_fraction": consistency.stale_read_fraction,
                }
            )
        self.metrics.record_epoch(values)
        return values
