"""The shared action-reason and cause vocabulary.

Policies tag every action with a ``reason`` string, the engine tags
every skipped action and membership event with a ``cause``, the
root-cause analyser weighs attribution categories, and the provenance
ledger records all of them.  Before this module each site spelled its
own literals, so one typo ("trafic-hub") would silently split a
category across traces, instrument labels, time-series columns and
root-cause tables.  Import the constants instead; the ``*_REASONS`` /
``*_CAUSES`` tuples enumerate each closed family for validation and
docs.

Nothing here is interpreted by the engine — reasons stay free-form tags
(:mod:`repro.sim.actions`) — but every literal the repo emits lives
here.
"""

from __future__ import annotations

__all__ = [
    "AVAILABILITY",
    "LOCAL_RELIEF",
    "TRAFFIC_HUB",
    "HUB_MIGRATION",
    "COLD_REPLICA",
    "SUCCESSOR",
    "OVERLOAD",
    "DEMAND",
    "TOP3_CHANGE",
    "MEMBERSHIP_REBALANCE",
    "ACTION_REASONS",
    "SKIP_NETWORK_PARTITION",
    "SKIP_STORAGE_GATE",
    "SKIP_BANDWIDTH",
    "SKIP_LAST_COPY",
    "SKIP_CAUSES",
    "BOOTSTRAP",
    "RECOVERY",
    "JOIN",
    "MASS_FAILURE",
    "SERVER_FAILURE",
    "ALL_COPIES_LOST",
    "LATENCY_BOUND_EXCEEDED",
    "MEMBERSHIP_CAUSES",
    "CAUSE_SERVER_FAILURE",
    "CAUSE_LOST_PARTITION_RESTORE",
    "CAUSE_REPLICATION_STORM",
    "CAUSE_OVERLOAD_UNMITIGATED",
    "CAUSE_UNATTRIBUTED",
    "ATTRIBUTION_CAUSES",
]

# ----------------------------------------------------------------------
# Action reasons emitted by the RFH decision tree (core.decision).
# ----------------------------------------------------------------------
#: Eq. 14 availability floor unmet — replicate regardless of load.
AVAILABILITY: str = "availability"
#: Holder overloaded but no forwarding node cleared Eq. 13 — replicate
#: inside the holder's own datacenter.
LOCAL_RELIEF: str = "local-relief"
#: Holder overloaded (Eq. 12) and a forwarding hub qualified (Eq. 13).
TRAFFIC_HUB: str = "traffic-hub"
#: A cold replica moves to a top-traffic hub (Eq. 16 benefit met).
HUB_MIGRATION: str = "hub-migration"
#: Eq. 15 suicide: a barely-visited replica reclaims itself.
COLD_REPLICA: str = "cold-replica"

# ----------------------------------------------------------------------
# Action reasons emitted by the baseline policies.
# ----------------------------------------------------------------------
#: Random policy: copy placed on the ring successor.
SUCCESSOR: str = "successor"
#: Random policy: extra copy on overload.
OVERLOAD: str = "overload"
#: Request-oriented policy: replicate toward observed demand.
DEMAND: str = "demand"
#: Request-oriented policy: the top-3 requester set changed.
TOP3_CHANGE: str = "top3-change"
#: Owner-oriented policy: rebalance after membership churn.
MEMBERSHIP_REBALANCE: str = "membership-rebalance"

#: Every action reason any shipped policy emits.
ACTION_REASONS: tuple[str, ...] = (
    AVAILABILITY,
    LOCAL_RELIEF,
    TRAFFIC_HUB,
    HUB_MIGRATION,
    COLD_REPLICA,
    SUCCESSOR,
    OVERLOAD,
    DEMAND,
    TOP3_CHANGE,
    MEMBERSHIP_REBALANCE,
)

# ----------------------------------------------------------------------
# Engine gates that refuse an action (``action_skipped`` trace records).
# ----------------------------------------------------------------------
SKIP_NETWORK_PARTITION: str = "network-partition"
SKIP_STORAGE_GATE: str = "storage-gate"
SKIP_BANDWIDTH: str = "bandwidth"
SKIP_LAST_COPY: str = "last-copy"

#: Every cause the engine's apply-phase gates can report.
SKIP_CAUSES: tuple[str, ...] = (
    SKIP_NETWORK_PARTITION,
    SKIP_STORAGE_GATE,
    SKIP_BANDWIDTH,
    SKIP_LAST_COPY,
)

# ----------------------------------------------------------------------
# Membership / lifecycle causes on engine trace records.
# ----------------------------------------------------------------------
BOOTSTRAP: str = "bootstrap"
RECOVERY: str = "recovery"
JOIN: str = "join"
MASS_FAILURE: str = "mass-failure"
SERVER_FAILURE: str = "server-failure"
ALL_COPIES_LOST: str = "all-copies-lost"
LATENCY_BOUND_EXCEEDED: str = "latency-bound-exceeded"

MEMBERSHIP_CAUSES: tuple[str, ...] = (
    BOOTSTRAP,
    RECOVERY,
    JOIN,
    MASS_FAILURE,
    SERVER_FAILURE,
    ALL_COPIES_LOST,
)

# ----------------------------------------------------------------------
# Root-cause attribution categories (obs.analysis.rootcause).
# ----------------------------------------------------------------------
CAUSE_SERVER_FAILURE: str = SERVER_FAILURE
CAUSE_LOST_PARTITION_RESTORE: str = "lost-partition-restore"
CAUSE_REPLICATION_STORM: str = "replication-storm"
CAUSE_OVERLOAD_UNMITIGATED: str = "overload-unmitigated"
CAUSE_UNATTRIBUTED: str = "unattributed"

ATTRIBUTION_CAUSES: tuple[str, ...] = (
    CAUSE_SERVER_FAILURE,
    CAUSE_LOST_PARTITION_RESTORE,
    CAUSE_REPLICATION_STORM,
    CAUSE_OVERLOAD_UNMITIGATED,
    CAUSE_UNATTRIBUTED,
)
