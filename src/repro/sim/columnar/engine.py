"""The columnar simulation engine.

:class:`ColumnarSimulation` subclasses the scalar
:class:`~repro.sim.engine.Simulation` and overrides only the hot-path
hooks — serve, blocking, metric-source accessors, lost-partition scan —
with array kernels over a :class:`SimState` mirror of the replica map.
Everything else (membership, workload, policy protocol, apply gates,
tracing, sanitizer) is inherited unchanged, which is what makes the
bit-identical contract tractable: the authoritative world objects are
the same, only the arithmetic routes through numpy.

Fallbacks: epochs with WAN links down (degraded router) or a holderless
partition delegate to the scalar serve path, so chaos scenarios remain
exactly reproducible without a second implementation of degraded
routing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...core.availability import availability_at_least_one
from ...errors import SimulationError
from ...metrics.availability_metric import AvailabilitySummary
from ...metrics.imbalance import server_load_imbalance
from ..engine import Simulation
from .kernels import SlotCSR, build_slot_csr, erlang_b_vector, serve_columnar
from .state import SimState
from .tables import RouterTables

if TYPE_CHECKING:
    from ...core.traffic import ServiceResult
    from ...workload.query import QueryBatch

__all__ = ["ColumnarSimulation"]


class ColumnarSimulation(Simulation):
    """Vectorized engine, bit-identical to the scalar reference.

    Accepts exactly the :class:`~repro.sim.engine.Simulation`
    constructor arguments; select it with ``repro run --engine
    columnar`` or :func:`repro.experiments.runner.run_experiment`.
    """

    engine_name = "columnar"

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._state = SimState(self.replicas.num_partitions, self.cluster.num_servers)
        self._state.sync(self.replicas, self.cluster.num_servers)
        self.replicas.attach_mirror(self._state)
        # Static per-topology routing/latency tables (chaos link cuts
        # fall back to the scalar path, so the base router suffices).
        self._tables = RouterTables(self._base_router, self.latency)
        self._dc_of_array = np.array(
            [s.dc for s in self.cluster.servers], dtype=np.int64
        )
        self._capacity_cache = Simulation._server_capacity_array(self)
        # Slot CSR and holder→dc gather, rebuilt only when the layout
        # version moves (quiescent epochs reuse them).
        self._csr: SlotCSR | None = None
        self._csr_version = -1
        self._holder_dc_cache = np.zeros(0, dtype=np.int64)
        # Version-keyed record-phase caches (same pure functions of the
        # replica map the scalar engine calls every epoch).
        self._avail_version = -1
        self._avail_cache: AvailabilitySummary | None = None
        self._avail_table = np.zeros(1, dtype=np.float64)  # [r] = 1 - f^r
        self._total_version = -1
        self._total_cache = 0
        self._alive_epoch = -1
        self._alive_cache = np.zeros(0, dtype=bool)
        # Replica-mask index cache for the metric kernels: row/column
        # coordinates of every (partition, server) cell holding replicas,
        # in row-major order (the order boolean masking enumerates).
        self._mask_version = -1
        self._mask_shape = (0, 0)
        self._mask_rows = np.zeros(0, dtype=np.int64)
        self._mask_cols = np.zeros(0, dtype=np.int64)
        self._mask_cap = np.zeros(0, dtype=np.float64)
        self._mask_cnt_int = np.zeros(0, dtype=np.int64)
        self._mask_cnt_f = np.zeros(0, dtype=np.float64)
        self._mask_cap_ok = True
        # Reused all-zero scratch for the utilization fill matrix; after
        # every use the touched cells are reset so the buffer re-enters
        # the next epoch exactly as ``np.zeros_like`` would.
        self._fills = np.zeros(0, dtype=np.float64)
        # Policies that support it (RFH) get the dense mirror for their
        # vectorized decision prefilter; baselines simply lack the hook.
        attach = getattr(self.policy, "attach_columnar_state", None)
        if attach is not None:
            attach(self._state)

    # ------------------------------------------------------------------
    # Server-axis caches
    # ------------------------------------------------------------------
    def _refresh_server_arrays(self) -> None:
        """Grow per-server caches after joins (capacities never change)."""
        num_servers = self.cluster.num_servers
        if self._capacity_cache.shape[0] != num_servers:
            self._capacity_cache = Simulation._server_capacity_array(self)
            self._dc_of_array = np.array(
                [s.dc for s in self.cluster.servers], dtype=np.int64
            )
            self._state.ensure_servers(num_servers)
            self._csr_version = -1  # sentinel sid changed width

    def _server_capacity_array(self) -> np.ndarray:
        self._refresh_server_arrays()
        return self._capacity_cache

    def _replica_count_matrix(self) -> np.ndarray:
        self._refresh_server_arrays()
        return self._state.R

    # ------------------------------------------------------------------
    # Hot-path overrides
    # ------------------------------------------------------------------
    def _restore_lost_partitions(self, epoch: int) -> int:
        if not bool((self._state.holder < 0).any()):
            return 0
        return super()._restore_lost_partitions(epoch)

    def _serve_epoch(self, batch: "QueryBatch") -> "ServiceResult":
        self._refresh_server_arrays()
        if self._down_links:
            # Degraded WAN: unreachable origins take the scalar walk's
            # routing-span branch; delegate the whole epoch.
            return super()._serve_epoch(batch)
        state = self._state
        if state.version != self._csr_version:
            if bool((state.holder < 0).any()):  # pragma: no cover - restores
                return super()._serve_epoch(batch)  # precede serve in step()
            self._csr = build_slot_csr(
                state.R,
                state.holder,
                self._dc_of_array,
                self._capacity_cache,
                self._tables.num_dcs,
                self.cluster.num_servers,
            )
            self._holder_dc_cache = self._dc_of_array[state.holder]
            self._csr_version = state.version
        assert self._csr is not None
        with self.profiler.span("columnar-serve"):
            return serve_columnar(
                batch,
                state.holder,
                self._holder_dc_cache,
                self._csr,
                self._tables,
                self.cluster.num_servers,
                work=self.work,
            )

    def _blocking_probabilities(self, load: np.ndarray) -> np.ndarray:
        self._refresh_server_arrays()
        return erlang_b_vector(
            load,
            self._capacity_cache,
            self.config.cluster.service_slots,
            self._alive_mask_array(),
        )

    # ------------------------------------------------------------------
    # Record-phase overrides
    # ------------------------------------------------------------------
    def _alive_mask_array(self) -> np.ndarray:
        # Liveness only changes in the membership phase, before any
        # reader runs, so one snapshot per epoch is exact.
        epoch = self.clock.epoch
        if (
            epoch != self._alive_epoch
            or self._alive_cache.shape[0] != self.cluster.num_servers
        ):
            self._alive_cache = super()._alive_mask_array()
            self._alive_epoch = epoch
        return self._alive_cache

    def _alive_server_count(self) -> int:
        return int(np.count_nonzero(self._alive_mask_array()))

    def _total_replicas(self) -> int:
        if self._state.version != self._total_version:
            self._total_cache = int(self._state.R.sum())
            self._total_version = self._state.version
        return self._total_cache

    def _ensure_mask_cache(self) -> None:
        """Refresh the replica-cell index cache when the layout moved."""
        state = self._state
        if state.version == self._mask_version and state.R.shape == self._mask_shape:
            return
        rows, cols = np.nonzero(state.R > 0)
        self._mask_rows = rows
        self._mask_cols = cols
        self._mask_cap = self._server_capacity_array()[cols]
        self._mask_cnt_int = state.R[rows, cols]
        self._mask_cnt_f = self._mask_cnt_int.astype(np.float64)
        self._mask_cap_ok = not bool((self._mask_cap <= 0).any())
        self._mask_version = state.version
        self._mask_shape = state.R.shape

    def _utilization_value(
        self, served_server: np.ndarray, counts: np.ndarray, capacities: np.ndarray
    ) -> float:
        """Eq. 21 via cached replica-cell indices, bit-identical.

        Divide and clamp run on exactly the masked cells (same per-cell
        IEEE-754 ops as the dense formula); every other cell of the
        fill matrix is an exact 0.0 in both versions, so the final
        full-matrix ``sum`` reduces the same values in the same order.
        """
        self._ensure_mask_cache()
        total = self._total_replicas()
        if total == 0:
            return 0.0
        if not self._mask_cap_ok:
            raise SimulationError(
                "replica-holding servers must have positive capacity"
            )
        fills = self._fills
        if fills.shape != served_server.shape:
            fills = np.zeros_like(served_server)
            self._fills = fills
        vals = served_server[self._mask_rows, self._mask_cols] / self._mask_cap
        fills[self._mask_rows, self._mask_cols] = np.minimum(vals, self._mask_cnt_f)
        out = float(fills.sum() / total)
        fills[self._mask_rows, self._mask_cols] = 0.0
        return out

    def _load_cv_value(self, served_server: np.ndarray, counts: np.ndarray) -> float:
        """Normalised Eq. 26 via cached replica-cell indices."""
        self._ensure_mask_cache()
        total = self._total_replicas()
        if total == 0:
            return 0.0
        # Divide by the float64 mirror of the counts: same IEEE-754
        # quotient bits (int64→float64 is exact below 2**53), but the
        # dtype transition is explicit instead of numpy's promotion.
        per_copy = served_server[self._mask_rows, self._mask_cols] / self._mask_cnt_f
        weights = self._mask_cnt_f
        mean = float((per_copy * weights).sum() / total)
        if mean <= 0.0:
            return 0.0
        var = float((weights * (per_copy - mean) ** 2).sum() / total)
        return float(np.sqrt(max(0.0, var)) / mean)

    def _server_imbalance_value(
        self, per_server_load: np.ndarray, alive_mask: np.ndarray
    ) -> float:
        # With every server alive the boolean mask copies the whole
        # array; ``std`` over the original buffer reduces the same
        # values in the same order.
        if self._alive_server_count() == self.cluster.num_servers:
            return float(per_server_load.std())
        return server_load_imbalance(per_server_load, alive_mask)

    def _availability_summary(self) -> AvailabilitySummary:
        """Table-driven Eq. 9 roll-up, bit-identical to the scalar one.

        Per-count availabilities come from a lookup table whose entries
        are computed by the *scalar* :func:`availability_at_least_one`,
        and the mean uses ``np.add.accumulate`` — the same left-to-right
        addition order as the scalar ``sum()`` (``0.0 + a0 == a0``
        exactly, so the missing leading zero cannot change a bit).
        """
        state = self._state
        if state.version == self._avail_version and self._avail_cache is not None:
            return self._avail_cache
        counts = state.replica_counts()
        cmax = int(counts.max(initial=0))
        table = self._avail_table
        if cmax >= table.shape[0]:
            failure_rate = self.config.rfh.failure_rate
            vals = table.tolist()
            for r in range(table.shape[0], cmax + 1):
                vals.append(availability_at_least_one(r, failure_rate))
            table = np.array(vals, dtype=np.float64)
            self._avail_table = table
        av = table[counts]
        num = counts.shape[0]
        self._avail_cache = AvailabilitySummary(
            fraction_meeting_floor=int(np.count_nonzero(counts >= self.rmin)) / num,
            mean_availability=float(np.add.accumulate(av)[-1]) / num,
            min_availability=float(av.min()),
            lost_partitions=int(np.count_nonzero(counts == 0)),
        )
        self._avail_version = state.version
        return self._avail_cache
