"""Dense mirrors of the authoritative scalar state.

:class:`SimState` is the columnar engine's view of the
:class:`~repro.cluster.replicas.ReplicaMap`: a ``(P, S)`` replica-count
matrix plus a partition→holder index, kept in sync through the map's
mutation callbacks (``attach_mirror``) instead of O(P·S) rebuilds.  The
``ReplicaMap`` stays the single source of truth — every mutation still
goes through it, and the sanitizer keeps fingerprinting the map itself —
so the mirror can never *cause* divergence, only go stale (guarded by
the version counter and the equivalence suite).
"""

from __future__ import annotations

import numpy as np

from ...cluster.replicas import ReplicaMap

__all__ = ["SimState"]


class SimState:
    """Columnar replica-layout mirror.

    Attributes
    ----------
    R:
        ``(P, S)`` int64 replica-count matrix (the paper's ``m_ikt``).
        ``S`` grows in place when servers join.
    holder:
        ``(P,)`` int64 primary-holder server id per partition; ``-1``
        marks a partition whose every copy is lost.
    version:
        Monotonic mutation counter; derived caches (slot CSR,
        availability summary) key off it.
    """

    __slots__ = ("R", "holder", "version", "_num_partitions", "_counts")

    def __init__(self, num_partitions: int, num_servers: int) -> None:
        self._num_partitions = num_partitions
        self.R = np.zeros((num_partitions, num_servers), dtype=np.int64)
        self.holder = np.full(num_partitions, -1, dtype=np.int64)
        self.version = 0
        # Per-partition copy totals, maintained incrementally by
        # ``on_count`` (integer add/subtract, so always exactly the row
        # sum of ``R``) — callers treat the array as read-only.
        self._counts = np.zeros(num_partitions, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    @property
    def num_servers(self) -> int:
        return int(self.R.shape[1])

    def replica_counts(self) -> np.ndarray:
        """Per-partition total copies (length P, read-only)."""
        return self._counts

    # ------------------------------------------------------------------
    # ReplicaMap mirror protocol
    # ------------------------------------------------------------------
    def on_count(self, partition: int, sid: int, count: int) -> None:
        """One (partition, server) count changed on the authoritative map."""
        if sid >= self.R.shape[1]:
            self.ensure_servers(sid + 1)
        self._counts[partition] += count - self.R[partition, sid]
        self.R[partition, sid] = count
        self.version += 1

    def on_holder(self, partition: int, sid: int | None) -> None:
        """The primary-holder pointer moved (``None`` = all copies lost)."""
        self.holder[partition] = -1 if sid is None else sid
        self.version += 1

    def ensure_servers(self, num_servers: int) -> None:
        """Grow the server axis (joins only ever append columns)."""
        if num_servers <= self.R.shape[1]:
            return
        grown = np.zeros((self._num_partitions, num_servers), dtype=np.int64)
        grown[:, : self.R.shape[1]] = self.R
        self.R = grown
        self.version += 1

    # ------------------------------------------------------------------
    def sync(self, replicas: ReplicaMap, num_servers: int) -> None:
        """Full resync from the authoritative map (attach time)."""
        self.ensure_servers(num_servers)
        self.R[:, :] = 0
        for partition in range(self._num_partitions):
            for sid, count in replicas.servers_with(partition):
                self.R[partition, sid] = count
            self.holder[partition] = (
                replicas.holder(partition) if replicas.has_holder(partition) else -1
            )
        np.sum(self.R, axis=1, out=self._counts)
        self.version += 1
