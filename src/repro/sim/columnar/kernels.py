"""Vectorized epoch kernels (Eqs. 2–8 overflow recursion, Eq. 18 Erlang-B).

Bit-exactness is the design constraint, not an aspiration.  Every kernel
here reproduces the scalar reference walk *operation for operation* on
the IEEE-754 level:

* **Slot drain.**  The scalar walk drains a flow through one
  datacenter's replica slots as ``take = min(cap, amount); amount -=
  take``.  ``np.subtract.accumulate`` over ``[amount, cap_0, cap_1,
  ...]`` produces exactly the same running values while the flow is
  positive (the identical subtractions in the identical order), and
  after exhaustion ``take = min(cap, max(running, 0.0))`` yields exact
  zeros — so served counts, remaining capacities and the post-drain
  amount are bit-identical, with the whole slot loop replaced by one
  vectorized accumulate.
* **Conjunction ordering.**  Flows that meet at one datacenter drain
  shared slots in origin order (the scalar walk's determinism rule).
  Each level is decomposed into *rank sets*: the k-th flow of every
  (partition, datacenter) group forms rank k; ranks run sequentially
  and within a rank all groups are memory-disjoint, so each rank is one
  batched 2-D drain.
* **Reduction contract.**  Hop/distance/SLA totals are accumulated per
  flow in (level, slot) order — the same per-flow ``absorbed = entry −
  amount`` terms the scalar walk now computes — and reduced with the
  same final ``np.sum`` over the same flow order.

Padding never perturbs state: a dedicated sentinel slot with zero
capacity (and a sentinel server column on the served buffer) absorbs
all padded lanes, whose writes are exact no-ops by construction.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

import numpy as np

from ...core.traffic import ServiceResult
from .tables import RouterTables

if TYPE_CHECKING:
    from ...obs.perf.counters import WorkCounters
    from ...workload.query import QueryBatch

__all__ = ["SlotCSR", "build_slot_csr", "serve_columnar", "erlang_b_vector"]

#: Below this many draining flows a level is walked in a plain Python
#: loop (the scalar reference sequence verbatim) — per-call numpy
#: overhead dwarfs the arithmetic at these sizes.  Both paths produce
#: bit-identical results, so the threshold is purely a speed knob.
_SMALL_DRAIN = 64

#: Flows that survive level 0 and still need the overflow walk.  At or
#: below this count the remaining levels run as one Python walk (the
#: scalar sequence verbatim, fed from the precomputed tables); above it
#: the vectorized per-level machinery takes over.  A speed knob only —
#: both tails are bit-identical.
_PY_TAIL = 512

#: Largest ``P * D`` key space for which the CSR keeps dense
#: key → (start, run) tables.  Dense tables cost O(P · D) memory and
#: build time per layout change — negligible at the paper's scale but
#: ruinous at 10⁵ partitions × 100 datacenters (10⁷-entry tables per
#: epoch); past the threshold lookups run through ``searchsorted`` on
#: the sorted key column instead.  Both modes address the identical
#: slot runs, so this is a speed knob only.
_DENSE_KEYS = 1 << 20


class SlotCSR:
    """Replica capacity slots in drain order, indexed by (partition, dc).

    Slots are sorted by ``(partition, datacenter, holder-last, sid)`` —
    the scalar walk's deterministic drain order — and addressed through
    ``searchsorted`` on the composite key ``partition * D + dc``.  One
    extra sentinel entry (capacity 0, server id ``S``) terminates the
    arrays so padded drain lanes have a harmless landing slot.
    """

    __slots__ = (
        "key",
        "sid_ext",
        "cap",
        "n_slots",
        "cap_ext",
        "lo_dense",
        "run_dense",
        "lo_list",
        "run_list",
        "sid_list",
        "key_list",
    )

    def __init__(
        self,
        key: np.ndarray,
        sid_ext: np.ndarray,
        cap: np.ndarray,
        num_keys: int,
    ) -> None:
        self.key = key
        self.sid_ext = sid_ext
        self.cap = cap
        self.n_slots = int(key.shape[0])
        # Per-epoch remaining-capacity template: the sentinel slot rides
        # at the end so ``slot_rem`` is a single copy, no concatenate.
        self.cap_ext = np.concatenate([cap, np.zeros(1, dtype=np.float64)])
        # Dense (partition * D + dc) → slot-run start/length tables; one
        # searchsorted at build time replaces two per level per epoch.
        # Past _DENSE_KEYS the tables would dwarf the slots themselves,
        # so lookups fall back to searchsorted on the key column.
        self.lo_dense: np.ndarray | None
        self.run_dense: np.ndarray | None
        if num_keys <= _DENSE_KEYS:
            bounds = np.searchsorted(key, np.arange(num_keys + 1))
            self.lo_dense = bounds[:-1]
            self.run_dense = np.diff(bounds)
        else:
            self.lo_dense = None
            self.run_dense = None
        # Python-list mirrors for the tail walk, built on first use.
        self.lo_list: list[int] | None = None
        self.run_list: list[int] | None = None
        self.sid_list: list[int] | None = None
        self.key_list: list[int] | None = None

    def runs(self, group_key: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Slot-run (start, length) per key — dense gather or bisection.

        Both modes read the same sorted slot ranges, so drains are
        bit-identical either way.
        """
        if self.lo_dense is not None and self.run_dense is not None:
            return self.lo_dense[group_key], self.run_dense[group_key]
        lo = np.searchsorted(self.key, group_key)
        hi = np.searchsorted(self.key, group_key + 1)
        return lo, hi - lo


def build_slot_csr(
    replica_matrix: np.ndarray,
    holder: np.ndarray,
    dc_of: np.ndarray,
    capacities: np.ndarray,
    num_dcs: int,
    num_servers: int,
) -> SlotCSR:
    """Compile the replica layout into drain-ordered capacity slots.

    ``replica_matrix[p, sid] > 0`` implies the server is alive (copies
    are dropped with their server and never placed on dead ones), so no
    liveness mask is needed.  Capacity per slot is ``count *
    replica_capacity`` — the very multiply the scalar layout builder
    performs.
    """
    pp, ss = np.nonzero(replica_matrix)
    vals = replica_matrix[pp, ss]
    slot_dc = dc_of[ss]
    is_holder = ss == holder[pp]
    # Primary sort partition, then datacenter, holder server last within
    # its datacenter, then ascending sid: the scalar drain order.
    order = np.lexsort((ss, is_holder, slot_dc, pp))
    ss = ss[order]
    cap = vals[order].astype(np.float64) * capacities[ss]
    key = pp[order] * num_dcs + slot_dc[order]
    sid_ext = np.concatenate([ss, np.array([num_servers], dtype=np.int64)])
    return SlotCSR(key, sid_ext, cap, int(replica_matrix.shape[0]) * num_dcs)


def _drain_batch(
    amounts: np.ndarray,
    lo: np.ndarray,
    run: np.ndarray,
    flow_partition: np.ndarray,
    slot_rem: np.ndarray,
    sid_ext: np.ndarray,
    served_flat: np.ndarray,
    sentinel: int,
    served_width: int,
) -> np.ndarray:
    """Drain a batch of memory-disjoint flows; returns post-drain amounts.

    Each row is one flow with a contiguous slot run ``[lo, lo + run)``;
    rows belong to distinct (partition, dc) groups, so their slots and
    served cells never collide.  Rows are padded to the widest run with
    the sentinel slot (capacity 0), whose takes are exact zeros.
    """
    width = int(run.max())
    col = np.arange(width)
    sidx = lo[:, None] + col[None, :]
    sidx = np.where(col[None, :] < run[:, None], sidx, sentinel)
    caps = slot_rem[sidx]
    seq = np.subtract.accumulate(
        np.concatenate([amounts[:, None], caps], axis=1), axis=1
    )
    take = np.minimum(caps, np.maximum(seq[:, :-1], 0.0))
    slot_rem[sidx] = caps - take
    # Real (partition, sid) pairs are unique within the batch; sentinel
    # lanes add exact zeros, so buffered fancy indexing is safe.
    srv = flow_partition[:, None] * served_width + sid_ext[sidx]
    served_flat[srv] += take
    return np.maximum(seq[:, -1], 0.0)


def _drain_level(
    amounts: np.ndarray,
    group_key: np.ndarray,
    lo: np.ndarray,
    run: np.ndarray,
    has_slots: np.ndarray,
    flow_partition: np.ndarray,
    slot_rem: np.ndarray,
    sid_ext: np.ndarray,
    served_flat: np.ndarray,
    sentinel: int,
    served_width: int,
    unique_keys: bool = False,
) -> np.ndarray:
    """Drain every flow of one path level; returns the new amount vector.

    Flows sharing a (partition, dc) group are peeled into rank sets (the
    k-th flow of every group, in origin order) so shared slots drain in
    the scalar walk's deterministic order.  ``unique_keys`` asserts the
    caller knows no two flows share a group (level 0 of an origin-rooted
    route table), skipping the duplicate scan.
    """
    out = amounts.copy()
    n = int(np.count_nonzero(has_slots))
    if n <= _SMALL_DRAIN:
        # Scalar-sequence walk: flows in origin order, slots in drain
        # order — the exact reference arithmetic, no batching.
        idx = np.nonzero(has_slots)[0]
        a_list = out[idx].tolist()
        lo_list = lo[idx].tolist()
        run_list = run[idx].tolist()
        row_list = (flow_partition[idx] * served_width).tolist()
        sids = sid_ext
        for i in range(n):
            a = a_list[i]
            base = lo_list[i]
            row = row_list[i]
            for s in range(base, base + run_list[i]):
                cap = slot_rem[s]
                if cap <= 0.0:
                    continue
                take = cap if cap < a else a
                slot_rem[s] = cap - take
                served_flat[row + sids[s]] += take
                a -= take
                if a <= 0.0:
                    break
            a_list[i] = a
        out[idx] = a_list
        return out
    am = amounts[has_slots]
    lom = lo[has_slots]
    runm = run[has_slots]
    fpm = flow_partition[has_slots]
    if unique_keys:
        out[has_slots] = _drain_batch(
            am, lom, runm, fpm, slot_rem, sid_ext, served_flat, sentinel, served_width
        )
        return out
    gkm = group_key[has_slots]
    order = np.argsort(gkm, kind="stable")
    sorted_keys = gkm[order]
    if n > 1 and bool((sorted_keys[1:] == sorted_keys[:-1]).any()):
        # Conjunction groups: assign each flow its rank within its group.
        ridx = np.arange(n)
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
        start = np.maximum.accumulate(np.where(new_group, ridx, 0))
        rank = ridx - start
        result = np.empty(n, dtype=np.float64)
        for r in range(int(rank.max()) + 1):
            sel = order[rank == r]
            result[sel] = _drain_batch(
                am[sel],
                lom[sel],
                runm[sel],
                fpm[sel],
                slot_rem,
                sid_ext,
                served_flat,
                sentinel,
                served_width,
            )
    else:
        result = _drain_batch(
            am, lom, runm, fpm, slot_rem, sid_ext, served_flat, sentinel, served_width
        )
    out[has_slots] = result
    return out


def _walk_tail_python(
    cur: np.ndarray,
    amount: np.ndarray,
    plen_cur: np.ndarray,
    flow_p: np.ndarray,
    flow_o: np.ndarray,
    dest: np.ndarray,
    tables: RouterTables,
    csr: SlotCSR,
    slot_rem: np.ndarray,
    served_flat: np.ndarray,
    served_width: int,
    unserved: np.ndarray,
    f_hops: np.ndarray,
    f_kms: np.ndarray,
    f_miss: np.ndarray,
    num_dcs: int,
    traffic_p: list[np.ndarray],
    traffic_dc_l: list[np.ndarray],
    traffic_am: list[np.ndarray],
    start_level: int = 1,
) -> None:
    """Walk levels >= 1 for a small surviving flow set, in Python.

    This is the scalar reference sequence verbatim: level-synchronous,
    flows in origin order, slots in drain order, with every arithmetic
    step performed as the identical IEEE-754 double operation — Python
    floats and float64 lanes agree bit for bit.  Zero-valued stat
    charges (``absorbed == 0.0``) are skipped; adding literal ``+0.0``
    to the non-negative accumulators is an exact no-op.

    Array traffic is batched: per-flow hop/km/miss accumulators ride as
    Python floats (seeded from, and written back to, the ``f_*`` rows —
    each flow owns its slot, so the add order is unchanged), and the
    served/unserved scatter-adds are replayed by ``np.add.at`` in the
    exact order they were recorded (sequential, hence bit-identical).
    """
    if csr.sid_list is None:
        csr.sid_list = csr.sid_ext.tolist()
        if csr.lo_dense is not None and csr.run_dense is not None:
            csr.lo_list = csr.lo_dense.tolist()
            csr.run_list = csr.run_dense.tolist()
        else:
            csr.key_list = csr.key.tolist()
    sid_l = csr.sid_list
    dense = csr.lo_list is not None
    lo_l: list[int] = csr.lo_list if csr.lo_list is not None else []
    run_l: list[int] = csr.run_list if csr.run_list is not None else []
    key_l: list[int] = csr.key_list if csr.key_list is not None else []
    n_keys = len(key_l)
    rows3 = tables.rows3
    rem = slot_rem.tolist()
    # Per-flow state in parallel lists indexed 0..n-1; ``alive`` holds
    # the indices still walking.  Accumulators start at the flows' f_*
    # entries — exact zeros when the table proves level 0 charged
    # nothing, so the reads are skipped then.
    n = cur.shape[0]
    am_l = amount.tolist()
    plen_l = plen_cur.tolist()
    p_l = flow_p[cur].tolist()
    rows_l = [rows3[o][h] for o, h in zip(flow_o[cur].tolist(), dest[cur].tolist())]
    if tables.level0_stats_free and start_level == 1:
        hh_l = [0.0] * n
        kk_l = [0.0] * n
        mm_l = [0.0] * n
    else:
        hh_l = f_hops[cur].tolist()
        kk_l = f_kms[cur].tolist()
        mm_l = f_miss[cur].tolist()
    alive = list(range(n))
    t_p: list[int] = []
    t_dc: list[int] = []
    t_am: list[float] = []
    t_p_append = t_p.append
    t_dc_append = t_dc.append
    t_am_append = t_am.append
    s_idx: list[int] = []
    s_take: list[float] = []
    s_idx_append = s_idx.append
    s_take_append = s_take.append
    u_p: list[int] = []
    u_a: list[float] = []
    level = start_level
    while alive:
        nxt: list[int] = []
        nxt_append = nxt.append
        for j in alive:
            a = am_l[j]
            p = p_l[j]
            pr, kr, mr = rows_l[j]
            dc = pr[level]
            t_p_append(p)
            t_dc_append(dc)
            t_am_append(a)
            k = p * num_dcs + dc
            if dense:
                base = lo_l[k]
                r = run_l[k]
            else:
                base = bisect_left(key_l, k)
                r = 0
                while base + r < n_keys and key_l[base + r] == k:
                    r += 1
            if r:
                entry = a
                for s in range(base, base + r):
                    cap = rem[s]
                    if cap <= 0.0:
                        continue
                    take = cap if cap < a else a
                    rem[s] = cap - take
                    s_idx_append(p * served_width + sid_l[s])
                    s_take_append(take)
                    a -= take
                    if a <= 0.0:
                        break
                absorbed = entry - a
                if absorbed:
                    hh_l[j] += absorbed * level
                    kk_l[j] += absorbed * kr[level]
                    if mr[level]:
                        mm_l[j] += absorbed
            if plen_l[j] == level + 1:
                if a > 0.0:
                    # Blocked at the holder: full path charged, SLA miss.
                    u_p.append(p)
                    u_a.append(a)
                    hh_l[j] += a * level
                    kk_l[j] += a * kr[level]
                    mm_l[j] += a
            elif a > 0.0:
                am_l[j] = a
                nxt_append(j)
        alive = nxt
        level += 1
    f_hops[cur] = hh_l
    f_kms[cur] = kk_l
    f_miss[cur] = mm_l
    if s_idx:
        np.add.at(
            served_flat,
            np.asarray(s_idx, dtype=np.int64),
            np.asarray(s_take, dtype=np.float64),
        )
    if u_p:
        np.add.at(
            unserved,
            np.asarray(u_p, dtype=np.int64),
            np.asarray(u_a, dtype=np.float64),
        )
    if t_p:
        traffic_p.append(np.asarray(t_p, dtype=np.int64))
        traffic_dc_l.append(np.asarray(t_dc, dtype=np.int64))
        traffic_am.append(np.asarray(t_am, dtype=np.float64))


def serve_columnar(
    queries: "QueryBatch",
    holder: np.ndarray,
    holder_dc: np.ndarray,
    csr: SlotCSR,
    tables: RouterTables,
    num_servers: int,
    work: "WorkCounters | None" = None,
) -> ServiceResult:
    """Vectorized Eqs. 2–8 service walk over one epoch's query matrix.

    Preconditions (the engine guarantees them, falling back to the
    scalar path otherwise): every partition has a holder, the WAN is
    fully connected (no down links), and a latency model is attached.

    Level 0 (every flow active) is always vectorized; the overflow tail
    runs as a Python walk when few flows survive it and through the
    vectorized per-level machinery otherwise.
    """
    counts = queries.counts
    num_partitions, num_dcs = counts.shape
    served_width = num_servers + 1  # one sentinel server column
    served = np.zeros((num_partitions, served_width), dtype=np.float64)
    traffic = np.zeros((num_partitions, num_dcs), dtype=np.float64)
    unserved = np.zeros(num_partitions, dtype=np.float64)
    holder_flow = np.zeros(num_partitions, dtype=np.float64)
    row_any = counts.any(axis=1)
    if work is not None:
        work.partitions_scanned += int(np.count_nonzero(row_any))
    flow_p, flow_o = np.nonzero(counts)
    if flow_p.shape[0] == 0:
        return ServiceResult(
            served_server=served[:, :num_servers],
            traffic_dc=traffic,
            unserved=unserved,
            holder_traffic=holder_flow,
            hop_sum=0.0,
            distance_sum_km=0.0,
            sla_miss=0.0,
            query_count=queries.total,
        )
    # One flow per nonzero (partition, origin) cell in row-major order —
    # the same flow slots, in the same order, as the scalar walk.
    dest = holder_dc[flow_p]
    plen_f = tables.plen[flow_o, dest]  # (F,) path node counts
    if work is not None:
        work.graph_hops += int(plen_f.sum())
    num_flows = int(flow_p.shape[0])
    fbuf = np.zeros((3, num_flows), dtype=np.float64)
    f_hops, f_kms, f_miss = fbuf

    slot_rem = csr.cap_ext.copy()
    sentinel = csr.n_slots
    sid_ext = csr.sid_ext
    served_flat = served.reshape(-1)
    amount = counts[flow_p, flow_o].astype(np.float64)
    max_level = int(plen_f.max())
    # Traffic contributions are collected per level and applied in one
    # ordered scatter-add at the end: level-major, flow-minor — exactly
    # the scalar walk's accumulation order within each partition row.
    # Origin-rooted tables make the level-0 gather free: path[o,h,0]==o.
    if tables.origin_start:
        dc0 = flow_o
    else:
        dc0 = tables.path[flow_o, dest, 0]
    traffic_p: list[np.ndarray] = [flow_p]
    traffic_dc_l: list[np.ndarray] = [dc0]
    traffic_am: list[np.ndarray] = [amount]

    # ---- Level 0: every flow is active, no compression needed. ----
    group_key = flow_p * num_dcs + dc0
    lo, run = csr.runs(group_key)
    has_slots = run > 0
    if bool(has_slots.any()):
        entry = amount
        amount = _drain_level(
            amount,
            group_key,
            lo,
            run,
            has_slots,
            flow_p,
            slot_rem,
            sid_ext,
            served_flat,
            sentinel,
            served_width,
            unique_keys=tables.origin_start,
        )
        # One charge per (flow, level): everything absorbed here shares
        # the level's hop count, distance and SLA verdict.  When the
        # table proves level-0 charges are exact zeros (hop factor 0,
        # zero distance, no SLA miss), the adds are exact no-ops and
        # are skipped wholesale.
        if not tables.level0_stats_free:
            absorbed = entry - amount
            km0 = tables.km[flow_o, dest, 0]
            f_kms += absorbed * km0
            f_miss += np.where(tables.miss[flow_o, dest, 0], absorbed, 0.0)
    pos = amount > 0.0
    blocked = pos & (plen_f == 1)
    if bool(blocked.any()):
        # Single-node path and still overflowing: blocked at the holder.
        # ``amount`` is not zeroed: every continuation below masks on
        # ``plen_f > 1``, which excludes all single-node flows.
        idx = np.nonzero(blocked)[0]
        overflow = amount[idx]
        np.add.at(unserved, flow_p[idx], overflow)
        if not tables.level0_stats_free:
            f_kms[idx] += overflow * tables.km[flow_o[idx], dest[idx], 0]
        f_miss[idx] += overflow

    # ---- Levels >= 1: Python walk when few flows survive. ----
    if max_level > 1:
        keep = pos & (plen_f > 1)
        cur = np.nonzero(keep)[0]
        if cur.shape[0] and cur.shape[0] <= _PY_TAIL:
            _walk_tail_python(
                cur,
                amount[keep],
                plen_f[keep],
                flow_p,
                flow_o,
                dest,
                tables,
                csr,
                slot_rem,
                served_flat,
                served_width,
                unserved,
                f_hops,
                f_kms,
                f_miss,
                num_dcs,
                traffic_p,
                traffic_dc_l,
                traffic_am,
            )
        elif cur.shape[0]:
            paths_f = tables.path[flow_o, dest]  # (F, Lmax) dc per level
            km_f = tables.km[flow_o, dest]  # (F, Lmax) origin→level km
            miss_f = tables.miss[flow_o, dest]  # (F, Lmax) SLA-miss flags
            amount = amount[keep]
            plen_cur = plen_f[keep]
            for level in range(1, max_level):
                if level > 1:
                    keep = (amount > 0.0) & (plen_cur > level)
                    cur = cur[keep]
                    if cur.shape[0] == 0:
                        break
                    amount = amount[keep]
                    plen_cur = plen_cur[keep]
                    if cur.shape[0] <= _PY_TAIL:
                        # Few enough survivors now: finish in Python.
                        _walk_tail_python(
                            cur,
                            amount,
                            plen_cur,
                            flow_p,
                            flow_o,
                            dest,
                            tables,
                            csr,
                            slot_rem,
                            served_flat,
                            served_width,
                            unserved,
                            f_hops,
                            f_kms,
                            f_miss,
                            num_dcs,
                            traffic_p,
                            traffic_dc_l,
                            traffic_am,
                            start_level=level,
                        )
                        break
                part = flow_p[cur]
                dc_level = paths_f[cur, level]
                traffic_p.append(part)
                traffic_dc_l.append(dc_level)
                traffic_am.append(amount)
                group_key = part * num_dcs + dc_level
                lo, run = csr.runs(group_key)
                has_slots = run > 0
                if bool(has_slots.any()):
                    entry = amount
                    amount = _drain_level(
                        amount,
                        group_key,
                        lo,
                        run,
                        has_slots,
                        part,
                        slot_rem,
                        sid_ext,
                        served_flat,
                        sentinel,
                        served_width,
                    )
                    absorbed = entry - amount
                    f_hops[cur] += absorbed * float(level)
                    f_kms[cur] += absorbed * km_f[cur, level]
                    f_miss[cur] += np.where(miss_f[cur, level], absorbed, 0.0)
                blocked = (plen_cur == level + 1) & (amount > 0.0)
                if bool(blocked.any()):
                    idx = cur[blocked]
                    overflow = amount[blocked]
                    np.add.at(unserved, flow_p[idx], overflow)
                    f_hops[idx] += overflow * float(level)
                    f_kms[idx] += overflow * km_f[idx, level]
                    f_miss[idx] += overflow
                    amount = np.where(blocked, 0.0, amount)
    np.add.at(
        traffic,
        (np.concatenate(traffic_p), np.concatenate(traffic_dc_l)),
        np.concatenate(traffic_am),
    )
    active = np.nonzero(row_any)[0]
    holder_flow[active] = served[active, holder[active]] + unserved[active]
    return ServiceResult(
        served_server=served[:, :num_servers],
        traffic_dc=traffic,
        unserved=unserved,
        holder_traffic=holder_flow,
        hop_sum=float(np.sum(f_hops)),
        distance_sum_km=float(np.sum(f_kms)),
        sla_miss=float(np.sum(f_miss)),
        query_count=queries.total,
    )


def erlang_b_vector(
    load: np.ndarray,
    capacities: np.ndarray,
    service_slots: int,
    alive: np.ndarray,
) -> np.ndarray:
    """Eq. 18 Erlang-B for every server at once (lane-exact to the scalar).

    Each lane runs the identical stable recurrence ``B(k) = aB / (k +
    aB)``; dead servers report 1.0 and zero-load servers 0.0, matching
    :func:`repro.core.blocking.server_blocking_probabilities` bit for
    bit.
    """
    offered = load / capacities
    b = np.ones_like(offered)
    ab = np.empty_like(offered)
    den = np.empty_like(offered)
    for k in range(1, service_slots + 1):
        np.multiply(offered, b, out=ab)
        np.add(ab, float(k), out=den)
        np.divide(ab, den, out=b)
    out = np.where((offered > 0.0) & alive, b, 0.0)
    out[~alive] = 1.0
    return out
