"""Columnar vectorized epoch engine.

The scalar :class:`~repro.sim.engine.Simulation` walks partitions in
Python loops; this package keeps the same world objects (cluster, replica
map, RNG tree, policy) but mirrors the replica layout into dense numpy
arrays (:class:`SimState`) and replaces the serve/observe/record hot
paths with array kernels.

The contract (DESIGN.md §"Columnar engine"): **bit-identical results**.
Decision ordering, RNG draw sequences and every recorded metric value
match the scalar engine exactly, so the DeterminismSanitizer fingerprint
chain is identical between engines for the same seed.  The differential
suite ``tests/test_columnar_equivalence.py`` enforces this.
"""

from .engine import ColumnarSimulation
from .state import SimState

__all__ = ["ColumnarSimulation", "SimState"]
