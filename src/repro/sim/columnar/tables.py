"""Static per-topology lookup tables for the columnar serve kernel.

The WAN never changes during a run (chaos link cuts swap in a *different*
router, on which the columnar engine falls back to the scalar path), so
every routing quantity the overflow walk needs is a pure function of the
``(origin, holder_dc)`` pair and the path level.  :class:`RouterTables`
materialises them once per router:

* ``path[o, h, l]`` — datacenter at level ``l`` of the route ``o → h``;
* ``plen[o, h]`` — node count of the route (``hops + 1``);
* ``km[o, h, l]`` — ``router.distance_km(o, path[o, h, l])``;
* ``miss[o, h, l]`` — whether a query absorbed there violates the SLA.

Every float in ``km`` and every flag in ``miss`` is produced by calling
the *scalar* router / latency-model methods at build time, so the kernel
reads back the exact same values the scalar walk computes per query —
table lookups cannot introduce rounding differences.
"""

from __future__ import annotations

import numpy as np

from ...metrics.latency import LatencyModel
from ...net.routing import Router

__all__ = ["RouterTables"]


class RouterTables:
    """Dense route/distance/SLA tables for one (router, latency model)."""

    __slots__ = (
        "path",
        "plen",
        "km",
        "miss",
        "num_dcs",
        "max_len",
        "origin_start",
        "level0_stats_free",
        "path_rows",
        "km_rows",
        "miss_rows",
        "rows3",
    )

    def __init__(self, router: Router, latency: LatencyModel) -> None:
        num_dcs = router.num_nodes
        max_len = 1
        for origin in range(num_dcs):
            for holder in range(num_dcs):
                max_len = max(max_len, len(router.path(origin, holder)))
        self.num_dcs = num_dcs
        self.max_len = max_len
        self.path = np.zeros((num_dcs, num_dcs, max_len), dtype=np.int64)
        self.plen = np.zeros((num_dcs, num_dcs), dtype=np.int64)
        self.km = np.zeros((num_dcs, num_dcs, max_len), dtype=np.float64)
        self.miss = np.zeros((num_dcs, num_dcs, max_len), dtype=bool)
        for origin in range(num_dcs):
            for holder in range(num_dcs):
                route = router.path(origin, holder)
                self.plen[origin, holder] = len(route)
                for level, dc in enumerate(route):
                    distance = router.distance_km(origin, dc)
                    self.path[origin, holder, level] = dc
                    self.km[origin, holder, level] = distance
                    self.miss[origin, holder, level] = (
                        latency.response_ms(distance, level) > latency.sla_ms
                    )
        for table in (self.path, self.plen, self.km, self.miss):
            table.setflags(write=False)
        # Kernel fast-path facts, proven against the built tables: every
        # route starts at its origin (level-0 group keys are therefore
        # unique per flow), and level-0 absorption charges zero distance
        # and no SLA miss (so those accumulator adds are exact no-ops).
        self.origin_start = bool(
            (self.path[:, :, 0] == np.arange(num_dcs)[:, None]).all()
        )
        self.level0_stats_free = bool(
            (self.km[:, :, 0] == 0.0).all()  # repro: noqa[REP004]
        ) and not bool(self.miss[:, :, 0].any())
        # Python-list mirrors for the kernel's tail walk; the lists hold
        # the same float64/bool/int objects the arrays do, so reads are
        # value-identical.  ``rows3[o][h]`` bundles one route's three
        # per-level rows so the walk fetches them with a single lookup.
        self.path_rows: list[list[list[int]]] = self.path.tolist()
        self.km_rows: list[list[list[float]]] = self.km.tolist()
        self.miss_rows: list[list[list[bool]]] = self.miss.tolist()
        self.rows3: list[list[tuple[list[int], list[float], list[bool]]]] = [
            [
                (self.path_rows[o][h], self.km_rows[o][h], self.miss_rows[o][h])
                for h in range(num_dcs)
            ]
            for o in range(num_dcs)
        ]
