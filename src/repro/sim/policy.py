"""The replication-policy contract the engine drives.

A policy is a pure observer: once per epoch the engine hands it an
:class:`~repro.sim.observation.EpochObservation` and the policy returns
the actions it wants applied.  The engine validates and applies them —
a policy can *request* anything, but storage gates, bandwidth budgets
and replica-map invariants are enforced centrally so all four paper
algorithms play by identical rules.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .actions import Action
from .observation import EpochObservation

__all__ = ["ReplicationPolicy"]


@runtime_checkable
class ReplicationPolicy(Protocol):
    """What the engine needs from a replication algorithm."""

    #: Short stable identifier used in metric series and reports
    #: ("rfh", "random", "owner", "request").
    name: str

    def decide(self, obs: EpochObservation) -> list[Action]:
        """Return the actions to apply at the end of ``obs.epoch``.

        Called exactly once per epoch with strictly increasing epochs.
        Implementations may keep internal state (e.g. EWMA smoothing of
        Eqs. 10/11) but must never mutate anything reachable from the
        observation.
        """
        ...
