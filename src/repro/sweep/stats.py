"""Cross-seed statistics for sweep groups.

Headline numbers from a single ``(policy, scenario, seed)`` run are
point estimates; judging replication dynamics from one trajectory is
exactly the failure mode the mean-field literature warns about.  A
sweep group folds the per-seed values of one metric into distribution
statistics — mean, stddev, p05/p95 and a bootstrap confidence interval
— so tables can print ``mean ± CI`` and ``repro sweepdiff`` can judge
CI overlap instead of single-run tail means.

The bootstrap is seeded through the repo's :class:`~repro.sim.rng.RngTree`
(stream ``"sweep-bootstrap"``, root derived from the manifest hash), so
merging the same cell artifacts twice yields byte-identical statistics.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..sim.rng import RngTree

__all__ = [
    "BOOTSTRAP_RESAMPLES",
    "CONFIDENCE",
    "bootstrap_rng",
    "format_mean_ci",
    "summarize",
]

#: Bootstrap resamples per statistic; enough for a stable 95% interval
#: over the handful-of-seeds group sizes sweeps run at.
BOOTSTRAP_RESAMPLES = 800

#: Two-sided confidence level for the bootstrap interval.
CONFIDENCE = 0.95


def bootstrap_rng(manifest_hash: str) -> np.random.Generator:
    """The seeded bootstrap stream for one sweep merge.

    The root seed is derived from the manifest's content hash, so the
    statistics are a pure function of the sweep configuration and the
    cell values — never of merge order or wall clock.
    """
    root = int(manifest_hash[:12] or "0", 16) % (2**31)
    return RngTree(root).stream("sweep-bootstrap")


def summarize(
    values: Sequence[float], rng: np.random.Generator
) -> dict[str, float | int]:
    """Distribution statistics over one group's per-seed values.

    Returns ``n``, ``mean``, ``stddev`` (sample, ddof=1 when n > 1),
    ``min``/``max``, ``p05``/``p95`` and the bootstrap CI bounds
    ``ci_lo``/``ci_hi`` (percentile method at :data:`CONFIDENCE`).
    Non-finite inputs are dropped first; an empty group yields NaNs
    with ``n == 0``.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    n = int(arr.size)
    if n == 0:
        nan = float("nan")
        return {
            "n": 0, "mean": nan, "stddev": nan, "min": nan, "max": nan,
            "p05": nan, "p95": nan, "ci_lo": nan, "ci_hi": nan,
        }
    mean = float(arr.mean())
    stddev = float(arr.std(ddof=1)) if n > 1 else 0.0
    p05, p95 = (float(v) for v in np.percentile(arr, (5.0, 95.0)))
    if n == 1:
        ci_lo = ci_hi = mean
    else:
        # Percentile bootstrap of the mean: resample indices so every
        # metric of a group draws the same index pattern only if the
        # caller reuses the generator sequentially (deterministic merge
        # order guarantees reproducibility either way).
        idx = rng.integers(0, n, size=(BOOTSTRAP_RESAMPLES, n))
        means = arr[idx].mean(axis=1)
        alpha = (1.0 - CONFIDENCE) / 2.0
        ci_lo, ci_hi = (
            float(v)
            for v in np.percentile(means, (100.0 * alpha, 100.0 * (1.0 - alpha)))
        )
    return {
        "n": n,
        "mean": mean,
        "stddev": stddev,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p05": p05,
        "p95": p95,
        "ci_lo": ci_lo,
        "ci_hi": ci_hi,
    }


def format_mean_ci(stats: dict[str, float | int], fmt: str = "{:.3f}") -> str:
    """``mean ± half-width`` cell text for report tables.

    The printed ``±`` is the half-width of the bootstrap CI around the
    mean; a single-seed group (zero-width interval) prints the bare
    mean so tables stay honest about what was measured.
    """
    mean = float(stats["mean"])
    if not math.isfinite(mean):
        return "–"
    lo, hi = float(stats["ci_lo"]), float(stats["ci_hi"])
    half = (hi - lo) / 2.0
    if int(stats["n"]) <= 1 or not math.isfinite(half):
        return fmt.format(mean)
    return f"{fmt.format(mean)} ± {fmt.format(half)}"
