"""Markdown reporting over a merged sweep artifact.

``repro sweep --report`` renders one table per ``(scenario, scale,
engine)`` slice: policies as rows, metrics as columns, each cell the
group's ``mean ± CI`` from :func:`repro.sweep.stats.format_mean_ci` —
the multi-seed counterpart of the single-run Table I in EXPERIMENTS.md.
Structured failures, when present, get their own section so a report is
never silently missing cells.
"""

from __future__ import annotations

from collections import OrderedDict

from .artifact import SweepArtifact

__all__ = ["REPORT_METRICS", "render_sweep"]

#: Metric columns in report order: ``(name, header, format)``.
REPORT_METRICS = (
    ("utilization", "utilization", "{:.3f}"),
    ("total_replicas", "replicas", "{:.1f}"),
    ("path_length", "path len", "{:.2f}"),
    ("load_imbalance", "imbalance", "{:.2f}"),
    ("sla_attainment", "SLA", "{:.3f}"),
    ("replication_cost", "repl cost", "{:.0f}"),
    ("migration_count", "migrations", "{:.0f}"),
)


def _split_group(group_key: str) -> tuple[str, str, str, str]:
    policy, scenario, scale, engine = group_key.split("/", 3)
    return policy, scenario, scale, engine


def render_sweep(artifact: SweepArtifact, *, title: str | None = None) -> str:
    """The sweep as a markdown report (``mean ± CI`` tables)."""
    from .stats import format_mean_ci

    manifest = artifact.manifest
    lines: list[str] = []
    lines.append(f"# {title or f'Sweep report: {manifest.name}'}")
    lines.append("")
    lines.append(
        f"- manifest hash `{manifest.manifest_hash}` | "
        f"{manifest.num_cells} cell(s): {artifact.num_ok} ok, "
        f"{artifact.num_failed} failed"
    )
    lines.append(
        f"- seeds {list(manifest.seeds)} | epochs {manifest.epochs} | "
        f"engines {list(manifest.engines)}"
    )
    extra = ""
    if artifact.meta.get("wall_s") is not None:
        extra = f" in {float(artifact.meta['wall_s']):.1f}s"
    workers = artifact.meta.get("max_workers")
    if workers is not None:
        extra += f" with {int(workers)} worker lane(s)"
    if extra:
        lines.append(f"- executed{extra}")
    lines.append(
        "- each value is the cross-seed mean ± half-width of the "
        "95% bootstrap CI (bare mean when a group holds one seed)"
    )
    lines.append("")

    # slice key (scenario, scale, engine) -> policy -> metric stats
    slices: dict[tuple[str, str, str], dict[str, dict]] = OrderedDict()
    for group_key, stats in artifact.groups.items():
        policy, scenario, scale, engine = _split_group(group_key)
        slices.setdefault((scenario, scale, engine), OrderedDict())[policy] = stats

    for (scenario, scale, engine), by_policy in slices.items():
        lines.append(f"## scenario `{scenario}` · scale `{scale}` · engine `{engine}`")
        lines.append("")
        present = [
            (name, header, fmt)
            for name, header, fmt in REPORT_METRICS
            if any(name in stats for stats in by_policy.values())
        ]
        header = "| policy | " + " | ".join(h for _, h, _ in present) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(present) + 1))
        for policy in manifest.policies:
            stats = by_policy.get(policy)
            if stats is None:
                continue
            row = [f"| {policy} "]
            for name, _, fmt in present:
                cell = (
                    format_mean_ci(stats[name], fmt) if name in stats else "–"
                )
                row.append(f"| {cell} ")
            lines.append("".join(row) + "|")
        lines.append("")

    if artifact.failures:
        lines.append("## failures")
        lines.append("")
        lines.append("| cell | kind | worker | error |")
        lines.append("|---|---|---|---|")
        for failure in artifact.failures:
            error = str(failure.get("error", "")).replace("|", "\\|")
            lines.append(
                f"| {failure.get('cell_id')} | {failure.get('kind')} "
                f"| {failure.get('worker')} | {error} |"
            )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
