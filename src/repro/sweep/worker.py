"""Sweep workers: execute cells, emit events, leave artifacts behind.

:func:`run_cell` is the unit of sweep work — it runs one
:class:`~repro.sweep.manifest.SweepCell` through the exact same
:func:`~repro.experiments.runner.run_experiment` path a single
``repro run`` uses, writes the standard artifacts (metrics CSV,
``.tsdb.json`` time series, ``.fp.json`` fingerprint trail) plus a
``cell.json`` completion record into the cell's content-addressed
directory, and returns the record.  Because the scenario is rebuilt
from the cell configuration alone, a sweep cell and a sequential
single-run invocation of the same knobs are bit-identical.

:func:`worker_main` is the :mod:`multiprocessing` entry point: it
drains cell indices from a task queue (pre-filled before workers start,
so ``Empty`` means done — no sentinels that a crashed sibling could
strand), posts the :mod:`repro.obs.fleet.events` vocabulary to the
event queue, runs a heartbeat daemon thread, and converts per-cell
exceptions into structured failure records instead of dying.
"""

from __future__ import annotations

import json
import os
import pathlib
import queue
import threading
import traceback

from ..errors import ReproError
from ..experiments.runner import run_experiment
from ..metrics.export import to_csv
from ..obs.fleet.events import (
    cell_failed,
    cell_finished,
    cell_started,
    heartbeat,
    wall_clock_now,
    worker_exited,
    worker_started,
)
from ..obs.timeseries import TimeseriesRecorder
from ..staticcheck.sanitizer import DeterminismSanitizer
from .artifact import _clean
from .manifest import SweepCell, build_cell_scenario

__all__ = [
    "CELL_ARTIFACTS",
    "SUMMARY_METRICS",
    "CellDivergenceError",
    "execute_cell",
    "failure_record",
    "load_cell_record",
    "run_cell",
    "worker_main",
]

#: Metrics summarized per cell (steady tail mean, run total, final value)
#: when present in the run's collector — the CLI headline set plus the
#: cost counters the paper's Table I compares.
SUMMARY_METRICS = (
    "utilization",
    "total_replicas",
    "path_length",
    "load_imbalance",
    "unserved",
    "sla_attainment",
    "replication_cost",
    "migration_count",
)

#: Relative artifact paths every completed cell directory holds.
CELL_ARTIFACTS = {
    "record": "cell.json",
    "metrics": "metrics.csv",
    "timeseries": "run.tsdb.json",
    "fingerprint": "run.fp.json",
}

#: Seconds between worker heartbeat events.
HEARTBEAT_INTERVAL_S = 2.0


class CellDivergenceError(ReproError):
    """A cell re-run in-process produced a different fingerprint chain.

    This is the sweep's determinism guard tripping: the engine contract
    says identical configuration must yield identical chains, so a
    divergence means hidden state leaked between runs (or a genuine
    nondeterminism bug) and the cell's results cannot be trusted.
    """


def _run_once(cell: SweepCell, *, stride: int, with_timeseries: bool):
    """One fresh experiment for ``cell``; returns (result, recorder, trail)."""
    recorder = TimeseriesRecorder(stride=stride) if with_timeseries else None
    sanitizer = DeterminismSanitizer()
    scenario = build_cell_scenario(cell)
    result = run_experiment(
        cell.policy,
        scenario,
        timeseries=recorder,
        sanitizer=sanitizer,
        engine=cell.engine,
    )
    return result, recorder, sanitizer.trail()


def run_cell(
    cell: SweepCell,
    cell_dir: str | pathlib.Path,
    *,
    manifest_hash: str,
    stride: int = 1,
    verify: bool = False,
    worker: int = 0,
) -> dict:
    """Execute one cell, write its artifacts, return the cell record.

    With ``verify=True`` the cell is run a second time in-process from
    a fresh scenario and sanitizer; if the two fingerprint chains
    differ, :class:`CellDivergenceError` names the cell and both chains
    and no ``cell.json`` is written (so resume will re-run it).
    """
    cell_dir = pathlib.Path(cell_dir)
    cell_dir.mkdir(parents=True, exist_ok=True)
    started = wall_clock_now()

    result, recorder, trail = _run_once(cell, stride=stride, with_timeseries=True)
    fingerprint = trail.final_chain

    if verify:
        _, _, retrail = _run_once(cell, stride=stride, with_timeseries=False)
        if retrail.final_chain != fingerprint:
            raise CellDivergenceError(
                f"cell {cell.cell_id}: in-process re-run diverged "
                f"(first chain {fingerprint}, re-run {retrail.final_chain}); "
                "the determinism contract is broken for this configuration"
            )

    to_csv(result.metrics, cell_dir / CELL_ARTIFACTS["metrics"])
    assert recorder is not None
    recorder.artifact().save(cell_dir / CELL_ARTIFACTS["timeseries"])
    trail.save(cell_dir / CELL_ARTIFACTS["fingerprint"])

    summaries: dict[str, dict[str, float]] = {}
    for metric in SUMMARY_METRICS:
        if metric in result.metrics:
            summaries[metric] = {
                "steady": float(result.steady(metric)),
                "total": float(result.series(metric).sum()),
                "final": float(result.final(metric)),
            }

    record = {
        "cell": cell.to_dict(),
        "cell_id": cell.cell_id,
        "digest": cell.digest,
        "group": cell.group_key,
        "manifest_hash": manifest_hash,
        "status": "ok",
        "fingerprint": fingerprint,
        "epochs_chained": len(trail),
        "summaries": summaries,
        "artifacts": dict(CELL_ARTIFACTS),
        "duration_s": wall_clock_now() - started,
        "worker": int(worker),
        "resumed": False,
        "verified": bool(verify),
    }
    (cell_dir / CELL_ARTIFACTS["record"]).write_text(
        json.dumps(_clean(record), indent=1, allow_nan=False) + "\n"
    )
    return record


def load_cell_record(
    cell: SweepCell, cell_dir: str | pathlib.Path, manifest_hash: str
) -> dict | None:
    """The prior completion record for ``cell`` if it is resumable.

    Returns ``None`` — meaning "re-run the cell" — unless ``cell.json``
    exists, parses, reports ``status == "ok"`` and matches both the
    cell digest and the sweep's manifest hash.
    """
    record_path = pathlib.Path(cell_dir) / CELL_ARTIFACTS["record"]
    try:
        raw = json.loads(record_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(raw, dict) or raw.get("status") != "ok":
        return None
    if raw.get("digest") != cell.digest or raw.get("manifest_hash") != manifest_hash:
        return None
    for artifact in CELL_ARTIFACTS.values():
        if not (pathlib.Path(cell_dir) / artifact).exists():
            return None
    raw["resumed"] = True
    return raw


def failure_record(
    cell: SweepCell, kind: str, error: str, *, worker: int, tb: str | None = None
) -> dict:
    """A structured failure: the traceback becomes data in the sweep
    artifact instead of scrolling off a worker's stderr."""
    return {
        "cell_id": cell.cell_id,
        "digest": cell.digest,
        "group": cell.group_key,
        "kind": kind,
        "error": error,
        "traceback": tb,
        "worker": int(worker),
    }


def _maybe_inject_crash(cell: SweepCell, options: dict) -> None:
    """Testing aid: fault injection for the CI smoke sweep and tests.

    ``inject_crash`` is a substring matched against the cell id;
    ``inject_mode`` is ``"raise"`` (a structured worker-error failure)
    or ``"exit"`` (hard ``os._exit`` so the orchestrator's watchdog
    path is exercised).
    """
    needle = options.get("inject_crash")
    if not needle or needle not in cell.cell_id:
        return
    if options.get("inject_mode", "raise") == "exit":
        # A hard exit that skips the worker's own finallys is the whole
        # point: it simulates a SIGKILL'd worker for the watchdog.
        os._exit(3)  # repro: noqa[REP203]
    raise RuntimeError(f"injected crash in cell {cell.cell_id}")


def execute_cell(
    cell: SweepCell, sweep_dir: str | pathlib.Path, options: dict, worker: int
) -> dict:
    """Injection check + :func:`run_cell` with the sweep's options.

    Shared by the inline (``--max-workers 1``) path and
    :func:`worker_main`, so both produce identical records and honour
    the same fault injection.
    """
    _maybe_inject_crash(cell, options)
    return run_cell(
        cell,
        pathlib.Path(sweep_dir) / "cells" / cell.dirname,
        manifest_hash=str(options["manifest_hash"]),
        stride=int(options.get("stride", 1)),
        verify=bool(options.get("verify", False)),
        worker=worker,
    )


def classify_failure(exc: Exception) -> str:
    if isinstance(exc, CellDivergenceError):
        return "determinism-divergence"
    return "worker-error"


def worker_main(
    worker_id: int,
    task_q,
    event_q,
    sweep_dir: str,
    cells: tuple[SweepCell, ...],
    options: dict,
) -> None:
    """Worker process entry point: drain the task queue until empty.

    The task queue holds cell indices and is fully populated before any
    worker starts, so an ``Empty`` timeout is an unambiguous "no work
    left" signal — robust even when sibling workers crash, unlike
    sentinel schemes where a dead worker's sentinel can strand cells.
    """
    state = {"cell_id": None, "started": wall_clock_now(), "cells_run": 0}
    stop = threading.Event()

    def _beat() -> None:
        interval = float(options.get("heartbeat_s", HEARTBEAT_INTERVAL_S))
        while not stop.wait(interval):
            try:
                event_q.put(
                    heartbeat(
                        worker_id,
                        state["cell_id"],
                        wall_clock_now() - state["started"],
                        state["cells_run"],
                    )
                )
            except (OSError, ValueError):  # queue torn down mid-beat
                return

    event_q.put(worker_started(worker_id))
    beat = threading.Thread(target=_beat, daemon=True)
    beat.start()
    try:
        while True:
            try:
                index = task_q.get(timeout=0.5)
            except queue.Empty:
                break
            cell = cells[index]
            state["cell_id"] = cell.cell_id
            state["started"] = wall_clock_now()
            event_q.put(cell_started(worker_id, index, cell.cell_id))
            try:
                record = execute_cell(cell, sweep_dir, options, worker_id)
            except Exception as exc:
                event_q.put(
                    cell_failed(
                        worker_id,
                        index,
                        cell.cell_id,
                        failure_record(
                            cell,
                            classify_failure(exc),
                            f"{type(exc).__name__}: {exc}",
                            worker=worker_id,
                            tb=traceback.format_exc(),
                        ),
                    )
                )
            else:
                event_q.put(cell_finished(worker_id, index, cell.cell_id, record))
            state["cell_id"] = None
            state["cells_run"] += 1
    finally:
        stop.set()
        # Bounded join: the beat loop wakes from stop.wait() within one
        # interval; the timeout guards against a beat blocked on a full
        # event queue so worker exit can never hang on its own heartbeat.
        beat.join(timeout=2.0)
        event_q.put(worker_exited(worker_id, state["cells_run"]))
