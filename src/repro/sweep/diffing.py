"""Sweep-versus-sweep comparison with CI-overlap regression gating.

``repro sweepdiff`` answers "did anything change, and did it change for
the worse?" across two merged sweeps:

* **cells** — for cell ids present in both sweeps with identical
  configuration digests, the determinism contract says the fingerprint
  chains must match bit-for-bit; a mismatch is the strongest possible
  signal (same inputs, different history) and always gates.
* **groups** — for each shared ``(policy, scenario, scale, engine)``
  group and metric, the bootstrap confidence intervals are compared.
  Overlapping intervals mean "statistically indistinguishable"; disjoint
  intervals are judged through the metric's polarity
  (:func:`repro.obs.timeseries.polarity_of`): a shift toward worse is a
  **regression** (gates), toward better an **improvement**, and a
  disjoint shift in a neutral metric a **shift** (reported, not gated).

Verdict vocabulary per metric: ``identical``, ``overlap``,
``improved``, ``regressed``, ``shifted``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.timeseries import polarity_of
from .artifact import SweepArtifact

__all__ = ["SweepDiffReport", "diff_sweeps"]


@dataclass
class SweepDiffReport:
    """Everything ``sweepdiff`` concluded, renderable and gateable."""

    same_manifest: bool
    #: cell ids in both sweeps whose fingerprint chains match.
    cells_identical: list[str] = field(default_factory=list)
    #: ``(cell_id, chain_a, chain_b)`` for same-digest cells that differ.
    cell_mismatches: list[tuple[str, str, str]] = field(default_factory=list)
    #: cell ids present in exactly one sweep (or digest changed).
    cells_only_a: list[str] = field(default_factory=list)
    cells_only_b: list[str] = field(default_factory=list)
    #: ``(group, metric, verdict, mean_a, mean_b)`` for every compared
    #: group statistic; verdict in {identical, overlap, improved,
    #: regressed, shifted}.
    judgements: list[tuple[str, str, str, float, float]] = field(
        default_factory=list
    )

    def verdict_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for _, _, verdict, _, _ in self.judgements:
            counts[verdict] = counts.get(verdict, 0) + 1
        return counts

    @property
    def regressions(self) -> list[tuple[str, str, str, float, float]]:
        return [j for j in self.judgements if j[2] == "regressed"]

    def exit_code(self) -> int:
        """0 = clean; 1 = fingerprint mismatch or CI-disjoint regression."""
        return 1 if (self.cell_mismatches or self.regressions) else 0

    def render(self) -> str:
        lines: list[str] = []
        lines.append(
            "sweepdiff: manifests "
            + ("match" if self.same_manifest else "DIFFER")
            + f" | {len(self.cells_identical)} cell(s) bit-identical, "
            f"{len(self.cell_mismatches)} mismatched, "
            f"{len(self.cells_only_a)} only in A, "
            f"{len(self.cells_only_b)} only in B"
        )
        for cell_id, chain_a, chain_b in self.cell_mismatches:
            lines.append(
                f"  FINGERPRINT MISMATCH {cell_id}: {chain_a} != {chain_b}"
            )
        counts = self.verdict_counts()
        if counts:
            summary = ", ".join(
                f"{counts[v]} {v}"
                for v in ("identical", "overlap", "improved", "regressed", "shifted")
                if v in counts
            )
            lines.append(f"group statistics: {summary}")
        for group, metric, verdict, mean_a, mean_b in self.judgements:
            if verdict in ("identical", "overlap"):
                continue
            marker = {"regressed": "REGRESSED", "improved": "improved",
                      "shifted": "shifted"}[verdict]
            lines.append(
                f"  {marker:<10} {group} {metric}: "
                f"{mean_a:.4g} -> {mean_b:.4g}"
            )
        lines.append(
            "verdict: "
            + ("FAIL (gate tripped)" if self.exit_code() else "OK")
        )
        return "\n".join(lines)


def _cell_index(artifact: SweepArtifact) -> dict[str, dict]:
    return {
        record["cell_id"]: record
        for record in artifact.cells
        if record.get("status") == "ok"
    }


def _judge(metric: str, stats_a: dict, stats_b: dict) -> tuple[str, float, float]:
    mean_a, mean_b = float(stats_a["mean"]), float(stats_b["mean"])
    # Exact equality intended: "identical" asserts a bit-identical
    # re-merge of the same cell set, not statistical closeness.
    same_mean = mean_a == mean_b  # repro: noqa[REP004] - bit-identity check
    same_sd = float(stats_a.get("stddev", 0)) == float(  # repro: noqa[REP004] - bit-identity check
        stats_b.get("stddev", 0)
    )
    if same_mean and same_sd:
        return "identical", mean_a, mean_b
    lo_a, hi_a = float(stats_a["ci_lo"]), float(stats_a["ci_hi"])
    lo_b, hi_b = float(stats_b["ci_lo"]), float(stats_b["ci_hi"])
    if hi_a >= lo_b and hi_b >= lo_a:  # intervals overlap
        return "overlap", mean_a, mean_b
    polarity = polarity_of(metric)
    if polarity == 0:
        return "shifted", mean_a, mean_b
    better = (mean_b - mean_a) * polarity > 0
    return ("improved" if better else "regressed"), mean_a, mean_b


def diff_sweeps(a: SweepArtifact, b: SweepArtifact) -> SweepDiffReport:
    """Compare two merged sweeps cell-by-cell and group-by-group."""
    report = SweepDiffReport(
        same_manifest=a.manifest.manifest_hash == b.manifest.manifest_hash
    )

    cells_a, cells_b = _cell_index(a), _cell_index(b)
    for cell_id in sorted(set(cells_a) | set(cells_b)):
        rec_a, rec_b = cells_a.get(cell_id), cells_b.get(cell_id)
        if rec_a is None:
            report.cells_only_b.append(cell_id)
        elif rec_b is None:
            report.cells_only_a.append(cell_id)
        elif rec_a.get("digest") != rec_b.get("digest"):
            # Same id, different configuration: not comparable runs.
            report.cells_only_a.append(cell_id)
            report.cells_only_b.append(cell_id)
        elif rec_a.get("fingerprint") == rec_b.get("fingerprint"):
            report.cells_identical.append(cell_id)
        else:
            report.cell_mismatches.append(
                (
                    cell_id,
                    str(rec_a.get("fingerprint")),
                    str(rec_b.get("fingerprint")),
                )
            )

    for group in sorted(set(a.groups) & set(b.groups)):
        stats_a, stats_b = a.groups[group], b.groups[group]
        for metric in sorted(set(stats_a) & set(stats_b)):
            if not stats_a[metric].get("n") or not stats_b[metric].get("n"):
                continue
            verdict, mean_a, mean_b = _judge(
                metric, stats_a[metric], stats_b[metric]
            )
            report.judgements.append((group, metric, verdict, mean_a, mean_b))

    return report
