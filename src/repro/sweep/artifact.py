"""The versioned ``.sweep.json`` artifact: one merged sweep.

A :class:`SweepArtifact` is the on-disk product of one ``repro sweep``:
the manifest that defined the grid (plus its content hash), one record
per executed cell (status, fingerprint chain, metric summaries,
relative artifact paths, timing), the structured failure records for
every cell that did not finish cleanly, and per-group cross-seed
statistics keyed ``policy/scenario/scale/engine``.  Like every other
repro artifact it is deliberately plain JSON — ``jq``-able and
diffable in CI without this library.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field

from ..errors import SweepError
from .manifest import SweepManifest

__all__ = ["SWEEP_FORMAT", "SWEEP_VERSION", "SweepArtifact"]

#: Magic format tag; a file without it is not a sweep artifact.
SWEEP_FORMAT = "repro-sweep"
#: Schema version; bumped on any incompatible layout change.
SWEEP_VERSION = 1


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SweepError(message)


def _clean(value: object) -> object:
    """JSON has no NaN/Inf; encode them as null (restored on load as
    NaN, which every consumer treats as "missing")."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _clean(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_clean(v) for v in value]
    return value


def _restore(value: object) -> object:
    if value is None:
        return float("nan")
    if isinstance(value, dict):
        return {k: _restore(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_restore(v) for v in value]
    return value


@dataclass(frozen=True)
class SweepArtifact:
    """One merged sweep: manifest + cells + failures + group stats."""

    manifest: SweepManifest
    #: One record per cell, in manifest expansion order:
    #: ``{cell, cell_id, digest, status, fingerprint, summaries,
    #: artifacts, duration_s, worker, resumed}``.
    cells: list[dict] = field(default_factory=list)
    #: Structured records for every cell that did not finish cleanly:
    #: ``{cell_id, kind, error, traceback, worker, ...}``.
    failures: list[dict] = field(default_factory=list)
    #: ``group_key -> {metric -> summarize() stats}``.
    groups: dict[str, dict[str, dict]] = field(default_factory=dict)
    meta: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_ok(self) -> int:
        return sum(1 for cell in self.cells if cell.get("status") == "ok")

    @property
    def num_failed(self) -> int:
        return len(self.failures)

    def cell_record(self, cell_id: str) -> dict:
        for record in self.cells:
            if record.get("cell_id") == cell_id:
                return record
        raise SweepError(f"no cell {cell_id!r} in this sweep artifact")

    def fingerprints(self) -> dict[str, str]:
        """``cell_id -> final fingerprint chain`` for completed cells."""
        return {
            record["cell_id"]: record.get("fingerprint", "")
            for record in self.cells
            if record.get("status") == "ok"
        }

    def group_keys(self) -> tuple[str, ...]:
        return tuple(self.groups)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "format": SWEEP_FORMAT,
            "version": SWEEP_VERSION,
            "manifest": self.manifest.to_dict(),
            "manifest_hash": self.manifest.manifest_hash,
            "meta": dict(self.meta),
            "cells": _clean(list(self.cells)),
            "failures": _clean(list(self.failures)),
            "groups": _clean(dict(self.groups)),
        }

    @classmethod
    def from_dict(cls, raw: object) -> "SweepArtifact":
        _require(isinstance(raw, dict), f"not a {SWEEP_FORMAT} artifact: {raw!r}")
        assert isinstance(raw, dict)
        _require(
            raw.get("format") == SWEEP_FORMAT,
            f"not a {SWEEP_FORMAT} artifact (format={raw.get('format')!r})",
        )
        _require(
            raw.get("version") == SWEEP_VERSION,
            f"unsupported {SWEEP_FORMAT} version {raw.get('version')!r} "
            f"(this build reads version {SWEEP_VERSION})",
        )
        manifest = SweepManifest.from_dict(raw.get("manifest"))
        recorded_hash = raw.get("manifest_hash")
        if recorded_hash is not None and recorded_hash != manifest.manifest_hash:
            raise SweepError(
                f"manifest hash mismatch: artifact says {recorded_hash!r}, "
                f"manifest content hashes to {manifest.manifest_hash!r}"
            )
        cells = raw.get("cells", [])
        failures = raw.get("failures", [])
        groups = raw.get("groups", {})
        _require(isinstance(cells, list), "'cells' must be a list")
        _require(isinstance(failures, list), "'failures' must be a list")
        _require(isinstance(groups, dict), "'groups' must be an object")
        for record in cells:
            _require(isinstance(record, dict), f"malformed cell record: {record!r}")
            _require(
                "cell_id" in record and "status" in record,
                f"cell record missing cell_id/status: {record!r}",
            )
        meta = raw.get("meta", {})
        return cls(
            manifest=manifest,
            cells=[_restore(dict(r)) for r in cells],
            failures=[_restore(dict(r)) for r in failures],
            groups={
                str(k): _restore(dict(v)) for k, v in groups.items()
            },
            meta=dict(meta) if isinstance(meta, dict) else {},
        )

    def save(self, path: str | pathlib.Path) -> None:
        payload = json.dumps(self.to_dict(), indent=1, allow_nan=False)
        pathlib.Path(path).write_text(payload + "\n")

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "SweepArtifact":
        path = pathlib.Path(path)
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SweepError(f"cannot read sweep artifact {path}: {exc}") from exc
        return cls.from_dict(raw)
