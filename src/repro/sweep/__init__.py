"""Parallel sweep orchestration: many seeds, one artifact.

A single run of the simulator answers "what did policy P do on scenario
S with seed 42?".  The questions the paper actually argues — does RFH
beat the baselines, and by how much — need distributions over seeds.
This package turns a declarative :class:`SweepManifest` (a ``{policy ×
scenario × seed × scale × engine}`` grid) into a fleet of worker
processes, each reusing the exact single-run execution path so every
cell is bit-identical to its sequential counterpart, and merges the
per-cell artifacts into one versioned ``.sweep.json`` with seeded
cross-seed statistics — renderable as a markdown report, an aggregate
band-plot dashboard (:mod:`repro.obs.fleet.dashboard`), and gateable
via :func:`diff_sweeps` / ``repro sweepdiff``.
"""

from .artifact import SWEEP_FORMAT, SWEEP_VERSION, SweepArtifact
from .diffing import SweepDiffReport, diff_sweeps
from .manifest import SweepCell, SweepManifest, SweepScale, build_cell_scenario
from .merger import merge
from .orchestrator import SWEEP_ARTIFACT_NAME, run_sweep
from .report import render_sweep
from .stats import bootstrap_rng, format_mean_ci, summarize
from .worker import CellDivergenceError, run_cell

__all__ = [
    "SWEEP_ARTIFACT_NAME",
    "SWEEP_FORMAT",
    "SWEEP_VERSION",
    "CellDivergenceError",
    "SweepArtifact",
    "SweepCell",
    "SweepDiffReport",
    "SweepManifest",
    "SweepScale",
    "bootstrap_rng",
    "build_cell_scenario",
    "diff_sweeps",
    "format_mean_ci",
    "merge",
    "render_sweep",
    "run_cell",
    "run_sweep",
    "summarize",
]
