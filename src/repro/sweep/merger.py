"""Fold per-cell records into one merged :class:`SweepArtifact`.

The merger is deliberately a pure function of (manifest, cell records,
failure records): it computes per-``(policy, scenario, scale, engine)``
cross-seed statistics with the seeded bootstrap of
:mod:`repro.sweep.stats`, iterating groups and metrics in sorted order
so the generator is consumed identically no matter how the records
arrived — merging the same artifacts twice yields byte-identical
statistics.
"""

from __future__ import annotations

from collections import OrderedDict

from .artifact import SweepArtifact
from .manifest import SweepManifest
from .stats import bootstrap_rng, summarize

__all__ = ["GROUP_FIELD_DEFAULT", "GROUP_FIELDS", "group_values", "merge"]

#: Which per-cell summary field feeds a metric's cross-seed statistic.
#: Rate-like headline metrics aggregate their steady-state tail mean;
#: cost counters aggregate the run total (the paper's Table I compares
#: totals for cost, steady levels for everything else).
GROUP_FIELDS = {
    "replication_cost": "total",
    "migration_count": "total",
    "unserved": "total",
}
GROUP_FIELD_DEFAULT = "steady"


def group_values(records: list[dict]) -> dict[str, dict[str, list[float]]]:
    """``group_key -> metric -> per-seed values`` from completed cells."""
    grouped: dict[str, dict[str, list[float]]] = OrderedDict()
    for record in records:
        if record.get("status") != "ok":
            continue
        group = grouped.setdefault(str(record["group"]), OrderedDict())
        for metric, fields in record.get("summaries", {}).items():
            field = GROUP_FIELDS.get(metric, GROUP_FIELD_DEFAULT)
            value = fields.get(field)
            if value is not None:
                group.setdefault(metric, []).append(float(value))
    return grouped


def merge(
    manifest: SweepManifest,
    records: list[dict],
    failures: list[dict],
    *,
    meta: dict[str, object] | None = None,
) -> SweepArtifact:
    """Build the merged sweep artifact with cross-seed group statistics.

    ``records`` must be in manifest expansion order (the orchestrator
    guarantees this); group statistics are computed over sorted group
    and metric names so the seeded bootstrap stream is consumed
    deterministically.
    """
    grouped = group_values(records)
    rng = bootstrap_rng(manifest.manifest_hash)
    groups: dict[str, dict[str, dict]] = {}
    for group_key in sorted(grouped):
        stats: dict[str, dict] = {}
        for metric in sorted(grouped[group_key]):
            stats[metric] = summarize(grouped[group_key][metric], rng)
        groups[group_key] = stats
    return SweepArtifact(
        manifest=manifest,
        cells=list(records),
        failures=list(failures),
        groups=groups,
        meta=dict(meta or {}),
    )
