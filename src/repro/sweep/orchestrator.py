"""The sweep orchestrator: expand, fan out, watch, merge.

:func:`run_sweep` turns a :class:`~repro.sweep.manifest.SweepManifest`
into a merged :class:`~repro.sweep.artifact.SweepArtifact` on disk:

1. **Expand** the manifest into its deterministic cell list and lay out
   the content-addressed sweep directory (``manifest.json``,
   ``cells/<cell_id>-<digest>/``).
2. **Resume** (optional): cells whose directories already hold a valid
   ``cell.json`` matching this manifest's hash and the cell digest are
   adopted instead of re-run.
3. **Fan out** pending cells across ``multiprocessing`` workers (or run
   them inline when one worker suffices), streaming fleet events to a
   :class:`~repro.obs.fleet.progress.FleetProgress` renderer.  A
   watchdog notices hard-crashed workers (no clean exit event), books
   the in-flight cell as a structured ``worker-crash`` failure, and
   respawns replacement workers up to a cap.
4. **Merge** the records into the versioned ``.sweep.json`` with
   cross-seed group statistics.

Every failure mode — a cell raising, the determinism guard tripping, a
worker dying outright — becomes a structured failure record in the
artifact; the sweep itself always completes.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import queue
import traceback

from ..obs.fleet.events import (
    CELL_FAILED,
    CELL_FINISHED,
    CELL_STARTED,
    WORKER_EXITED,
    cell_failed,
    cell_finished,
    cell_started,
    wall_clock_now,
)
from ..obs.fleet.progress import FleetProgress
from .artifact import SweepArtifact
from .manifest import SweepCell, SweepManifest
from .merger import merge
from .worker import (
    classify_failure,
    execute_cell,
    failure_record,
    load_cell_record,
    worker_main,
)

__all__ = ["SWEEP_ARTIFACT_NAME", "run_sweep"]

#: File name of the merged artifact inside the sweep directory.
SWEEP_ARTIFACT_NAME = "sweep.sweep.json"

#: Replacement workers spawned after hard crashes, per sweep, beyond the
#: initial pool — a cap so a crash-looping cell cannot fork forever.
MAX_RESPAWNS = 4


def _mp_context():
    """Fork where available (cheap on Linux); spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


def _run_inline(
    cells: tuple[SweepCell, ...],
    pending: list[int],
    sweep_dir: pathlib.Path,
    options: dict,
    progress: FleetProgress,
    records: dict[int, dict],
    failures: list[dict],
) -> None:
    """Single-lane execution in this process (``--max-workers 1``).

    Emits the same event vocabulary through the progress renderer so
    inline and parallel sweeps look identical to the operator."""
    for index in pending:
        cell = cells[index]
        progress.handle(cell_started(0, index, cell.cell_id))
        try:
            record = execute_cell(cell, sweep_dir, options, 0)
        except Exception as exc:
            failure = failure_record(
                cell,
                classify_failure(exc),
                f"{type(exc).__name__}: {exc}",
                worker=0,
                tb=traceback.format_exc(),
            )
            failures.append(failure)
            progress.handle(cell_failed(0, index, cell.cell_id, failure))
        else:
            records[index] = record
            progress.handle(cell_finished(0, index, cell.cell_id, record))


def _run_parallel(
    cells: tuple[SweepCell, ...],
    pending: list[int],
    sweep_dir: pathlib.Path,
    options: dict,
    progress: FleetProgress,
    records: dict[int, dict],
    failures: list[dict],
    max_workers: int,
) -> None:
    """Fan pending cells across worker processes with a crash watchdog."""
    ctx = _mp_context()
    task_q = ctx.Queue()
    event_q = ctx.Queue()
    lanes = min(max_workers, len(pending))
    procs: dict[int, object] = {}
    clean_exit: set[int] = set()
    in_flight: dict[int, int] = {}  # worker id -> cell index
    next_worker = 0
    respawns_left = MAX_RESPAWNS

    def _spawn() -> None:
        nonlocal next_worker
        worker_id = next_worker
        next_worker += 1
        proc = ctx.Process(
            target=worker_main,
            args=(worker_id, task_q, event_q, str(sweep_dir), cells, options),
            daemon=True,
        )
        proc.start()
        procs[worker_id] = proc

    # Teardown lives in the finally so an exception mid-orchestration
    # (progress callback, corrupt event) still reaps every worker and
    # both queue feeder threads instead of hanging interpreter exit.
    try:
        for index in pending:
            task_q.put(index)
        for _ in range(lanes):
            _spawn()

        done = 0
        target = len(pending)
        while done < target:
            try:
                event = event_q.get(timeout=0.5)
            except queue.Empty:
                event = None
            if event is not None:
                kind = event.get("kind")
                worker = int(event.get("worker", -1))
                if kind == CELL_STARTED:
                    in_flight[worker] = int(event["index"])
                elif kind == CELL_FINISHED:
                    records[int(event["index"])] = event["record"]
                    in_flight.pop(worker, None)
                    done += 1
                elif kind == CELL_FAILED:
                    failures.append(event["failure"])
                    in_flight.pop(worker, None)
                    done += 1
                elif kind == WORKER_EXITED:
                    clean_exit.add(worker)
                progress.handle(event)
                continue

            # Queue idle: watchdog pass over the pool.
            crashed = [
                worker_id
                for worker_id, proc in procs.items()
                if worker_id not in clean_exit and not proc.is_alive()  # type: ignore[attr-defined]
            ]
            for worker_id in crashed:
                clean_exit.add(worker_id)  # book once
                exitcode = getattr(procs[worker_id], "exitcode", None)
                index = in_flight.pop(worker_id, None)
                if index is not None:
                    cell = cells[index]
                    failure = failure_record(
                        cell,
                        "worker-crash",
                        f"worker {worker_id} died (exit code {exitcode}) "
                        f"while running {cell.cell_id}",
                        worker=worker_id,
                    )
                    failures.append(failure)
                    progress.handle(
                        cell_failed(worker_id, index, cell.cell_id, failure)
                    )
                    done += 1
                if done < target and respawns_left > 0:
                    respawns_left -= 1
                    _spawn()
            if crashed:
                continue
            # No events, no crashes: if every worker is gone the
            # remaining cells can never complete — book them as lost
            # and stop waiting.
            if all(
                worker_id in clean_exit or not proc.is_alive()  # type: ignore[attr-defined]
                for worker_id, proc in procs.items()
            ) and event_q.empty():
                failed_ids = {f.get("cell_id") for f in failures}
                for index in pending:
                    if index in records:
                        continue
                    cell = cells[index]
                    if cell.cell_id in failed_ids:
                        continue
                    failure = failure_record(
                        cell,
                        "worker-crash",
                        f"cell {cell.cell_id} lost: no live workers remain",
                        worker=-1,
                    )
                    failures.append(failure)
                    progress.handle(cell_failed(-1, index, cell.cell_id, failure))
                    done += 1
    finally:
        for proc in procs.values():
            proc.join(timeout=5.0)  # type: ignore[attr-defined]
            if proc.is_alive():  # type: ignore[attr-defined]
                proc.terminate()  # type: ignore[attr-defined]
                proc.join(timeout=1.0)  # type: ignore[attr-defined]
        # Drain so queue feeder threads never block interpreter exit.
        while True:
            try:
                event_q.get_nowait()
            except queue.Empty:
                break
        task_q.close()
        event_q.close()


def run_sweep(
    manifest: SweepManifest,
    out_dir: str | pathlib.Path,
    *,
    max_workers: int = 1,
    resume: bool = False,
    verify: bool = False,
    progress: FleetProgress | None = None,
    inject_crash: str | None = None,
    inject_mode: str = "raise",
) -> SweepArtifact:
    """Execute the manifest's grid and write the merged sweep artifact.

    Returns the merged :class:`SweepArtifact` (also saved to
    ``<out_dir>/sweep.sweep.json``).  ``inject_crash``/``inject_mode``
    are testing aids that fault-inject matching cells — see
    :func:`repro.sweep.worker._maybe_inject_crash`.
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "cells").mkdir(exist_ok=True)
    manifest.save(out / "manifest.json")

    cells = manifest.cells()
    started = wall_clock_now()
    if progress is None:
        progress = FleetProgress(len(cells))
    options: dict[str, object] = {
        "manifest_hash": manifest.manifest_hash,
        "stride": manifest.timeseries_stride,
        "verify": verify,
        "inject_crash": inject_crash,
        "inject_mode": inject_mode,
    }

    records: dict[int, dict] = {}
    failures: list[dict] = []
    resumed = 0
    if resume:
        for index, cell in enumerate(cells):
            prior = load_cell_record(
                cell, out / "cells" / cell.dirname, manifest.manifest_hash
            )
            if prior is not None:
                records[index] = prior
                resumed += 1
                progress.note_resumed(cell.cell_id)

    pending = [index for index in range(len(cells)) if index not in records]
    if pending:
        if max_workers <= 1 or len(pending) == 1:
            _run_inline(cells, pending, out, options, progress, records, failures)
        else:
            _run_parallel(
                cells, pending, out, options, progress, records, failures,
                max_workers,
            )

    wall_s = wall_clock_now() - started
    progress.finish(wall_s)

    ordered = [records[index] for index in sorted(records)]
    artifact = merge(
        manifest,
        ordered,
        failures,
        meta={
            "wall_s": wall_s,
            "max_workers": int(max_workers),
            "resumed_cells": resumed,
            "verified_cells": bool(verify),
        },
    )
    artifact.save(out / SWEEP_ARTIFACT_NAME)
    return artifact
