"""Declarative sweep manifests and their deterministic cell expansion.

A :class:`SweepManifest` names a full ``{policy × scenario × seed ×
scale × engine}`` grid plus the run length; :meth:`SweepManifest.cells`
expands it into an ordered tuple of :class:`SweepCell` — the unit of
work a sweep worker executes.  Expansion is deterministic: the cell
order is the nested product in the manifest's listed order, and every
cell carries a content digest over its full configuration, so the same
manifest always produces the same cell list, the same cell directories
and (per the engine's determinism contract) the same artifacts.

Manifests are plain JSON (``SweepManifest.load`` / ``save``) and
CLI-composable (``repro sweep --policies rfh owner --seeds 1 2 3``
builds one in memory); :attr:`SweepManifest.manifest_hash` is the
canonical content address used by ``--resume`` to decide whether an
existing cell directory still belongs to this sweep.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from ..config import SimulationConfig, WorkloadParameters
from ..errors import SweepError
from ..experiments.comparison import POLICIES
from ..experiments.runner import ENGINES
from ..experiments.scenarios import (
    Scenario,
    failure_recovery_scenario,
    flash_crowd_scenario,
    random_query_scenario,
)

__all__ = [
    "SCENARIO_BUILDERS",
    "SweepCell",
    "SweepManifest",
    "SweepScale",
    "build_cell_scenario",
]

#: Scenario builders selectable by manifest name (mirrors the CLI's
#: ``--scenario`` choices; every builder takes ``(config, epochs=...)``).
SCENARIO_BUILDERS = {
    "random": random_query_scenario,
    "flash": flash_crowd_scenario,
    "failure": failure_recovery_scenario,
}


def _sha256_hex(payload: str, length: int) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:length]


@dataclass(frozen=True)
class SweepScale:
    """One named point on the scale axis: workload size knobs."""

    name: str
    partitions: int = 64
    rate: float = 300.0

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or " " in self.name:
            raise SweepError(f"scale name must be a bare token, got {self.name!r}")
        if self.partitions < 1:
            raise SweepError(f"scale {self.name!r}: partitions must be >= 1")
        if self.rate <= 0:
            raise SweepError(f"scale {self.name!r}: rate must be positive")

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "partitions": self.partitions, "rate": self.rate}

    @classmethod
    def from_dict(cls, raw: object) -> "SweepScale":
        if not isinstance(raw, dict):
            raise SweepError(f"scale entry must be an object, got {raw!r}")
        try:
            return cls(
                name=str(raw["name"]),
                partitions=int(raw.get("partitions", 64)),
                rate=float(raw.get("rate", 300.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepError(f"malformed scale entry {raw!r}: {exc}") from exc


@dataclass(frozen=True)
class SweepCell:
    """One fully-specified experiment: the unit of sweep work.

    ``cell_id`` is human-readable and unique within a manifest;
    ``digest`` content-addresses the full cell configuration (including
    epochs and scale knobs), so a directory named
    ``<cell_id>-<digest>`` can be trusted across manifest edits —
    change any knob and the address changes with it.
    """

    policy: str
    scenario: str
    seed: int
    scale: SweepScale
    engine: str
    epochs: int

    @property
    def cell_id(self) -> str:
        return (
            f"{self.policy}-{self.scenario}-s{self.seed}"
            f"-{self.scale.name}-{self.engine}"
        )

    @property
    def digest(self) -> str:
        return _sha256_hex(
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")), 8
        )

    @property
    def dirname(self) -> str:
        return f"{self.cell_id}-{self.digest}"

    def to_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "scenario": self.scenario,
            "seed": self.seed,
            "scale": self.scale.to_dict(),
            "engine": self.engine,
            "epochs": self.epochs,
        }

    @classmethod
    def from_dict(cls, raw: object) -> "SweepCell":
        if not isinstance(raw, dict):
            raise SweepError(f"cell record must be an object, got {raw!r}")
        try:
            return cls(
                policy=str(raw["policy"]),
                scenario=str(raw["scenario"]),
                seed=int(raw["seed"]),
                scale=SweepScale.from_dict(raw["scale"]),
                engine=str(raw["engine"]),
                epochs=int(raw["epochs"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepError(f"malformed cell record {raw!r}: {exc}") from exc

    @property
    def group_key(self) -> str:
        """The cross-seed aggregation group this cell belongs to."""
        return f"{self.policy}/{self.scenario}/{self.scale.name}/{self.engine}"


def build_cell_scenario(cell: SweepCell) -> Scenario:
    """Construct the cell's scenario exactly as a single ``repro run``
    would, so a sweep cell and a sequential invocation of the same
    configuration are bit-identical (same trace, same events, same
    fingerprint chain)."""
    try:
        builder = SCENARIO_BUILDERS[cell.scenario]
    except KeyError:
        raise SweepError(
            f"unknown scenario {cell.scenario!r}; "
            f"choose from {sorted(SCENARIO_BUILDERS)}"
        ) from None
    config = SimulationConfig(
        seed=cell.seed,
        workload=WorkloadParameters(
            queries_per_epoch_mean=cell.scale.rate,
            num_partitions=cell.scale.partitions,
        ),
    )
    return builder(config, epochs=cell.epochs)


@dataclass(frozen=True)
class SweepManifest:
    """The declarative grid a ``repro sweep`` executes."""

    name: str = "sweep"
    policies: tuple[str, ...] = POLICIES
    scenarios: tuple[str, ...] = ("random",)
    seeds: tuple[int, ...] = (42,)
    scales: tuple[SweepScale, ...] = (SweepScale("paper"),)
    engines: tuple[str, ...] = ("scalar",)
    epochs: int = 120
    #: Epochs between accepted time-series samples per cell.
    timeseries_stride: int = 1
    #: Free-form notes carried into the merged artifact.
    meta: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis, values in (
            ("policies", self.policies),
            ("scenarios", self.scenarios),
            ("seeds", self.seeds),
            ("scales", self.scales),
            ("engines", self.engines),
        ):
            if not values:
                raise SweepError(f"manifest axis {axis!r} must be non-empty")
            if len(set(values)) != len(values):
                raise SweepError(f"manifest axis {axis!r} holds duplicates")
        for policy in self.policies:
            if policy not in POLICIES:
                raise SweepError(
                    f"unknown policy {policy!r}; choose from {sorted(POLICIES)}"
                )
        for scenario in self.scenarios:
            if scenario not in SCENARIO_BUILDERS:
                raise SweepError(
                    f"unknown scenario {scenario!r}; "
                    f"choose from {sorted(SCENARIO_BUILDERS)}"
                )
        for engine in self.engines:
            if engine not in ENGINES:
                raise SweepError(
                    f"unknown engine {engine!r}; choose from {ENGINES}"
                )
        if len({scale.name for scale in self.scales}) != len(self.scales):
            raise SweepError("scale names must be unique")
        if self.epochs < 1:
            raise SweepError(f"epochs must be >= 1, got {self.epochs}")
        if self.timeseries_stride < 1:
            raise SweepError(
                f"timeseries_stride must be >= 1, got {self.timeseries_stride}"
            )

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def cells(self) -> tuple[SweepCell, ...]:
        """The deterministic cell list: nested product in listed order
        (policy, then scenario, then seed, then scale, then engine)."""
        return tuple(
            SweepCell(
                policy=policy,
                scenario=scenario,
                seed=seed,
                scale=scale,
                engine=engine,
                epochs=self.epochs,
            )
            for policy in self.policies
            for scenario in self.scenarios
            for seed in self.seeds
            for scale in self.scales
            for engine in self.engines
        )

    @property
    def num_cells(self) -> int:
        return (
            len(self.policies)
            * len(self.scenarios)
            * len(self.seeds)
            * len(self.scales)
            * len(self.engines)
        )

    # ------------------------------------------------------------------
    # Content address & serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "policies": list(self.policies),
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "scales": [scale.to_dict() for scale in self.scales],
            "engines": list(self.engines),
            "epochs": self.epochs,
            "timeseries_stride": self.timeseries_stride,
            "meta": dict(self.meta),
        }

    @property
    def manifest_hash(self) -> str:
        """Canonical content address over everything that affects cell
        outputs (``meta`` is excluded: notes must not invalidate a
        resumable sweep)."""
        payload = self.to_dict()
        payload.pop("meta", None)
        payload.pop("name", None)
        return _sha256_hex(
            json.dumps(payload, sort_keys=True, separators=(",", ":")), 12
        )

    @classmethod
    def from_dict(cls, raw: object) -> "SweepManifest":
        if not isinstance(raw, dict):
            raise SweepError(f"manifest must be a JSON object, got {raw!r}")
        unknown = set(raw) - {
            "name", "policies", "scenarios", "seeds", "scales",
            "engines", "epochs", "timeseries_stride", "meta",
        }
        if unknown:
            raise SweepError(f"unknown manifest key(s): {sorted(unknown)}")
        try:
            scales_raw = raw.get("scales", [SweepScale("paper").to_dict()])
            return cls(
                name=str(raw.get("name", "sweep")),
                policies=tuple(str(p) for p in raw.get("policies", POLICIES)),
                scenarios=tuple(str(s) for s in raw.get("scenarios", ("random",))),
                seeds=tuple(int(s) for s in raw.get("seeds", (42,))),
                scales=tuple(SweepScale.from_dict(s) for s in scales_raw),
                engines=tuple(str(e) for e in raw.get("engines", ("scalar",))),
                epochs=int(raw.get("epochs", 120)),
                timeseries_stride=int(raw.get("timeseries_stride", 1)),
                meta=dict(raw.get("meta", {})),
            )
        except SweepError:
            raise
        except (TypeError, ValueError) as exc:
            raise SweepError(f"malformed manifest: {exc}") from exc

    def save(self, path: str | pathlib.Path) -> None:
        payload = self.to_dict()
        payload["manifest_hash"] = self.manifest_hash
        pathlib.Path(path).write_text(json.dumps(payload, indent=1) + "\n")

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "SweepManifest":
        path = pathlib.Path(path)
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SweepError(f"cannot read sweep manifest {path}: {exc}") from exc
        if isinstance(raw, dict):
            raw.pop("manifest_hash", None)  # advisory on disk, recomputed
        return cls.from_dict(raw)
