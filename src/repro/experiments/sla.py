"""SLA-attainment experiment (the paper's introductory motivation).

Section I motivates adaptive replication with Amazon's SLA — "a response
within 300 ms for 99.9 % of its requests" — and with the observation
that a system "should provide all customers with a good experience,
rather than just the majority".  This experiment scores the four
algorithms on exactly that currency: the fraction of queries answered
within the bound (blocked queries are misses), against the resources
each algorithm consumed to get there.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimulationConfig
from .comparison import POLICIES, compare_policies
from .scenarios import random_query_scenario

__all__ = ["SlaResult", "sla_comparison"]


@dataclass(frozen=True)
class SlaResult:
    """SLA attainment versus resource footprint, per policy."""

    #: steady-state SLA attainment in [0, 1]
    attainment: dict[str, float]
    #: steady-state mean response latency (ms)
    latency_ms: dict[str, float]
    #: replica footprint at the end of the run
    replicas: dict[str, float]
    #: shape checks (see :func:`sla_comparison`)
    checks: dict[str, bool]

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> tuple[str, ...]:
        return tuple(name for name, ok in self.checks.items() if not ok)


def sla_comparison(
    config: SimulationConfig,
    epochs: int = 250,
    policies: tuple[str, ...] = POLICIES,
    full_service_floor: float = 0.97,
) -> SlaResult:
    """Run the random-query comparison and score SLA attainment.

    Shape checks encoded (the introduction's argument, quantified):

    * the algorithms that relieve the holder (rfh / owner / random) all
      clear a high attainment floor;
    * request-oriented — which only serves its top requesters — falls
      visibly below them ("just the majority");
    * among the full-service algorithms, RFH gets there with the
      smallest replica footprint (that is the "high-efficient" claim).
    """
    cmp = compare_policies(random_query_scenario(config, epochs), policies)
    attainment = cmp.steady_table("sla_attainment")
    latency = cmp.steady_table("mean_latency_ms")
    replicas = {p: cmp[p].final("total_replicas") for p in policies}

    full_service = [p for p in ("rfh", "owner", "random") if p in policies]
    checks: dict[str, bool] = {}
    if full_service:
        checks["full-service algorithms clear the attainment floor"] = all(
            attainment[p] >= full_service_floor for p in full_service
        )
    if "request" in policies and full_service:
        checks["request serves only the majority"] = attainment["request"] < min(
            attainment[p] for p in full_service
        )
    if set(full_service) >= {"rfh", "owner", "random"}:
        checks["rfh cheapest full-service footprint"] = replicas["rfh"] == min(
            replicas[p] for p in full_service
        )
    return SlaResult(
        attainment=attainment, latency_ms=latency, replicas=replicas, checks=checks
    )
