"""Multi-seed experiment replication and summary statistics.

The paper reports single curves; a credible simulation study also
reports how much of each number is seed noise.  :func:`replicate` runs
one (policy, scenario-builder) pair under several root seeds — every
seed gets its own workload trace, cluster capacity draw and policy
tie-breaking — and aggregates the steady-state metrics into
mean / standard deviation / range, so figure claims can be checked for
robustness rather than luck (see ``tests/test_replication.py``, which
pins the headline Fig. 3/4 orderings across seeds).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..config import SimulationConfig
from ..errors import SimulationError
from .runner import run_experiment
from .scenarios import Scenario

__all__ = ["MetricStats", "ReplicationResult", "replicate"]

#: Builds a scenario from a config (e.g. ``random_query_scenario``).
ScenarioBuilder = Callable[[SimulationConfig], Scenario]


@dataclass(frozen=True)
class MetricStats:
    """Across-seed statistics of one steady-state metric."""

    mean: float
    std: float
    min: float
    max: float
    values: tuple[float, ...]

    @classmethod
    def of(cls, values: list[float]) -> "MetricStats":
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std()),
            min=float(arr.min()),
            max=float(arr.max()),
            values=tuple(float(v) for v in values),
        )

    def overlaps(self, other: "MetricStats") -> bool:
        """Whether the two ranges overlap at all (a cheap separation test:
        non-overlapping ranges mean the ordering held for *every* seed
        pair)."""
        return self.min <= other.max and other.min <= self.max


@dataclass(frozen=True)
class ReplicationResult:
    """All seeds' steady-state metrics for one policy."""

    policy: str
    scenario: str
    seeds: tuple[int, ...]
    stats: dict[str, MetricStats]

    def __getitem__(self, metric: str) -> MetricStats:
        try:
            return self.stats[metric]
        except KeyError:
            raise SimulationError(
                f"metric {metric!r} not aggregated; have {sorted(self.stats)}"
            ) from None


#: Steady-state metrics aggregated by default.
DEFAULT_METRICS: tuple[str, ...] = (
    "utilization",
    "total_replicas",
    "path_length",
    "load_imbalance",
    "unserved",
    "sla_attainment",
)


def replicate(
    policy: str,
    base_config: SimulationConfig,
    scenario_builder: ScenarioBuilder,
    seeds: tuple[int, ...],
    metrics: tuple[str, ...] = DEFAULT_METRICS,
    tail: int = 30,
) -> ReplicationResult:
    """Run the experiment once per seed and aggregate steady-state stats.

    Each seed replaces ``base_config.seed`` wholesale, so workload,
    capacities, failures and policy randomness all vary together —
    exactly what an independent repetition means.
    """
    if not seeds:
        raise SimulationError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise SimulationError(f"duplicate seeds: {seeds}")
    collected: dict[str, list[float]] = {name: [] for name in metrics}
    scenario_name = ""
    for seed in seeds:
        scenario = scenario_builder(base_config.replace(seed=seed))
        result = run_experiment(policy, scenario)
        scenario_name = result.scenario
        for name in metrics:
            collected[name].append(result.steady(name, tail))
    return ReplicationResult(
        policy=policy,
        scenario=scenario_name,
        seeds=tuple(seeds),
        stats={name: MetricStats.of(values) for name, values in collected.items()},
    )
