"""Markdown rendering of figure results (feeds EXPERIMENTS.md)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs.registry import InstrumentRegistry
from .figures import FigureResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.analysis import TraceAnalysis
    from ..obs.timeseries import DiffReport

__all__ = [
    "render_figure",
    "render_instruments",
    "render_analysis",
    "render_timeseries_diff",
    "render_report",
]

#: What the paper reports per figure, quoted/condensed for the table.
PAPER_CLAIMS: dict[str, str] = {
    "fig3": (
        "RFH highest utilization, random lowest; under flash crowd the "
        "request-oriented rate collapses after the stage change while RFH "
        "dips once and recovers sharply."
    ),
    "fig4": (
        "Random needs ~500 replicas (~8/partition), owner ~300 (4.5), RFH "
        "~250 (~4) close to request (fewest); RFH's count stays flat under "
        "flash crowd."
    ),
    "fig5": (
        "Random pays by far the highest replication cost; RFH total lowest; "
        "request's average cost inflates under flash crowd (long-distance "
        "replication)."
    ),
    "fig6": (
        "Request migrates by far the most in both settings; random never "
        "migrates; owner's condition is never reached; RFH stays low."
    ),
    "fig7": (
        "Migration cost mirrors migration times: request highest, random "
        "and owner zero, RFH low; flash crowd costs more than random query."
    ),
    "fig8": (
        "RFH (lowest blocking-probability placement) achieves the best load "
        "balance; request/random use blind placement and do worse."
    ),
    "fig9": (
        "All curves drop sharply as replicas appear; owner-oriented stays "
        "the longest; RFH shortest except flash stage 1 where request ~0."
    ),
    "fig10": (
        "Replica count grows, stabilises, drops sharply when 30 servers die "
        "at epoch 290, then recovers to the initial level."
    ),
}


def render_figure(result: FigureResult) -> str:
    """One markdown section for a figure result."""
    lines = [f"### {result.figure}", ""]
    claim = PAPER_CLAIMS.get(result.figure)
    if claim:
        lines += [f"**Paper:** {claim}", ""]
    lines += ["| shape check | held |", "|---|---|"]
    for name, ok in result.checks.items():
        lines.append(f"| {name} | {'yes' if ok else '**NO**'} |")
    if result.notes:
        lines += ["", "Measured values:", ""]
        lines += ["| quantity | value |", "|---|---|"]
        for name, value in result.notes.items():
            lines.append(f"| {name} | {value:.3f} |")
    lines.append("")
    return "\n".join(lines)


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def render_instruments(registry: InstrumentRegistry) -> str:
    """Markdown section over a registry snapshot (counters, gauges,
    histogram summaries) for inclusion in experiment reports."""
    snap = registry.snapshot()
    lines = ["### Instruments", ""]
    scalar_rows = [
        (row["name"], row["labels"], row["value"])
        for row in [*snap["counters"], *snap["gauges"]]
    ]
    if scalar_rows:
        lines += ["| instrument | value |", "|---|---|"]
        for name, labels, value in scalar_rows:
            lines.append(f"| `{name}{_fmt_labels(labels)}` | {value:g} |")
        lines.append("")
    if snap["histograms"]:
        lines += [
            "| histogram | count | mean | p50 | p95 | max |",
            "|---|---|---|---|---|---|",
        ]
        for row in snap["histograms"]:
            lines.append(
                f"| `{row['name']}{_fmt_labels(row['labels'])}` | {row['count']} "
                f"| {row['mean']:.2f} | {row['p50']:.2f} | {row['p95']:.2f} "
                f"| {row['max']:.2f} |"
            )
        lines.append("")
    if len(lines) == 2:
        lines += ["(no instruments recorded)", ""]
    return "\n".join(lines)


def render_analysis(analysis: TraceAnalysis, *, heading: str = "### Trace analysis") -> str:
    """Markdown section over a trace-analytics result (lineage digest,
    ranked top-causes table, anomalies) for experiment reports."""
    from ..obs.analysis import render_markdown

    return render_markdown(analysis, heading=heading)


def render_timeseries_diff(report: DiffReport, *, verbose: bool = False) -> str:
    """Markdown section over a cross-run time-series diff (see
    :func:`repro.obs.timeseries.diff_artifacts`) for experiment reports."""
    from ..obs.timeseries import render_diff_markdown

    return render_diff_markdown(report, verbose=verbose)


def render_report(
    results: dict[str, FigureResult],
    header: str = "",
    instruments: InstrumentRegistry | None = None,
    analysis: TraceAnalysis | None = None,
    timeseries_diff: DiffReport | None = None,
) -> str:
    """Full markdown report over all figures, plus the instrument
    snapshot, trace analysis and time-series diff when supplied."""
    total = sum(len(r.checks) for r in results.values())
    held = sum(sum(r.checks.values()) for r in results.values())
    lines = []
    if header:
        lines += [header, ""]
    lines += [f"**Shape checks held: {held}/{total}**", ""]
    for key in sorted(results):
        lines.append(render_figure(results[key]))
    if instruments is not None:
        lines.append(render_instruments(instruments))
    if analysis is not None:
        lines.append(render_analysis(analysis))
    if timeseries_diff is not None:
        lines.append(render_timeseries_diff(timeseries_diff))
    return "\n".join(lines)
