"""Figure regeneration harnesses (paper Section III, Figs. 3–10).

Each ``figN_*`` function reruns the figure's experiment and returns a
:class:`FigureResult` holding the per-policy series for every panel plus
a dictionary of *shape checks* — the qualitative claims the paper makes
about that figure (who wins, what collapses where, what recovers).
Benchmarks and EXPERIMENTS.md are generated from these results, and the
checks double as regression tests for the reproduction.

Absolute numbers are not compared against the paper (our WAN geometry
and capacity draws are synthetic, see DESIGN.md); the checks encode the
orderings and dynamics the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SimulationConfig
from .comparison import POLICIES, ComparisonResult, compare_policies
from .runner import run_experiment
from .scenarios import (
    DEFAULT_FAILURE_EPOCH,
    failure_recovery_scenario,
    flash_crowd_scenario,
    random_query_scenario,
)

__all__ = [
    "FigureResult",
    "fig3_utilization",
    "fig4_replica_number",
    "fig5_replication_cost",
    "fig6_migration_times",
    "fig7_migration_cost",
    "fig8_load_imbalance",
    "fig9_path_length",
    "fig10_failure_recovery",
    "all_figures",
]


@dataclass(frozen=True)
class FigureResult:
    """Regenerated series + qualitative shape checks for one figure."""

    figure: str
    #: ``{panel: {policy: series}}`` — e.g. ``{"3a": {"rfh": [...]}}``.
    panels: dict[str, dict[str, np.ndarray]]
    #: ``{check name: passed}`` — the paper's qualitative claims.
    checks: dict[str, bool]
    #: Free-form context (steady-state numbers etc.) for reporting.
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when every shape check holds."""
        return all(self.checks.values())

    def failed_checks(self) -> tuple[str, ...]:
        return tuple(name for name, ok in self.checks.items() if not ok)


def _steady(series: np.ndarray, tail: int = 30) -> float:
    return float(series[-tail:].mean())


def _stage_windows(epochs: int, stages: int = 4) -> list[tuple[int, int]]:
    """Last 40 % of each flash-crowd stage (past the adaptation front)."""
    length = epochs // stages
    out = []
    for k in range(stages):
        start = k * length
        out.append((start + int(0.6 * length), start + length))
    return out


# ----------------------------------------------------------------------
# Fig. 3 — replica utilization rate
# ----------------------------------------------------------------------
def fig3_utilization(
    config: SimulationConfig,
    epochs_random: int = 250,
    epochs_flash: int = 400,
    policies: tuple[str, ...] = POLICIES,
) -> FigureResult:
    """Fig. 3(a)/(b): average replica utilization, both query settings.

    Paper claims checked: under random query RFH is highest and random
    lowest, with the full ordering rfh > request > owner > random; under
    flash crowd the request-oriented algorithm collapses after the first
    stage change while RFH dips once and recovers to roughly its
    pre-shift level.
    """
    random_cmp = compare_policies(random_query_scenario(config, epochs_random), policies)
    flash_cmp = compare_policies(flash_crowd_scenario(config, epochs_flash), policies)

    util_a = random_cmp.series_table("utilization")
    util_b = flash_cmp.series_table("utilization")
    steady_a = {p: _steady(s) for p, s in util_a.items()}

    windows = _stage_windows(epochs_flash)
    s1 = {p: float(s[windows[0][0] : windows[0][1]].mean()) for p, s in util_b.items()}
    s2 = {p: float(s[windows[1][0] : windows[1][1]].mean()) for p, s in util_b.items()}
    s4 = {p: float(s[windows[3][0] : windows[3][1]].mean()) for p, s in util_b.items()}
    shift = epochs_flash // 4
    rfh_flash = util_b["rfh"]
    dip = float(rfh_flash[shift : shift + 15].mean())

    checks = {
        "3a rfh highest utilization": steady_a["rfh"] == max(steady_a.values()),
        "3a random lowest utilization": steady_a["random"] == min(steady_a.values()),
        "3a full ordering rfh>request>owner>random": (
            steady_a["rfh"] > steady_a["request"] > steady_a["owner"] > steady_a["random"]
        ),
        "3b request collapses after stage change": s2["request"] < 0.8 * s1["request"],
        "3b rfh dips at the shift": dip < s1["rfh"],
        "3b rfh recovers close to initial": s4["rfh"] >= 0.85 * s1["rfh"],
        "3b rfh best after adaptation": s4["rfh"] == max(s4.values()),
    }
    notes = {f"3a steady {p}": v for p, v in steady_a.items()}
    notes.update({f"3b stage1 {p}": v for p, v in s1.items()})
    notes.update({f"3b stage4 {p}": v for p, v in s4.items()})
    notes["3b rfh dip"] = dip
    return FigureResult("fig3", {"3a": util_a, "3b": util_b}, checks, notes)


# ----------------------------------------------------------------------
# Fig. 4 — replica number
# ----------------------------------------------------------------------
def fig4_replica_number(
    config: SimulationConfig,
    epochs_random: int = 250,
    epochs_flash: int = 400,
    policies: tuple[str, ...] = POLICIES,
) -> FigureResult:
    """Fig. 4(a-d): total and per-partition replica counts.

    Paper claims checked: random needs the most replicas and request the
    fewest, with owner in between and RFH close to request; under flash
    crowd RFH's count stays near its random-query level while the
    static algorithms inflate.
    """
    random_cmp = compare_policies(random_query_scenario(config, epochs_random), policies)
    flash_cmp = compare_policies(flash_crowd_scenario(config, epochs_flash), policies)

    total_a = random_cmp.series_table("total_replicas")
    total_b = flash_cmp.series_table("total_replicas")
    avg_a = random_cmp.series_table("avg_replicas")
    avg_b = flash_cmp.series_table("avg_replicas")
    end_a = {p: float(s[-1]) for p, s in total_a.items()}
    end_b = {p: float(s[-1]) for p, s in total_b.items()}

    checks = {
        "4ab random needs the most replicas": end_a["random"] == max(end_a.values()),
        "4ab ordering random>owner>rfh": end_a["random"] > end_a["owner"] > end_a["rfh"],
        "4ab request fewest replicas": end_a["request"] == min(end_a.values()),
        "4ab rfh close to request (within 2x)": end_a["rfh"] <= 2.0 * end_a["request"],
        "4cd rfh flash count near random-query level": (
            abs(end_b["rfh"] - end_a["rfh"]) <= 0.35 * end_a["rfh"]
        ),
        "4cd random inflates under flash": end_b["random"] >= end_a["random"],
        "4cd rfh fewer than random and owner under flash": (
            end_b["rfh"] < end_b["random"] and end_b["rfh"] < end_b["owner"]
        ),
    }
    notes = {f"4a end {p}": v for p, v in end_a.items()}
    notes.update({f"4c end {p}": v for p, v in end_b.items()})
    return FigureResult(
        "fig4",
        {"4a": total_a, "4b": avg_a, "4c": total_b, "4d": avg_b},
        checks,
        notes,
    )


# ----------------------------------------------------------------------
# Fig. 5 — replication cost
# ----------------------------------------------------------------------
def fig5_replication_cost(
    config: SimulationConfig,
    epochs_random: int = 150,
    epochs_flash: int = 400,
    policies: tuple[str, ...] = POLICIES,
) -> FigureResult:
    """Fig. 5(a-d): cumulative total and per-replica replication cost.

    Paper claims checked: the random algorithm pays by far the highest
    total and average cost in both settings; RFH pays less than random
    and less than request per unit under flash crowd (long-distance
    request replication).
    """
    random_cmp = compare_policies(random_query_scenario(config, epochs_random), policies)
    flash_cmp = compare_policies(flash_crowd_scenario(config, epochs_flash), policies)

    def panels(cmp: ComparisonResult) -> tuple[dict, dict]:
        total = {
            p: cmp[p].metrics.series("replication_cost").cumulative() for p in cmp.policies()
        }
        average = {}
        for p in cmp.policies():
            cum_cost = cmp[p].metrics.series("replication_cost").cumulative()
            cum_events = np.maximum(
                cmp[p].metrics.series("replication_count").cumulative(), 1.0
            )
            average[p] = cum_cost / cum_events
        return total, average

    total_a, avg_a = panels(random_cmp)
    total_b, avg_b = panels(flash_cmp)
    end_total_a = {p: float(s[-1]) for p, s in total_a.items()}
    end_total_b = {p: float(s[-1]) for p, s in total_b.items()}
    end_avg_b = {p: float(s[-1]) for p, s in avg_b.items()}

    checks = {
        "5ab random highest total cost": end_total_a["random"] == max(end_total_a.values()),
        "5ab rfh cheaper than random": end_total_a["rfh"] < end_total_a["random"],
        "5cd random highest total cost under flash": (
            end_total_b["random"] == max(end_total_b.values())
        ),
        "5cd request average cost above rfh under flash": (
            end_avg_b["request"] > end_avg_b["rfh"]
        ),
        "5cd rfh total below random under flash": end_total_b["rfh"] < end_total_b["random"],
    }
    notes = {f"5a total {p}": v for p, v in end_total_a.items()}
    notes.update({f"5c total {p}": v for p, v in end_total_b.items()})
    notes.update({f"5d avg {p}": v for p, v in end_avg_b.items()})
    return FigureResult(
        "fig5",
        {"5a": total_a, "5b": avg_a, "5c": total_b, "5d": avg_b},
        checks,
        notes,
    )


# ----------------------------------------------------------------------
# Fig. 6 — migration times
# ----------------------------------------------------------------------
def fig6_migration_times(
    config: SimulationConfig,
    epochs_random: int = 250,
    epochs_flash: int = 400,
    policies: tuple[str, ...] = POLICIES,
) -> FigureResult:
    """Fig. 6(a-d): cumulative migration counts.

    Paper claims checked: request migrates the most in both settings;
    random never migrates; owner's migrations are (near) zero absent
    membership changes; RFH migrates less than request; flash crowd
    forces more migrations than random query.
    """
    random_cmp = compare_policies(random_query_scenario(config, epochs_random), policies)
    flash_cmp = compare_policies(flash_crowd_scenario(config, epochs_flash), policies)
    total_a = {
        p: random_cmp[p].metrics.series("migration_count").cumulative()
        for p in random_cmp.policies()
    }
    total_b = {
        p: flash_cmp[p].metrics.series("migration_count").cumulative()
        for p in flash_cmp.policies()
    }
    end_a = {p: float(s[-1]) for p, s in total_a.items()}
    end_b = {p: float(s[-1]) for p, s in total_b.items()}

    checks = {
        "6ab request migrates the most": end_a["request"] == max(end_a.values()),
        # Exact zero is the claim: counts are integral-valued floats.
        "6ab random never migrates": end_a["random"] == 0.0,  # repro: noqa[REP004]
        "6ab owner migrations near zero": end_a["owner"] <= 5.0,
        "6ab rfh migrates less than request": end_a["rfh"] < end_a["request"],
        "6cd request migrates the most under flash": end_b["request"] == max(end_b.values()),
        "6cd flash forces more request migrations": end_b["request"] > end_a["request"],
        "6cd rfh migrates less than request under flash": end_b["rfh"] < end_b["request"],
    }
    notes = {f"6a total {p}": v for p, v in end_a.items()}
    notes.update({f"6c total {p}": v for p, v in end_b.items()})
    return FigureResult("fig6", {"6a": total_a, "6c": total_b}, checks, notes)


# ----------------------------------------------------------------------
# Fig. 7 — migration cost
# ----------------------------------------------------------------------
def fig7_migration_cost(
    config: SimulationConfig,
    epochs_random: int = 150,
    epochs_flash: int = 400,
    policies: tuple[str, ...] = POLICIES,
) -> FigureResult:
    """Fig. 7(a-d): cumulative migration cost.

    Paper claims checked: request pays the highest migration cost;
    random and owner pay zero; RFH pays less than request; flash crowd
    costs more than random query for the migrating algorithms.
    """
    random_cmp = compare_policies(random_query_scenario(config, epochs_random), policies)
    flash_cmp = compare_policies(flash_crowd_scenario(config, epochs_flash), policies)
    total_a = {
        p: random_cmp[p].metrics.series("migration_cost").cumulative()
        for p in random_cmp.policies()
    }
    total_b = {
        p: flash_cmp[p].metrics.series("migration_cost").cumulative()
        for p in flash_cmp.policies()
    }
    end_a = {p: float(s[-1]) for p, s in total_a.items()}
    end_b = {p: float(s[-1]) for p, s in total_b.items()}

    checks = {
        "7ab request pays the most": end_a["request"] == max(end_a.values()),
        # Exact zero is the claim: these policies never replicate.
        "7ab random pays zero": end_a["random"] == 0.0,  # repro: noqa[REP004]
        "7ab owner pays zero": end_a["owner"] == 0.0,  # repro: noqa[REP004]
        "7ab rfh pays less than request": end_a["rfh"] < end_a["request"],
        "7cd flash costlier than random query": end_b["request"] > end_a["request"],
        "7cd rfh below request under flash": end_b["rfh"] < end_b["request"],
    }
    notes = {f"7a total {p}": v for p, v in end_a.items()}
    notes.update({f"7c total {p}": v for p, v in end_b.items()})
    return FigureResult("fig7", {"7a": total_a, "7c": total_b}, checks, notes)


# ----------------------------------------------------------------------
# Fig. 8 — load imbalance
# ----------------------------------------------------------------------
def fig8_load_imbalance(
    config: SimulationConfig,
    epochs_random: int = 300,
    epochs_flash: int = 400,
    policies: tuple[str, ...] = POLICIES,
) -> FigureResult:
    """Fig. 8(a/b): per-replica load imbalance (normalised Eq. 26).

    Paper claims checked: RFH's blocking-probability placement gives the
    best (lowest) load balance figure in both settings, and random — the
    fully blind placement — the worst.
    """
    random_cmp = compare_policies(random_query_scenario(config, epochs_random), policies)
    flash_cmp = compare_policies(flash_crowd_scenario(config, epochs_flash), policies)
    imb_a = random_cmp.series_table("load_imbalance")
    imb_b = flash_cmp.series_table("load_imbalance")
    steady_a = {p: _steady(s) for p, s in imb_a.items()}
    steady_b = {p: _steady(s) for p, s in imb_b.items()}

    checks = {
        "8a rfh best balance": steady_a["rfh"] == min(steady_a.values()),
        "8a random worst balance": steady_a["random"] == max(steady_a.values()),
        "8b rfh best balance under flash": steady_b["rfh"] == min(steady_b.values()),
        "8b random worst balance under flash": steady_b["random"] == max(steady_b.values()),
    }
    notes = {f"8a steady {p}": v for p, v in steady_a.items()}
    notes.update({f"8b steady {p}": v for p, v in steady_b.items()})
    return FigureResult("fig8", {"8a": imb_a, "8b": imb_b}, checks, notes)


# ----------------------------------------------------------------------
# Fig. 9 — lookup path length
# ----------------------------------------------------------------------
def fig9_path_length(
    config: SimulationConfig,
    epochs_random: int = 100,
    epochs_flash: int = 400,
    policies: tuple[str, ...] = POLICIES,
) -> FigureResult:
    """Fig. 9(a/b): mean lookup path length.

    Paper claims checked: every algorithm's path drops sharply from the
    replica-free start; owner-oriented stays the longest (replicas sit
    next to the holder, so queries travel nearly the whole route); RFH
    ends shorter than owner in both settings.
    """
    random_cmp = compare_policies(random_query_scenario(config, epochs_random), policies)
    flash_cmp = compare_policies(flash_crowd_scenario(config, epochs_flash), policies)
    path_a = random_cmp.series_table("path_length")
    path_b = flash_cmp.series_table("path_length")
    steady_a = {p: _steady(s, tail=20) for p, s in path_a.items()}
    steady_b = {p: _steady(s, tail=40) for p, s in path_b.items()}
    initial = {p: float(s[:3].mean()) for p, s in path_a.items()}

    mean_drop = float(
        np.mean([1.0 - steady_a[p] / max(initial[p], 1e-9) for p in policies])
    )
    checks = {
        "9a paths shorten for every policy": all(
            initial[p] > steady_a[p] for p in policies
        ),
        "9a mean drop is sharp (>=30%)": mean_drop >= 0.30,
        "9a owner longest path": steady_a["owner"] == max(steady_a.values()),
        "9a rfh shorter than owner": steady_a["rfh"] < steady_a["owner"],
        "9b owner longest path under flash": steady_b["owner"] == max(steady_b.values()),
        "9b rfh shorter than owner under flash": steady_b["rfh"] < steady_b["owner"],
    }
    notes = {f"9a steady {p}": v for p, v in steady_a.items()}
    notes.update({f"9a initial {p}": v for p, v in initial.items()})
    notes.update({f"9b steady {p}": v for p, v in steady_b.items()})
    return FigureResult("fig9", {"9a": path_a, "9b": path_b}, checks, notes)


# ----------------------------------------------------------------------
# Fig. 10 — node failure and recovery
# ----------------------------------------------------------------------
def fig10_failure_recovery(
    config: SimulationConfig,
    epochs: int = 500,
    failure_epoch: int = DEFAULT_FAILURE_EPOCH,
    failure_count: int = 30,
) -> FigureResult:
    """Fig. 10: RFH under a mass failure.

    "The number of replicas is keep increasing to meet the need of query
    load at first.  Then when the replicas number becomes stable, 30
    servers are randomly removed at epoch 290, resulting in a sharp
    decrease of replicas number.  ...  The replica number increases as
    time passes by, and reaches the same level as initial."
    """
    scenario = failure_recovery_scenario(
        config, epochs=epochs, failure_epoch=failure_epoch, failure_count=failure_count
    )
    result = run_experiment("rfh", scenario)
    replicas = result.series("total_replicas")
    alive = result.series("alive_servers")

    pre = float(replicas[failure_epoch - 30 : failure_epoch].mean())
    drop = float(replicas[failure_epoch])
    final = float(replicas[-30:].mean())
    start = float(replicas[0])

    checks = {
        "10 replica count grows initially": pre > 1.5 * start,
        "10 sharp drop at the failure epoch": drop < 0.85 * pre,
        # Server counts are exact integers stored as floats.
        "10 servers actually removed": float(alive[failure_epoch]) == float(  # repro: noqa[REP004]
            alive[failure_epoch - 1]
        ) - failure_count,
        "10 recovery to near pre-failure level": final >= 0.85 * pre,
        "10 no partition stays lost": float(result.series("lost_partitions")[-1]) == 0.0,  # repro: noqa[REP004]
    }
    notes = {
        "10 pre-failure replicas": pre,
        "10 at-failure replicas": drop,
        "10 final replicas": final,
    }
    return FigureResult(
        "fig10", {"10": {"rfh": replicas, "alive_servers": alive}}, checks, notes
    )


def all_figures(config: SimulationConfig) -> dict[str, FigureResult]:
    """Regenerate every figure (used by the EXPERIMENTS.md generator)."""
    return {
        "fig3": fig3_utilization(config),
        "fig4": fig4_replica_number(config),
        "fig5": fig5_replication_cost(config),
        "fig6": fig6_migration_times(config),
        "fig7": fig7_migration_cost(config),
        "fig8": fig8_load_imbalance(config),
        "fig9": fig9_path_length(config),
        "fig10": fig10_failure_recovery(config),
    }
