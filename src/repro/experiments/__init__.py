"""Experiment harnesses: one entry per paper figure (Section III).

* :mod:`repro.experiments.scenarios` — named workload/event scenarios
  (random query, flash crowd, node failure & recovery);
* :mod:`repro.experiments.runner` — run one policy on one scenario;
* :mod:`repro.experiments.comparison` — run all four policies on the
  *identical* recorded trace;
* :mod:`repro.experiments.figures` — ``fig3`` .. ``fig10`` functions
  that regenerate each figure's series and check its qualitative shape;
* :mod:`repro.experiments.report` — markdown rendering for
  EXPERIMENTS.md.
"""

from .comparison import ComparisonResult, compare_policies
from .figures import (
    FigureResult,
    fig3_utilization,
    fig4_replica_number,
    fig5_replication_cost,
    fig6_migration_times,
    fig7_migration_cost,
    fig8_load_imbalance,
    fig9_path_length,
    fig10_failure_recovery,
)
from .ablations import alpha_sweep, placement_ablation, threshold_sweep
from .replication import MetricStats, ReplicationResult, replicate
from .runner import ExperimentResult, run_experiment
from .sla import SlaResult, sla_comparison
from .surges import SurgeResult, location_shift_surge, popularity_shift_surge
from .scenarios import (
    Scenario,
    failure_recovery_scenario,
    flash_crowd_scenario,
    random_query_scenario,
)

__all__ = [
    "Scenario",
    "random_query_scenario",
    "flash_crowd_scenario",
    "failure_recovery_scenario",
    "ExperimentResult",
    "run_experiment",
    "ComparisonResult",
    "compare_policies",
    "FigureResult",
    "fig3_utilization",
    "fig4_replica_number",
    "fig5_replication_cost",
    "fig6_migration_times",
    "fig7_migration_cost",
    "fig8_load_imbalance",
    "fig9_path_length",
    "fig10_failure_recovery",
    "SlaResult",
    "sla_comparison",
    "SurgeResult",
    "location_shift_surge",
    "popularity_shift_surge",
    "alpha_sweep",
    "threshold_sweep",
    "placement_ablation",
    "MetricStats",
    "ReplicationResult",
    "replicate",
]
