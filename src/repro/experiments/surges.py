"""The two query-surge types of Section II-F, as experiments.

The paper describes — but does not plot — two surge classes and argues
how each algorithm copes:

* **Location shift** ("query location changes"): demand moves from
  Tokyo-adjacent origins to Beijing-adjacent ones.  Claimed: "it has
  little impact on the RFH algorithm ... the traffic hub nodes are
  still D and E"; "little impact on the owner-oriented algorithm";
  "however, replicas have to migrate or be added ... according to the
  request-oriented algorithm, resulting in relatively low efficiency
  and high cost."
* **Popularity shift** ("the popularity of a partition changes over
  time"): a hot partition cools while a cold one heats up.  Claimed:
  "The RFH algorithm can adapt the replica number according to changing
  traffic ... unwanted replicas will commit suicide to save resources."

These experiments quantify both claims and are exercised by
``benchmarks/bench_surges.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SimulationConfig
from ..sim.engine import Simulation
from ..sim.rng import RngTree
from ..workload.generator import QueryGenerator
from ..workload.patterns import LocationShiftPattern, PopularityShiftPattern
from ..workload.trace import WorkloadTrace

__all__ = ["SurgeResult", "location_shift_surge", "popularity_shift_surge"]


@dataclass(frozen=True)
class SurgeResult:
    """Series + shape checks for one surge experiment."""

    name: str
    series: dict[str, dict[str, np.ndarray]]
    checks: dict[str, bool]
    notes: dict[str, float]

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> tuple[str, ...]:
        return tuple(name for name, ok in self.checks.items() if not ok)


def _run(config: SimulationConfig, trace: WorkloadTrace, policy: str, epochs: int):
    sim = Simulation(config, policy=policy, workload=trace)
    return sim.run(epochs)


def location_shift_surge(
    config: SimulationConfig,
    epochs: int = 300,
    shift_start: int = 120,
    shift_end: int = 160,
) -> SurgeResult:
    """Section II-F's first surge: origins drift Tokyo -> Beijing.

    Checks: RFH's utilization after the shift stays close to its
    pre-shift level (the Pacific corridor hubs still carry the flows);
    request-oriented pays more migration than RFH to follow the crowd.
    """
    pattern = LocationShiftPattern(
        config.workload.num_partitions,
        10,
        config.workload.zipf_exponent,
        from_origins=(8,),  # Tokyo (I)
        to_origins=(7,),  # Beijing (H)
        shift_start=shift_start,
        shift_end=shift_end,
    )
    generator = QueryGenerator(
        config.workload, pattern, RngTree(config.seed).stream("surge-location")
    )
    trace = WorkloadTrace.record(generator, epochs)

    series: dict[str, dict[str, np.ndarray]] = {"utilization": {}, "migration": {}}
    notes: dict[str, float] = {}
    window = 40
    for policy in ("rfh", "request", "owner"):
        metrics = _run(config, trace, policy, epochs)
        util = metrics.array("utilization")
        series["utilization"][policy] = util
        series["migration"][policy] = metrics.series("migration_count").cumulative()
        notes[f"{policy} util before"] = float(
            util[shift_start - window : shift_start].mean()
        )
        notes[f"{policy} util after"] = float(util[-window:].mean())
        notes[f"{policy} migrations"] = float(
            metrics.array("migration_count").sum()
        )

    checks = {
        "rfh keeps utilization through the shift": (
            notes["rfh util after"] >= 0.8 * notes["rfh util before"]
        ),
        "owner unaffected by the shift": (
            notes["owner util after"] >= 0.8 * notes["owner util before"]
        ),
        "request pays more migration than rfh": (
            notes["request migrations"] > notes["rfh migrations"]
        ),
    }
    return SurgeResult("location-shift", series, checks, notes)


def popularity_shift_surge(
    config: SimulationConfig,
    epochs: int = 300,
    shift_epoch: int = 150,
    rotate_by: int = 32,
) -> SurgeResult:
    """Section II-F's second surge: *which* partition is hot flips.

    At ``shift_epoch`` the Zipf ranking rotates by half the partition
    space, so the old hot partitions go cold and vice versa.  Checks:
    RFH grows the newly-hot partitions' replica groups, shrinks the
    cooled ones (suicides fire), and keeps the *total* footprint in the
    same band — "adapt the replica number according to changing
    traffic".
    """
    num_partitions = config.workload.num_partitions
    pattern = PopularityShiftPattern(
        num_partitions,
        10,
        config.workload.zipf_exponent,
        shift_epochs=(shift_epoch,),
        rotate_by=rotate_by,
    )
    generator = QueryGenerator(
        config.workload, pattern, RngTree(config.seed).stream("surge-popularity")
    )
    trace = WorkloadTrace.record(generator, epochs)

    sim = Simulation(config, policy="rfh", workload=trace)
    hot_before = 0  # hottest partition before the shift
    hot_after = rotate_by % num_partitions  # hottest after

    before_counts = after_counts = None
    for epoch in range(epochs):
        sim.step()
        if epoch == shift_epoch - 1:
            before_counts = list(sim.replicas.per_partition_counts())
    after_counts = list(sim.replicas.per_partition_counts())
    assert before_counts is not None

    metrics = sim.metrics
    suicides_after = float(metrics.array("suicide_count")[shift_epoch:].sum())
    total_before = float(metrics.array("total_replicas")[shift_epoch - 1])
    total_after = float(metrics.array("total_replicas")[-1])

    notes = {
        "old-hot replicas before": float(before_counts[hot_before]),
        "old-hot replicas after": float(after_counts[hot_before]),
        "new-hot replicas before": float(before_counts[hot_after]),
        "new-hot replicas after": float(after_counts[hot_after]),
        "suicides after shift": suicides_after,
        "total before": total_before,
        "total after": total_after,
    }
    checks = {
        "newly-hot partition gains replicas": (
            after_counts[hot_after] > before_counts[hot_after]
        ),
        "cooled partition sheds replicas": (
            after_counts[hot_before] < before_counts[hot_before]
        ),
        "suicides reclaim the cooled replicas": suicides_after > 0,
        "total footprint stays in band": (
            abs(total_after - total_before) <= 0.35 * total_before
        ),
    }
    series = {
        "total_replicas": {"rfh": metrics.array("total_replicas")},
        "utilization": {"rfh": metrics.array("utilization")},
    }
    return SurgeResult("popularity-shift", series, checks, notes)
