"""Ablation studies for the design choices DESIGN.md calls out.

* **A1 — smoothing factor α** (Eqs. 10–11): stability versus
  responsiveness of RFH under the flash crowd;
* **A2 — threshold sweep β/γ/δ** (Eqs. 12/13/15): the replica-count /
  utilization trade-off under random query;
* **A3 — blocking-probability placement** (Eq. 18): how much of RFH's
  load-balance win comes from the lowest-BP server choice, isolated by
  swapping in blind random in-datacenter placement.

Each returns plain dictionaries of summary numbers so benchmarks can
print paper-style rows and tests can pin the qualitative outcome.
"""

from __future__ import annotations

import numpy as np

from ..config import RFHParameters, SimulationConfig
from ..core.decision import RFHDecision
from ..core.placement import choose_random_server
from ..core.policy import RFHPolicy
from ..sim.engine import Simulation
from .scenarios import Scenario, flash_crowd_scenario, random_query_scenario

__all__ = [
    "RandomPlacementRFHPolicy",
    "alpha_sweep",
    "threshold_sweep",
    "placement_ablation",
]


class _RandomPlacementDecision(RFHDecision):
    """RFH decision tree with Eq. 18's placement replaced by a blind
    uniform in-datacenter choice (everything else identical)."""

    def __init__(self, params: RFHParameters, rng: np.random.Generator) -> None:
        super().__init__(params)
        self._rng = rng

    def _choose_server(self, partition, obs, dc, exclude=()):  # type: ignore[override]
        holding = {sid for sid, _ in obs.replicas.servers_with(partition)}
        holding.update(exclude)
        return choose_random_server(
            obs.cluster,
            dc,
            self._rng,
            obs.partition_size_mb,
            self._params.phi,
            exclude=holding,
        )


class RandomPlacementRFHPolicy(RFHPolicy):
    """RFH minus the blocking-probability server choice (ablation A3)."""

    name = "rfh-random-placement"

    def __init__(self, params: RFHParameters, rng: np.random.Generator) -> None:
        super().__init__(params)
        self._decision = _RandomPlacementDecision(params, rng)


def _run(scenario: Scenario, policy) -> dict[str, float]:
    sim = Simulation(
        scenario.config, policy=policy, workload=scenario.trace, events=scenario.events
    )
    metrics = sim.run(scenario.epochs)
    tail = 30
    return {
        "utilization": metrics.series("utilization").tail_mean(tail),
        "total_replicas": metrics.series("total_replicas").last(),
        "load_imbalance": metrics.series("load_imbalance").tail_mean(tail),
        "unserved": metrics.series("unserved").tail_mean(tail),
        "replication_total": float(metrics.array("replication_count").sum()),
        "suicide_total": float(metrics.array("suicide_count").sum()),
        "migration_total": float(metrics.array("migration_count").sum()),
    }


def alpha_sweep(
    config: SimulationConfig,
    alphas: tuple[float, ...] = (0.05, 0.2, 0.5, 0.8),
    epochs: int = 400,
) -> dict[float, dict[str, float]]:
    """A1: run RFH on the flash crowd for several smoothing factors.

    Small α smooths heavily (stable but slow to adapt); large α chases
    every Poisson fluctuation (responsive but churny) — the sweep
    surfaces the trade-off behind Table I's α = 0.2.
    """
    scenario = flash_crowd_scenario(config, epochs=epochs)
    out: dict[float, dict[str, float]] = {}
    for alpha in alphas:
        params = RFHParameters(
            alpha=alpha,
            beta=config.rfh.beta,
            gamma=config.rfh.gamma,
            delta=config.rfh.delta,
            mu=config.rfh.mu,
        )
        out[alpha] = _run(scenario, RFHPolicy(params))
        out[alpha]["churn"] = (
            out[alpha]["replication_total"] + out[alpha]["suicide_total"]
        )
    return out


def threshold_sweep(
    config: SimulationConfig,
    betas: tuple[float, ...] = (1.5, 2.0, 3.0),
    deltas: tuple[float, ...] = (0.1, 0.2, 0.4),
    epochs: int = 250,
) -> dict[tuple[float, float], dict[str, float]]:
    """A2: sweep the overload (β) and suicide (δ) thresholds jointly."""
    scenario = random_query_scenario(config, epochs=epochs)
    out: dict[tuple[float, float], dict[str, float]] = {}
    for beta in betas:
        for delta in deltas:
            params = RFHParameters(beta=beta, delta=delta)
            out[(beta, delta)] = _run(scenario, RFHPolicy(params))
    return out


def placement_ablation(
    config: SimulationConfig, epochs: int = 300
) -> dict[str, dict[str, float]]:
    """A3: Eq. 18 placement versus blind random in-DC placement."""
    scenario = random_query_scenario(config, epochs=epochs)
    blocking = _run(scenario, RFHPolicy(config.rfh))

    def build(sim: Simulation):
        return RandomPlacementRFHPolicy(
            sim.config.rfh, sim.rng_tree.stream("ablation-placement")
        )

    blind = _run(scenario, build)
    return {"lowest-blocking": blocking, "random-in-dc": blind}
