"""Named evaluation scenarios (paper Section III-A).

A :class:`Scenario` bundles everything that defines one experiment
except the policy: the recorded workload trace (so every policy sees
identical queries), the scheduled membership events, and the epoch
count.  The three scenarios of the paper:

* **random query** — uniform origins, Zipf partition popularity;
* **flash crowd** — the four-stage origin schedule (80 % near H/I/J,
  then A/B/C, then E/F/G, then uniform; each stage a quarter of the
  run);
* **failure & recovery** — random query plus "30 servers are randomly
  removed at epoch 290" (Fig. 10), with an optional recovery event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chaos.schedule import (
    ChaosSchedule,
    CorrelatedFailure,
    Flapping,
    RollingOutage,
    WanPartition,
)
from ..config import SimulationConfig
from ..sim.events import MassFailureEvent, MembershipEvent, ServerRecoveryEvent
from ..sim.rng import RngTree
from ..workload.generator import QueryGenerator
from ..workload.patterns import FlashCrowdPattern, UniformPattern
from ..workload.trace import WorkloadTrace

__all__ = [
    "Scenario",
    "random_query_scenario",
    "flash_crowd_scenario",
    "failure_recovery_scenario",
    "chaos_schedule",
    "CHAOS_SCENARIOS",
    "DEFAULT_FAILURE_EPOCH",
    "DEFAULT_FAILURE_COUNT",
]

#: Fig. 10: "30 servers are randomly removed at epoch 290".
DEFAULT_FAILURE_EPOCH: int = 290
DEFAULT_FAILURE_COUNT: int = 30


@dataclass(frozen=True)
class Scenario:
    """One fully-specified experiment setup, minus the policy."""

    name: str
    config: SimulationConfig
    trace: WorkloadTrace
    epochs: int
    events: tuple[MembershipEvent, ...] = field(default=())
    #: Optional chaos schedule compiled by the simulation at construction
    #: (victims drawn from the run's seeded "chaos" stream).
    chaos: ChaosSchedule | None = None

    def __post_init__(self) -> None:
        if self.epochs > len(self.trace):
            raise ValueError(
                f"scenario {self.name!r} needs {self.epochs} epochs but the "
                f"trace only covers {len(self.trace)}"
            )


def _record(config: SimulationConfig, pattern, epochs: int, rng) -> WorkloadTrace:
    """Record ``epochs`` of workload drawn from an already-built stream.

    Callers build the stream with a *literal* name (REP006: the stream
    registry must stay greppable), so this helper takes the generator,
    not the name.
    """
    generator = QueryGenerator(config.workload, pattern, rng)
    return WorkloadTrace.record(generator, epochs)


def random_query_scenario(
    config: SimulationConfig, epochs: int = 250, num_datacenters: int = 10
) -> Scenario:
    """The "random and even query rate" setting of Figs. 3a-9a."""
    pattern = UniformPattern(
        config.workload.num_partitions, num_datacenters, config.workload.zipf_exponent
    )
    return Scenario(
        name="random-query",
        config=config,
        trace=_record(
            config, pattern, epochs, RngTree(config.seed).stream("scenario-random")
        ),
        epochs=epochs,
    )


def flash_crowd_scenario(
    config: SimulationConfig, epochs: int = 400, num_datacenters: int = 10
) -> Scenario:
    """The four-stage flash crowd of Figs. 3b-9b."""
    pattern = FlashCrowdPattern(
        config.workload.num_partitions,
        num_datacenters,
        config.workload.zipf_exponent,
        total_epochs=epochs,
    )
    return Scenario(
        name="flash-crowd",
        config=config,
        trace=_record(
            config, pattern, epochs, RngTree(config.seed).stream("scenario-flash")
        ),
        epochs=epochs,
    )


def failure_recovery_scenario(
    config: SimulationConfig,
    epochs: int = 500,
    failure_epoch: int = DEFAULT_FAILURE_EPOCH,
    failure_count: int = DEFAULT_FAILURE_COUNT,
    recovery_epoch: int | None = None,
    num_datacenters: int = 10,
) -> Scenario:
    """Fig. 10: mass failure mid-run, optional later recovery."""
    pattern = UniformPattern(
        config.workload.num_partitions, num_datacenters, config.workload.zipf_exponent
    )
    events: list[MembershipEvent] = [
        MassFailureEvent(epoch=failure_epoch, count=failure_count)
    ]
    if recovery_epoch is not None:
        if recovery_epoch <= failure_epoch:
            raise ValueError("recovery must come after the failure")
        events.append(ServerRecoveryEvent(epoch=recovery_epoch))
    return Scenario(
        name="failure-recovery",
        config=config,
        trace=_record(
            config, pattern, epochs, RngTree(config.seed).stream("scenario-failure")
        ),
        epochs=epochs,
        events=tuple(events),
    )


# ----------------------------------------------------------------------
# Chaos scenarios
# ----------------------------------------------------------------------
def _rack_outage(epochs: int) -> ChaosSchedule:
    return ChaosSchedule(
        "rack-outage",
        (
            CorrelatedFailure(
                epoch=max(1, epochs // 3),
                scope="rack",
                domains=2,
                downtime=max(1, epochs // 4),
            ),
        ),
    )


def _room_outage(epochs: int) -> ChaosSchedule:
    return ChaosSchedule(
        "room-outage",
        (
            CorrelatedFailure(
                epoch=max(1, epochs // 3),
                scope="room",
                domains=1,
                downtime=max(1, epochs // 4),
            ),
        ),
    )


def _dc_outage(epochs: int) -> ChaosSchedule:
    return ChaosSchedule(
        "dc-outage",
        (
            CorrelatedFailure(
                epoch=max(1, epochs // 3),
                scope="datacenter",
                domains=1,
                downtime=max(1, epochs // 4),
            ),
        ),
    )


def _rolling_dc(epochs: int) -> ChaosSchedule:
    return ChaosSchedule(
        "rolling-dc",
        (
            RollingOutage(
                start_epoch=max(1, epochs // 4),
                scope="datacenter",
                domains=3,
                stride=max(2, epochs // 10),
                downtime=max(2, epochs // 8),
            ),
        ),
    )


def _flapping(epochs: int) -> ChaosSchedule:
    return ChaosSchedule(
        "flapping",
        (
            Flapping(
                start_epoch=max(1, epochs // 5),
                count=5,
                up_epochs=6,
                down_epochs=3,
                cycles=4,
            ),
        ),
    )


def _wan_partition(epochs: int) -> ChaosSchedule:
    # Isolate the Asian continent of the default 10-site deployment.
    return ChaosSchedule(
        "wan-partition",
        (
            WanPartition(
                epoch=max(1, epochs // 3),
                duration=max(2, epochs // 6),
                isolate=("H", "I", "J"),
            ),
        ),
    )


#: Named chaos scenarios, each an ``epochs -> ChaosSchedule`` builder
#: scaled to the run length (injection a third in, recovery well before
#: the end, so steady-state tails reflect the healed system).
CHAOS_SCENARIOS: dict[str, object] = {
    "rack-outage": _rack_outage,
    "room-outage": _room_outage,
    "dc-outage": _dc_outage,
    "rolling-dc": _rolling_dc,
    "flapping": _flapping,
    "wan-partition": _wan_partition,
}


def chaos_schedule(name: str, epochs: int) -> ChaosSchedule:
    """Build the named chaos schedule scaled to ``epochs``."""
    try:
        builder = CHAOS_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r}; choose from {sorted(CHAOS_SCENARIOS)}"
        ) from None
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    return builder(epochs)
