"""Run one policy on one scenario and package the result."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..metrics.collector import MetricsCollector
from ..sim.engine import Simulation
from .scenarios import Scenario

__all__ = ["ENGINES", "ExperimentResult", "run_experiment"]

#: Selectable epoch engines.  ``scalar`` is the reference
#: implementation; ``columnar`` is the vectorized engine of
#: :mod:`repro.sim.columnar`, bit-identical by contract.
ENGINES: tuple[str, ...] = ("scalar", "columnar")


def _engine_class(engine: str) -> type[Simulation]:
    if engine == "scalar":
        return Simulation
    if engine == "columnar":
        from ..sim.columnar import ColumnarSimulation

        return ColumnarSimulation
    raise ConfigurationError(f"unknown engine {engine!r}; choose from {ENGINES}")


@dataclass(frozen=True)
class ExperimentResult:
    """One (policy, scenario) run with convenience accessors."""

    policy: str
    scenario: str
    metrics: MetricsCollector
    simulation: Simulation
    engine: str = "scalar"

    def series(self, name: str) -> np.ndarray:
        """A metric series as an array."""
        return self.metrics.array(name)

    def cumulative(self, name: str) -> np.ndarray:
        """Running total of a per-epoch series (the paper's "total ..."
        panels are cumulative)."""
        return self.metrics.series(name).cumulative()

    def steady(self, name: str, tail: int = 30) -> float:
        """Steady-state estimate: mean over the last ``tail`` epochs."""
        return self.metrics.series(name).tail_mean(tail)

    def final(self, name: str) -> float:
        return self.metrics.series(name).last()


def run_experiment(
    policy: str,
    scenario: Scenario,
    *,
    tracer=None,
    profiler=None,
    instruments=None,
    invariants=None,
    timeseries=None,
    sanitizer=None,
    work=None,
    provenance=None,
    engine: str = "scalar",
) -> ExperimentResult:
    """Run ``policy`` over the scenario's recorded trace and events.

    ``engine`` selects the epoch core: ``"scalar"`` (the reference
    :class:`~repro.sim.engine.Simulation`) or ``"columnar"`` (the
    vectorized :class:`~repro.sim.columnar.ColumnarSimulation`, which
    produces bit-identical fingerprint chains by contract).  The engine
    name is stamped into every attached artifact's metadata so saved
    runs are attributable.

    Every run constructs a fresh :class:`Simulation` from the scenario's
    config, so repeated calls are bit-identical.  The optional
    ``tracer`` / ``profiler`` / ``instruments`` / ``timeseries`` /
    ``work`` hooks
    (see :mod:`repro.obs`) pass straight through to the simulation and
    stay reachable afterwards via ``result.simulation``; so do the
    scenario's chaos schedule and the ``invariants`` spec (see
    :class:`~repro.sim.engine.Simulation`).  A time-series recorder
    gets the standard run-identity keys (policy, scenario, seed,
    epochs, chaos) stamped into its artifact metadata unless the caller
    already set them; a
    :class:`~repro.staticcheck.sanitizer.DeterminismSanitizer` gets the
    same keys stamped into its fingerprint trail metadata.
    """
    simulation_class = _engine_class(engine)
    if sanitizer is not None:
        sanitizer.trail().meta.setdefault("policy", policy)
        sanitizer.trail().meta.setdefault("scenario", scenario.name)
        sanitizer.trail().meta.setdefault("seed", scenario.config.seed)
        sanitizer.trail().meta.setdefault("epochs", scenario.epochs)
        sanitizer.trail().meta.setdefault("engine", engine)
    if timeseries is not None:
        timeseries.meta.setdefault("policy", policy)
        timeseries.meta.setdefault("scenario", scenario.name)
        timeseries.meta.setdefault("seed", scenario.config.seed)
        timeseries.meta.setdefault("epochs", scenario.epochs)
        timeseries.meta.setdefault("engine", engine)
        if scenario.chaos is not None:
            timeseries.meta.setdefault("chaos", scenario.chaos.name)
    if provenance is not None:
        provenance.meta.setdefault("policy", policy)
        provenance.meta.setdefault("scenario", scenario.name)
        provenance.meta.setdefault("seed", scenario.config.seed)
        provenance.meta.setdefault("epochs", scenario.epochs)
        provenance.meta.setdefault("engine", engine)
        if scenario.chaos is not None:
            provenance.meta.setdefault("chaos", scenario.chaos.name)
    sim = simulation_class(
        scenario.config,
        policy=policy,
        workload=scenario.trace,
        events=scenario.events,
        tracer=tracer,
        profiler=profiler,
        instruments=instruments,
        chaos=scenario.chaos,
        invariants=invariants,
        timeseries=timeseries,
        sanitizer=sanitizer,
        work=work,
        provenance=provenance,
    )
    metrics = sim.run(scenario.epochs)
    return ExperimentResult(
        policy=policy,
        scenario=scenario.name,
        metrics=metrics,
        simulation=sim,
        engine=engine,
    )
