"""Run all four algorithms on one scenario (the paper's chart layout).

Every figure in Section III overlays the four algorithms on identical
workloads; :func:`compare_policies` reproduces that by replaying one
recorded trace through four fresh simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runner import ExperimentResult, run_experiment
from .scenarios import Scenario

__all__ = ["POLICIES", "ComparisonResult", "compare_policies"]

#: The paper's four algorithms, in its legend order.
POLICIES: tuple[str, ...] = ("request", "owner", "random", "rfh")


@dataclass(frozen=True)
class ComparisonResult:
    """All four policies' results on one scenario."""

    scenario: str
    results: dict[str, ExperimentResult]

    def __getitem__(self, policy: str) -> ExperimentResult:
        return self.results[policy]

    def policies(self) -> tuple[str, ...]:
        return tuple(self.results)

    def series_table(self, name: str) -> dict[str, np.ndarray]:
        """One metric series for every policy."""
        return {policy: res.series(name) for policy, res in self.results.items()}

    def steady_table(self, name: str, tail: int = 30) -> dict[str, float]:
        """Steady-state value of one metric for every policy."""
        return {policy: res.steady(name, tail) for policy, res in self.results.items()}

    def total_table(self, name: str) -> dict[str, float]:
        """Whole-run total of one per-epoch metric for every policy."""
        return {
            policy: float(res.series(name).sum())
            for policy, res in self.results.items()
        }

    def ranking(self, name: str, tail: int = 30, descending: bool = True) -> list[str]:
        """Policies ordered by steady-state value of a metric."""
        table = self.steady_table(name, tail)
        return sorted(table, key=lambda p: table[p], reverse=descending)


def compare_policies(
    scenario: Scenario,
    policies: tuple[str, ...] = POLICIES,
    *,
    tracer=None,
    profiler_factory=None,
    invariants=None,
    timeseries_factory=None,
    sanitizer_factory=None,
    provenance_factory=None,
    engine: str = "scalar",
) -> ComparisonResult:
    """Run every policy on the scenario's shared trace.

    ``tracer`` is shared across runs (every record carries a ``policy``
    field, so one JSONL file can hold all four algorithms);
    ``profiler_factory`` is called once per policy because phase timings
    must not mix runs.  ``timeseries_factory`` is likewise per-policy —
    called with the policy name, it returns a fresh
    :class:`~repro.obs.timeseries.TimeseriesRecorder` (or ``None``) so
    each algorithm records its own ``.tsdb.json`` trajectory, and
    ``sanitizer_factory`` (also called with the policy name) attaches a
    fresh per-policy
    :class:`~repro.staticcheck.sanitizer.DeterminismSanitizer`, and
    ``provenance_factory`` a fresh per-policy
    :class:`~repro.obs.provenance.ProvenanceRecorder` (one ``.prov.json``
    decision ledger per algorithm).
    Per-policy profilers, recorders and sanitizers stay reachable
    through ``result[policy].simulation``.  ``engine`` selects the
    epoch core for every run (see
    :func:`~repro.experiments.runner.run_experiment`).
    """
    results = {
        policy: run_experiment(
            policy,
            scenario,
            tracer=tracer,
            profiler=profiler_factory() if profiler_factory is not None else None,
            invariants=invariants,
            timeseries=(
                timeseries_factory(policy) if timeseries_factory is not None else None
            ),
            sanitizer=(
                sanitizer_factory(policy) if sanitizer_factory is not None else None
            ),
            provenance=(
                provenance_factory(policy) if provenance_factory is not None else None
            ),
            engine=engine,
        )
        for policy in policies
    }
    return ComparisonResult(scenario=scenario.name, results=results)
