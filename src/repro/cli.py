"""Command-line interface: ``python -m repro <command>``.

Sixteen subcommands cover the workflows a user reaches for first:

* ``run``     — one policy, one scenario, headline metrics (optionally
  exported to CSV/JSON); ``--chaos NAME`` overlays a chaos schedule;
* ``compare`` — all four algorithms on one shared trace, as a table;
* ``chaos``   — run one policy under a named chaos scenario with strict
  runtime invariant checking, and print what was injected;
* ``figures`` — regenerate the paper's figures and report shape checks;
* ``sla``     — the introduction's 300 ms SLA scoreboard;
* ``analyze`` — post-hoc trace analytics over a ``--trace-out`` file:
  replica lineage, root-cause chains, anomalies, plus Chrome-trace and
  Prometheus exporters;
* ``diff``    — compare two ``--timeseries-out`` artifacts metric by
  metric and classify each as improved/unchanged/regressed (non-zero
  exit on regression, for CI gating);
* ``dashboard`` — render a ``.tsdb.json`` run (optionally against a
  baseline) as a self-contained offline HTML dashboard;
* ``lint``    — AST determinism lint (REP001–REP006: unseeded RNGs,
  wall-clock reads, set-order iteration, float equality, mutable
  defaults, non-literal rng stream names) with noqa suppressions and a
  committed baseline; text/JSON/GitHub-annotation output;
* ``sanitize`` — run a config twice (or against a saved
  ``--fingerprint-out`` artifact) and report the **first divergent
  epoch and which component diverged** (replicas / storage / rng /
  metrics, down to the RNG stream);
* ``profile`` — run one policy under the deterministic hot-path
  profiler (kernel spans + work counters + allocation accounting) and
  write a versioned ``.prof.json`` plus flamegraph/speedscope exports;
* ``perfdiff`` — attribute a perf regression by diffing two
  ``.prof.json`` artifacts phase by phase, stack by stack and counter
  by counter (non-zero exit on regression, for CI gating);
* ``explain`` — render a ``--provenance-out`` decision ledger as a
  causal narrative: which Eq. 12/13/15/16 predicate fired for a
  partition, with the actual numbers and threshold slack, and why the
  rejected alternatives lost (``--why-not DC``);
* ``provdiff`` — align two ``.prov.json`` ledgers decision by decision
  and name the first divergent decision and the exact Eq. term that
  differed (non-zero exit on divergence, for CI gating);
* ``sweep``   — expand a ``{policy × scenario × seed × scale × engine}``
  grid (from a JSON manifest and/or axis flags) across parallel worker
  processes with live fleet progress, and merge the per-cell artifacts
  into one versioned ``.sweep.json`` with cross-seed ``mean ± CI``
  statistics (``--report`` markdown, ``--dashboard`` band plots,
  ``--resume``, ``--verify-cells`` determinism guard);
* ``sweepdiff`` — compare two ``.sweep.json`` artifacts cell-by-cell
  (fingerprint identity) and group-by-group (bootstrap CI overlap,
  judged through each metric's polarity; non-zero exit on regression or
  fingerprint mismatch, for CI gating).

Examples::

    python -m repro run --policy rfh --epochs 200 --seed 7
    python -m repro run --engine columnar --policy rfh --epochs 200 --seed 7
    python -m repro run --chaos flapping --epochs 200
    python -m repro chaos rack-outage --seed 42
    python -m repro compare --scenario flash --epochs 400
    python -m repro figures --only fig3 fig10
    python -m repro sla --epochs 250 --csv out.csv
    python -m repro run --trace-out t.jsonl && python -m repro analyze t.jsonl
    python -m repro run --timeseries-out base.tsdb.json
    python -m repro diff base.tsdb.json candidate.tsdb.json
    python -m repro dashboard run.tsdb.json --compare base.tsdb.json --out dash.html
    python -m repro lint src/repro --format github
    python -m repro sanitize --policy rfh --epochs 120 --seed 7
    python -m repro run --sanitize --fingerprint-out run.fp.json
    python -m repro sanitize --against run.fp.json
    python -m repro sanitize --engine columnar --against run.fp.json
    python -m repro profile --policy rfh --epochs 120 --out run.prof.json
    python -m repro perfdiff base.prof.json run.prof.json
    python -m repro run --provenance-out run.prov.json
    python -m repro explain run.prov.json --partition 7 --why-not 3
    python -m repro provdiff base.prov.json run.prov.json
    python -m repro sweep --policies rfh owner --seeds 1 2 3 4 5 \
        --epochs 120 --max-workers 4 --out sweeps/main --report
    python -m repro sweep --manifest grid.json --resume --dashboard
    python -m repro sweepdiff sweeps/base/sweep.sweep.json \
        sweeps/main/sweep.sweep.json
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import os
import sys
from collections.abc import Sequence

from .config import SimulationConfig, WorkloadParameters
from .experiments.comparison import POLICIES, compare_policies
from .experiments.runner import ENGINES, run_experiment
from .experiments.scenarios import (
    CHAOS_SCENARIOS,
    Scenario,
    chaos_schedule,
    failure_recovery_scenario,
    flash_crowd_scenario,
    random_query_scenario,
)
from .obs.paths import derived_path, tagged_path

__all__ = ["main", "build_parser"]

_SCENARIOS = {
    "random": random_query_scenario,
    "flash": flash_crowd_scenario,
    "failure": failure_recovery_scenario,
}

_HEADLINE = (
    ("utilization", "{:.3f}"),
    ("total_replicas", "{:.0f}"),
    ("path_length", "{:.2f}"),
    ("load_imbalance", "{:.2f}"),
    ("unserved", "{:.1f}"),
    ("sla_attainment", "{:.4f}"),
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RFH replication-algorithm reproduction (ICPP 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=42, help="root RNG seed")
        p.add_argument("--epochs", type=int, default=250, help="epochs to simulate")
        p.add_argument(
            "--partitions", type=int, default=64, help="number of data partitions"
        )
        p.add_argument(
            "--rate", type=float, default=300.0, help="Poisson queries per epoch"
        )
        p.add_argument(
            "--scenario",
            choices=sorted(_SCENARIOS),
            default="random",
            help="workload scenario",
        )

    def engine_opt(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--engine",
            choices=ENGINES,
            default="scalar",
            help="epoch core: 'scalar' (reference implementation) or "
            "'columnar' (vectorized numpy kernels; bit-identical "
            "fingerprint chains by contract, enforced by the "
            "differential suite)",
        )

    def chaos_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--chaos",
            choices=sorted(CHAOS_SCENARIOS),
            default=None,
            metavar="NAME",
            help="overlay a named chaos schedule "
            f"({', '.join(sorted(CHAOS_SCENARIOS))})",
        )
        p.add_argument(
            "--check-invariants",
            action="store_true",
            help="validate conservation invariants every epoch (strict: "
            "the run aborts on the first violation)",
        )

    def observability(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace-out",
            metavar="PATH.jsonl",
            help="stream a per-event JSONL trace (actions, membership, "
            "restores, SLA violations) to this file",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="time the six engine phases and print a per-phase table",
        )
        p.add_argument(
            "--analyze",
            action="store_true",
            help="run the trace-analytics pipeline (lineage, root causes, "
            "anomalies) on the captured trace after the run",
        )
        p.add_argument(
            "--timeseries-out",
            metavar="PATH.tsdb.json",
            help="record per-epoch metric/instrument/phase columns and "
            "save them as a versioned time-series artifact (compare runs "
            "with `repro diff`, render with `repro dashboard`); the "
            "compare command writes one file per policy, e.g. "
            "out.rfh.tsdb.json",
        )
        p.add_argument(
            "--timeseries-stride",
            type=int,
            default=1,
            metavar="N",
            help="sample the time series every N epochs (default 1)",
        )
        p.add_argument(
            "--sanitize",
            action="store_true",
            help="fingerprint engine state every epoch (replica map, "
            "storage, rng stream positions, metrics) into a hash chain; "
            "prints the final chain, comparable across same-seed runs",
        )
        p.add_argument(
            "--fingerprint-out",
            metavar="PATH.fp.json",
            help="save the determinism fingerprint trail to this file "
            "(implies --sanitize; feed it to `repro sanitize --against`); "
            "the compare command writes one file per policy",
        )
        p.add_argument(
            "--provenance-out",
            metavar="PATH.prov.json",
            help="record a decision-provenance ledger (every threshold "
            "predicate, candidate and action fate) and save it as a "
            "versioned artifact (query with `repro explain`, compare "
            "runs with `repro provdiff`); the compare command writes "
            "one file per policy",
        )
        p.add_argument(
            "--provenance-budget",
            type=int,
            default=None,
            metavar="N",
            help="cap the ledger at N decision records; oldest no-op "
            "decisions are compacted away first (default 50000)",
        )

    run_p = sub.add_parser("run", help="run one policy and print headline metrics")
    common(run_p)
    chaos_opts(run_p)
    engine_opt(run_p)
    run_p.add_argument(
        "--policy", choices=sorted(POLICIES), default="rfh", help="algorithm to run"
    )
    run_p.add_argument("--csv", help="export the metric series to this CSV file")
    run_p.add_argument("--json", help="export the metric series to this JSON file")
    observability(run_p)

    cmp_p = sub.add_parser("compare", help="run all four algorithms on one trace")
    common(cmp_p)
    chaos_opts(cmp_p)
    engine_opt(cmp_p)
    observability(cmp_p)

    chaos_p = sub.add_parser(
        "chaos",
        help="run one policy under a named chaos scenario with strict "
        "invariant checking",
    )
    chaos_p.add_argument(
        "scenario_name",
        metavar="SCENARIO",
        choices=sorted(CHAOS_SCENARIOS),
        help=f"chaos scenario: {', '.join(sorted(CHAOS_SCENARIOS))}",
    )
    chaos_p.add_argument("--seed", type=int, default=42, help="root RNG seed")
    chaos_p.add_argument("--epochs", type=int, default=120, help="epochs to simulate")
    chaos_p.add_argument(
        "--partitions", type=int, default=64, help="number of data partitions"
    )
    chaos_p.add_argument(
        "--rate", type=float, default=300.0, help="Poisson queries per epoch"
    )
    chaos_p.add_argument(
        "--policy", choices=sorted(POLICIES), default="rfh", help="algorithm to run"
    )
    chaos_p.add_argument("--csv", help="export the metric series to this CSV file")
    engine_opt(chaos_p)
    observability(chaos_p)

    fig_p = sub.add_parser("figures", help="regenerate the paper's figures")
    fig_p.add_argument("--seed", type=int, default=7)
    fig_p.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="FIG",
        help="subset, e.g. --only fig3 fig10 (default: all)",
    )

    sla_p = sub.add_parser("sla", help="SLA-attainment scoreboard (Section I)")
    common(sla_p)
    sla_p.add_argument("--csv", help="export the rfh run's series to CSV")

    an_p = sub.add_parser(
        "analyze",
        help="analyse a JSONL trace: replica lineage, root-cause chains, "
        "anomalies, or export to Chrome-trace / Prometheus formats",
    )
    an_p.add_argument("trace", metavar="TRACE.jsonl", help="a --trace-out file")
    an_p.add_argument(
        "--format",
        choices=("text", "json", "chrome-trace", "prometheus"),
        default="text",
        help="text report (default), structured JSON, Perfetto-loadable "
        "Chrome trace-event JSON, or Prometheus text exposition",
    )
    an_p.add_argument(
        "--out", help="write the output to this file instead of stdout"
    )
    an_p.add_argument(
        "--window",
        type=int,
        default=20,
        help="root-cause look-back window in epochs (default 20)",
    )

    diff_p = sub.add_parser(
        "diff",
        help="compare two time-series artifacts metric by metric; "
        "exits non-zero when any metric regressed",
    )
    diff_p.add_argument(
        "baseline", metavar="BASELINE.tsdb.json", help="the reference run"
    )
    diff_p.add_argument(
        "candidate", metavar="CANDIDATE.tsdb.json", help="the run under test"
    )
    diff_p.add_argument(
        "--format",
        choices=("text", "markdown", "json"),
        default="text",
        help="report format (default text)",
    )
    diff_p.add_argument("--out", help="write the report to this file instead of stdout")
    diff_p.add_argument(
        "--rel-tol",
        type=float,
        default=None,
        metavar="FRAC",
        help="override the default per-metric relative tolerance "
        "(e.g. 0.10 for 10%%)",
    )
    diff_p.add_argument(
        "--abs-tol",
        type=float,
        default=None,
        metavar="X",
        help="override the default per-metric absolute tolerance",
    )
    diff_p.add_argument(
        "--columns",
        nargs="*",
        default=None,
        metavar="NAME",
        help="restrict the diff to these columns (default: all shared)",
    )
    diff_p.add_argument(
        "--verbose",
        action="store_true",
        help="include unchanged metrics in the text/markdown report",
    )

    dash_p = sub.add_parser(
        "dashboard",
        help="render a time-series artifact as a self-contained "
        "offline HTML dashboard",
    )
    dash_p.add_argument("run", metavar="RUN.tsdb.json", help="the run to render")
    dash_p.add_argument(
        "--compare",
        metavar="BASE.tsdb.json",
        help="overlay a baseline run and show headline deltas",
    )
    dash_p.add_argument(
        "--out",
        default="dashboard.html",
        metavar="PATH.html",
        help="output HTML file (default dashboard.html)",
    )
    dash_p.add_argument("--title", help="dashboard title (default: from metadata)")

    lint_p = sub.add_parser(
        "lint",
        help="static analysis: determinism (REP0xx), kernel purity "
        "(REP1xx), concurrency (REP2xx) and project auditors (AUD)",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint_p.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format; 'github' emits ::error workflow commands "
        "that annotate PR diffs",
    )
    lint_p.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE|FAMILY",
        help="rule ids or family prefixes (REP0, REP1, REP2, AUD; "
        "comma-separable, e.g. REP1,REP2,AUD; repeatable); default: "
        "every REP rule — AUD project auditors are opt-in",
    )
    lint_p.add_argument(
        "--changed",
        action="store_true",
        help="lint only files that differ from git HEAD (modified, "
        "staged or untracked) under the given paths",
    )
    lint_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files in N parallel processes (0 = all cores); "
        "findings merge in sorted path order, so output is identical "
        "to a serial run",
    )
    lint_p.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file of grandfathered findings (default: "
        ".repro-lint-baseline.json when present)",
    )
    lint_p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding gates",
    )
    lint_p.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather all current active findings into the baseline "
        "file and exit 0",
    )
    lint_p.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings (text format)",
    )

    san_p = sub.add_parser(
        "sanitize",
        help="determinism check: run the config twice (or against a "
        "saved fingerprint) and report the first divergent epoch "
        "and component",
    )
    common(san_p)
    engine_opt(san_p)
    san_p.add_argument(
        "--policy", choices=sorted(POLICIES), default="rfh", help="algorithm to run"
    )
    san_p.add_argument(
        "--against",
        metavar="PATH.fp.json",
        default=None,
        help="compare this run against a saved fingerprint trail "
        "instead of re-running the config",
    )
    san_p.add_argument(
        "--save",
        metavar="PATH.fp.json",
        default=None,
        help="also save this run's fingerprint trail",
    )
    san_p.add_argument(
        "--json",
        action="store_true",
        help="print the divergence report as JSON",
    )

    prof_p = sub.add_parser(
        "profile",
        help="run one policy under the hot-path profiler and write a "
        "versioned .prof.json (plus flamegraph/speedscope exports)",
    )
    common(prof_p)
    chaos_opts(prof_p)
    engine_opt(prof_p)
    prof_p.add_argument(
        "--policy", choices=sorted(POLICIES), default="rfh", help="algorithm to run"
    )
    prof_p.add_argument(
        "--mode",
        choices=("kernels", "trace"),
        default="kernels",
        help="'kernels': deterministic instrumented spans; 'trace': "
        "sys.setprofile per-function attribution (slower)",
    )
    prof_p.add_argument(
        "--out",
        metavar="PATH.prof.json",
        default="run.prof.json",
        help="profile artifact path (default: run.prof.json)",
    )
    prof_p.add_argument(
        "--flamegraph",
        metavar="PATH.html",
        default=None,
        help="also write a self-contained flamegraph (default: "
        "<out-stem>.flame.html; pass '' to skip)",
    )
    prof_p.add_argument(
        "--speedscope",
        metavar="PATH.json",
        default=None,
        help="also write a speedscope-format export (default: "
        "<out-stem>.speedscope.json; pass '' to skip)",
    )
    prof_p.add_argument(
        "--top", type=int, default=10, help="hottest stacks to print (default 10)"
    )
    prof_p.add_argument(
        "--no-alloc",
        action="store_true",
        help="skip tracemalloc allocation accounting (faster)",
    )

    pdiff_p = sub.add_parser(
        "perfdiff",
        help="attribute a perf regression: diff two .prof.json artifacts "
        "by phase, stack and work counter (non-zero exit on regression)",
    )
    pdiff_p.add_argument(
        "baseline", metavar="BASE.prof.json", help="baseline profile artifact"
    )
    pdiff_p.add_argument(
        "candidate", metavar="CAND.prof.json", help="candidate profile artifact"
    )
    pdiff_p.add_argument(
        "--rel-tol",
        type=float,
        default=0.25,
        help="relative timing tolerance before a slowdown gates (default 0.25)",
    )
    pdiff_p.add_argument(
        "--abs-tol-ms",
        type=float,
        default=2.0,
        help="absolute timing tolerance in milliseconds (default 2.0)",
    )
    pdiff_p.add_argument(
        "--gate-counters",
        action="store_true",
        help="treat deterministic work-counter growth as a regression too",
    )
    pdiff_p.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    pdiff_p.add_argument(
        "--verbose", action="store_true", help="list all improvements"
    )
    pdiff_p.add_argument(
        "--out", help="write the report to this file instead of stdout"
    )

    exp_p = sub.add_parser(
        "explain",
        help="answer 'why did the policy do that?' from a .prov.json "
        "decision ledger: the causal narrative for one partition with "
        "every threshold term, slack and rejected alternative",
    )
    exp_p.add_argument(
        "artifact", metavar="RUN.prov.json", help="provenance artifact to query"
    )
    exp_p.add_argument(
        "--partition",
        type=int,
        required=True,
        metavar="P",
        help="partition whose decisions to explain",
    )
    exp_p.add_argument(
        "--epoch",
        type=int,
        default=None,
        metavar="E",
        help="restrict to one epoch (default: the partition's whole history)",
    )
    exp_p.add_argument(
        "--why-not",
        type=int,
        default=None,
        metavar="DC",
        help="also explain why this datacenter was NOT chosen "
        "(how far its traffic was from each threshold)",
    )
    exp_p.add_argument(
        "--out", default=None, help="write the narrative to this file"
    )

    pvd_p = sub.add_parser(
        "provdiff",
        help="diff two .prov.json decision ledgers decision-by-decision; "
        "names the first divergent decision and exact threshold term "
        "(non-zero exit on divergence, for CI gating)",
    )
    pvd_p.add_argument(
        "baseline", metavar="BASE.prov.json", help="baseline provenance artifact"
    )
    pvd_p.add_argument(
        "candidate", metavar="CAND.prov.json", help="candidate provenance artifact"
    )

    sweep_p = sub.add_parser(
        "sweep",
        help="fan a {policy x scenario x seed x scale x engine} grid "
        "across worker processes and merge the cells into one "
        ".sweep.json with cross-seed statistics",
    )
    sweep_p.add_argument(
        "--manifest",
        metavar="PATH.json",
        help="load the sweep grid from a JSON manifest (axis flags below "
        "override individual manifest fields)",
    )
    sweep_p.add_argument(
        "--name", default=None, help="sweep name (default 'sweep')"
    )
    sweep_p.add_argument(
        "--policies", nargs="+", choices=sorted(POLICIES), default=None,
        metavar="POLICY", help=f"policy axis (default: all of {sorted(POLICIES)})",
    )
    sweep_p.add_argument(
        "--scenarios", nargs="+", choices=sorted(_SCENARIOS), default=None,
        metavar="NAME", help="scenario axis (default: random)",
    )
    sweep_p.add_argument(
        "--seeds", nargs="+", type=int, default=None, metavar="SEED",
        help="seed axis (default: 42)",
    )
    sweep_p.add_argument(
        "--engines", nargs="+", choices=ENGINES, default=None, metavar="ENGINE",
        help="engine axis (default: scalar)",
    )
    sweep_p.add_argument(
        "--epochs", type=int, default=None, help="epochs per cell (default 120)"
    )
    sweep_p.add_argument(
        "--partitions", type=int, default=None,
        help="partitions for the (single) scale axis point (default 64)",
    )
    sweep_p.add_argument(
        "--rate", type=float, default=None,
        help="Poisson queries/epoch for the scale axis point (default 300)",
    )
    sweep_p.add_argument(
        "--timeseries-stride", type=int, default=None, metavar="N",
        help="sample each cell's time series every N epochs (default 1)",
    )
    sweep_p.add_argument(
        "--out", metavar="DIR", default=None,
        help="sweep directory (default sweep-<manifest hash>); holds "
        "manifest.json, cells/<cell>-<digest>/ and sweep.sweep.json",
    )
    sweep_p.add_argument(
        "--max-workers", type=int, default=1, metavar="N",
        help="parallel worker processes (1 = run inline in this process)",
    )
    sweep_p.add_argument(
        "--resume", action="store_true",
        help="adopt cells whose directories already hold a valid "
        "cell.json matching this manifest's hash instead of re-running",
    )
    sweep_p.add_argument(
        "--verify-cells", action="store_true",
        help="determinism guard: re-run every cell in-process and require "
        "an identical fingerprint chain (divergence becomes a structured "
        "sweep-cell failure)",
    )
    sweep_p.add_argument(
        "--report", nargs="?", const="-", default=None, metavar="PATH.md",
        help="render the mean ± CI markdown report (to PATH.md, or stdout "
        "when the flag is given without a value)",
    )
    sweep_p.add_argument(
        "--dashboard", nargs="?", const="", default=None, metavar="PATH.html",
        help="render the aggregate band-plot dashboard (default "
        "<out>/dashboard.html when the flag is given without a value)",
    )
    # Fault-injection testing aids (CI smoke sweep + tests).
    sweep_p.add_argument("--inject-crash", default=None, help=argparse.SUPPRESS)
    sweep_p.add_argument(
        "--inject-mode", choices=("raise", "exit"), default="raise",
        help=argparse.SUPPRESS,
    )

    swd_p = sub.add_parser(
        "sweepdiff",
        help="compare two .sweep.json artifacts cell-by-cell (fingerprint "
        "identity) and group-by-group (bootstrap CI overlap); non-zero "
        "exit on fingerprint mismatch or CI-disjoint regression",
    )
    swd_p.add_argument(
        "baseline", metavar="BASE.sweep.json", help="baseline sweep artifact"
    )
    swd_p.add_argument(
        "candidate", metavar="CAND.sweep.json", help="candidate sweep artifact"
    )

    return parser


def _config(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        seed=args.seed,
        workload=WorkloadParameters(
            queries_per_epoch_mean=args.rate, num_partitions=args.partitions
        ),
    )


def _scenario(args: argparse.Namespace) -> Scenario:
    scenario = _SCENARIOS[args.scenario](_config(args), epochs=args.epochs)
    if getattr(args, "chaos", None):
        scenario = dataclasses.replace(
            scenario, chaos=chaos_schedule(args.chaos, args.epochs)
        )
    return scenario


def _invariants(args: argparse.Namespace):
    """``--check-invariants`` forces strict checking; otherwise defer to
    the engine default (the ``REPRO_CHECK_INVARIANTS`` environment)."""
    return True if getattr(args, "check_invariants", False) else None


def _make_tracer(args: argparse.Namespace):
    """Open the JSONL sink eagerly so a bad path fails before the run."""
    if getattr(args, "trace_out", None):
        from .obs.trace import JsonlTracer

        try:
            return JsonlTracer(args.trace_out)
        except OSError as exc:
            raise SystemExit(f"cannot open --trace-out {args.trace_out!r}: {exc}")
    return None


def _make_profiler(args: argparse.Namespace):
    if getattr(args, "profile", False):
        from .obs.profiler import PhaseProfiler

        return PhaseProfiler()
    return None


def _make_timeseries(args: argparse.Namespace):
    if getattr(args, "timeseries_out", None):
        from .obs.timeseries import TimeseriesRecorder

        if args.timeseries_stride < 1:
            raise SystemExit(
                f"--timeseries-stride must be >= 1, got {args.timeseries_stride}"
            )
        return TimeseriesRecorder(stride=args.timeseries_stride)
    return None


def _make_sanitizer(args: argparse.Namespace):
    if getattr(args, "sanitize", False) or getattr(args, "fingerprint_out", None):
        from .staticcheck.sanitizer import DeterminismSanitizer

        return DeterminismSanitizer()
    return None


def _make_provenance(args: argparse.Namespace):
    if getattr(args, "provenance_out", None):
        from .obs.provenance import ProvenanceRecorder

        budget = getattr(args, "provenance_budget", None)
        if budget is not None and budget < 1:
            raise SystemExit(f"--provenance-budget must be >= 1, got {budget}")
        if budget is not None:
            return ProvenanceRecorder(budget=budget)
        return ProvenanceRecorder()
    return None


def _save_provenance(recorder, path: str) -> None:
    artifact = recorder.artifact()
    artifact.save(path)
    dropped = artifact.noop_dropped_total
    compacted = f" ({dropped} no-op decisions compacted)" if dropped else ""
    print(
        f"wrote {artifact.num_decisions} decision records "
        f"({artifact.num_actions} with actions){compacted} to {path}; "
        f"query with `repro explain {path} --partition P`"
    )


def _report_sanitizer(sanitizer, fingerprint_out: str | None) -> None:
    """Print the final chain (and save the trail) after a sanitized run."""
    if sanitizer is None:
        return
    trail = sanitizer.trail()
    print(
        f"determinism fingerprint: {trail.final_chain} "
        f"({len(trail)} epoch(s) chained)"
    )
    if fingerprint_out:
        trail.save(fingerprint_out)
        print(f"wrote fingerprint trail to {fingerprint_out}")


def _save_timeseries(recorder, path: str) -> None:
    artifact = recorder.artifact()
    artifact.save(path)
    print(
        f"wrote {len(artifact.epochs)} time-series points x "
        f"{len(artifact.columns)} columns to {path}"
    )


def _capture_for_analysis(args: argparse.Namespace, tracer):
    """When ``--analyze`` was asked without ``--trace-out``, capture
    events in memory; returns (tracer, ring_buffer_or_None)."""
    if not getattr(args, "analyze", False) or tracer is not None:
        return tracer, None
    from .obs.trace import RingBufferTracer

    ring = RingBufferTracer(capacity=1_000_000)
    return ring, ring


def _warn_dropped(tracer) -> None:
    """Surface silent ring-buffer eviction in the run summary."""
    dropped = getattr(tracer, "dropped", 0)
    if dropped:
        print(
            f"warning: trace buffer evicted {dropped} events "
            f"(trace_events_dropped_total={dropped}); analysis covers "
            "the most recent events only",
            file=sys.stderr,
        )


def _run_analysis(args: argparse.Namespace, ring) -> None:
    """The in-process ``--analyze`` pipeline for run/compare."""
    from .obs.analysis import AnalysisOptions, analyze_events, analyze_trace, render_text

    options = AnalysisOptions()
    if ring is not None:
        analysis = analyze_events(
            ring.events(), options=options, source="<in-memory trace>"
        )
    else:
        analysis = analyze_trace(args.trace_out, options=options)
    print()
    print(render_text(analysis))


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    tracer = _make_tracer(args)
    tracer, ring = _capture_for_analysis(args, tracer)
    profiler = _make_profiler(args)
    timeseries = _make_timeseries(args)
    sanitizer = _make_sanitizer(args)
    provenance = _make_provenance(args)
    # The context manager guarantees the JSONL sink is flushed/closed on
    # every path — including an engine error mid-run, so a partial trace
    # stays analysable.
    with tracer if tracer is not None else contextlib.nullcontext():
        result = run_experiment(
            args.policy,
            scenario,
            tracer=tracer,
            profiler=profiler,
            invariants=_invariants(args),
            timeseries=timeseries,
            sanitizer=sanitizer,
            provenance=provenance,
            engine=args.engine,
        )
    chaos_tag = f" chaos={args.chaos}" if getattr(args, "chaos", None) else ""
    engine_tag = f" engine={args.engine}" if args.engine != "scalar" else ""
    print(
        f"policy={args.policy} scenario={scenario.name} "
        f"epochs={args.epochs}{chaos_tag}{engine_tag}"
    )
    for name, fmt in _HEADLINE:
        print(f"  {name:<18} {fmt.format(result.steady(name))}")
    print(f"  {'replication_cost':<18} {result.series('replication_cost').sum():.1f}")
    print(f"  {'migrations':<18} {result.series('migration_count').sum():.0f}")
    if args.csv:
        from .metrics.export import to_csv

        to_csv(result.metrics, args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        from .metrics.export import to_json

        to_json(result.metrics, args.json)
        print(f"wrote {args.json}")
    if getattr(args, "trace_out", None):
        print(f"wrote {tracer.emitted} trace records to {args.trace_out}")
    if timeseries is not None:
        _save_timeseries(timeseries, args.timeseries_out)
    if provenance is not None:
        _save_provenance(provenance, args.provenance_out)
    _report_sanitizer(sanitizer, getattr(args, "fingerprint_out", None))
    _warn_dropped(tracer)
    if profiler is not None:
        print("\nphase timings:")
        print(profiler.render_table())
    if getattr(args, "analyze", False):
        _run_analysis(args, ring)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    tracer = _make_tracer(args)
    tracer, ring = _capture_for_analysis(args, tracer)
    profile = getattr(args, "profile", False)
    if profile:
        from .obs.profiler import PhaseProfiler

        profiler_factory = PhaseProfiler
    else:
        profiler_factory = None
    ts_recorders: dict[str, object] = {}
    if getattr(args, "timeseries_out", None):

        def timeseries_factory(policy: str):
            recorder = _make_timeseries(args)
            ts_recorders[policy] = recorder
            return recorder

    else:
        timeseries_factory = None
    sanitizers: dict[str, object] = {}
    if getattr(args, "sanitize", False) or getattr(args, "fingerprint_out", None):

        def sanitizer_factory(policy: str):
            sanitizer = _make_sanitizer(args)
            sanitizers[policy] = sanitizer
            return sanitizer

    else:
        sanitizer_factory = None
    prov_recorders: dict[str, object] = {}
    if getattr(args, "provenance_out", None):

        def provenance_factory(policy: str):
            recorder = _make_provenance(args)
            prov_recorders[policy] = recorder
            return recorder

    else:
        provenance_factory = None
    with tracer if tracer is not None else contextlib.nullcontext():
        cmp = compare_policies(
            scenario,
            tracer=tracer,
            profiler_factory=profiler_factory,
            invariants=_invariants(args),
            timeseries_factory=timeseries_factory,
            sanitizer_factory=sanitizer_factory,
            provenance_factory=provenance_factory,
            engine=args.engine,
        )
    header = f"{'policy':>9} | " + " ".join(f"{name:>16}" for name, _ in _HEADLINE)
    print(f"scenario={scenario.name} epochs={args.epochs} seed={args.seed}")
    print(header)
    print("-" * len(header))
    for policy in cmp.policies():
        res = cmp[policy]
        cells = " ".join(
            f"{fmt.format(res.steady(name)):>16}" for name, fmt in _HEADLINE
        )
        print(f"{policy:>9} | {cells}")
    print("\nutilization ranking:", " > ".join(cmp.ranking("utilization")))
    if getattr(args, "trace_out", None):
        print(f"wrote {tracer.emitted} trace records to {args.trace_out}")
    for policy, recorder in ts_recorders.items():
        _save_timeseries(recorder, tagged_path(args.timeseries_out, policy))
    for policy, recorder in prov_recorders.items():
        _save_provenance(recorder, tagged_path(args.provenance_out, policy))
    for policy, sanitizer in sanitizers.items():
        fp_out = getattr(args, "fingerprint_out", None)
        print(f"[{policy}] ", end="")
        _report_sanitizer(
            sanitizer, tagged_path(fp_out, policy) if fp_out else None
        )
    _warn_dropped(tracer)
    if profile:
        for policy in cmp.policies():
            print(f"\nphase timings ({policy}):")
            print(cmp[policy].simulation.profiler.render_table())
    if getattr(args, "analyze", False):
        _run_analysis(args, ring)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """One policy under a named chaos scenario, invariants strict."""
    schedule = chaos_schedule(args.scenario_name, args.epochs)
    scenario = dataclasses.replace(
        random_query_scenario(_config(args), epochs=args.epochs), chaos=schedule
    )
    tracer = _make_tracer(args)
    tracer, ring = _capture_for_analysis(args, tracer)
    profiler = _make_profiler(args)
    timeseries = _make_timeseries(args)
    sanitizer = _make_sanitizer(args)
    provenance = _make_provenance(args)
    with tracer if tracer is not None else contextlib.nullcontext():
        result = run_experiment(
            args.policy,
            scenario,
            tracer=tracer,
            profiler=profiler,
            invariants=True,
            timeseries=timeseries,
            sanitizer=sanitizer,
            provenance=provenance,
            engine=args.engine,
        )
    sim = result.simulation
    summary = sim.chaos.summary()
    print(
        f"chaos={summary.schedule} policy={args.policy} "
        f"epochs={args.epochs} seed={args.seed}"
    )
    print(
        f"  injected: {summary.injections} injections -> "
        f"{summary.failure_events} failure events, "
        f"{summary.recovery_events} recovery events, "
        f"{summary.servers_failed} servers hit, "
        f"{summary.links_cut} WAN links cut"
    )
    print(f"  domains:  {', '.join(summary.domains_hit)}")
    print(f"  invariant violations: {sim.invariants.violations_seen}")
    for name, fmt in _HEADLINE:
        print(f"  {name:<18} {fmt.format(result.steady(name))}")
    print(f"  {'lost_partitions':<18} {result.series('lost_partitions').sum():.0f}")
    print(f"  {'unserved_total':<18} {result.series('unserved').sum():.1f}")
    if args.csv:
        from .metrics.export import to_csv

        to_csv(result.metrics, args.csv)
        print(f"wrote {args.csv}")
    if getattr(args, "trace_out", None):
        print(f"wrote {tracer.emitted} trace records to {args.trace_out}")
    if timeseries is not None:
        _save_timeseries(timeseries, args.timeseries_out)
    if provenance is not None:
        _save_provenance(provenance, args.provenance_out)
    _report_sanitizer(sanitizer, getattr(args, "fingerprint_out", None))
    _warn_dropped(tracer)
    if profiler is not None:
        print("\nphase timings:")
        print(profiler.render_table())
    if getattr(args, "analyze", False):
        _run_analysis(args, ring)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import figures as fig_mod
    from .experiments.report import render_figure

    registry = {
        "fig3": fig_mod.fig3_utilization,
        "fig4": fig_mod.fig4_replica_number,
        "fig5": fig_mod.fig5_replication_cost,
        "fig6": fig_mod.fig6_migration_times,
        "fig7": fig_mod.fig7_migration_cost,
        "fig8": fig_mod.fig8_load_imbalance,
        "fig9": fig_mod.fig9_path_length,
        "fig10": fig_mod.fig10_failure_recovery,
    }
    selected = args.only if args.only else sorted(registry)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(f"unknown figures: {unknown}; have {sorted(registry)}", file=sys.stderr)
        return 2
    config = SimulationConfig(seed=args.seed)
    failures = 0
    for name in selected:
        result = registry[name](config)  # only the requested figures run
        print(render_figure(result))
        failures += len(result.failed_checks())
    print(f"{'OK' if failures == 0 else 'FAILED'}: {failures} shape checks failed")
    return 0 if failures == 0 else 1


def _cmd_sla(args: argparse.Namespace) -> int:
    from .experiments.sla import sla_comparison

    result = sla_comparison(_config(args), epochs=args.epochs)
    print(f"{'policy':>9} {'attainment':>11} {'latency ms':>11} {'replicas':>9}")
    for policy in result.attainment:
        print(
            f"{policy:>9} {result.attainment[policy]:>11.4f} "
            f"{result.latency_ms[policy]:>11.1f} {result.replicas[policy]:>9.0f}"
        )
    for name, ok in result.checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    return 0 if result.passed else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json
    import pathlib

    path = pathlib.Path(args.trace)
    if not path.exists():
        print(f"no such trace file: {path}", file=sys.stderr)
        return 2

    if args.format in ("text", "json"):
        from .obs.analysis import AnalysisOptions, analyze_trace, render_text

        analysis = analyze_trace(path, options=AnalysisOptions(window=args.window))
        if not analysis.total_events:
            print(f"{path} holds no readable trace events", file=sys.stderr)
            return 1
        output = (
            render_text(analysis)
            if args.format == "text"
            else json.dumps(analysis.to_dict(), indent=1) + "\n"
        )
    elif args.format == "chrome-trace":
        from .obs.analysis import to_chrome_trace
        from .obs.trace import read_jsonl

        payload = to_chrome_trace(read_jsonl(path))
        output = json.dumps(payload, separators=(",", ":")) + "\n"
    else:  # prometheus
        from .obs.analysis import registry_from_events, to_prometheus
        from .obs.trace import read_jsonl

        output = to_prometheus(registry_from_events(read_jsonl(path)))

    if args.out:
        pathlib.Path(args.out).write_text(
            output if output.endswith("\n") else output + "\n"
        )
        print(f"wrote {args.out}")
    else:
        print(output if not output.endswith("\n") else output[:-1])
    return 0


def _load_artifact(path: str):
    import pathlib

    from .errors import TsdbError
    from .obs.timeseries import TsdbArtifact

    if not pathlib.Path(path).exists():
        raise SystemExit(f"no such time-series artifact: {path}")
    try:
        return TsdbArtifact.load(path)
    except TsdbError as exc:
        raise SystemExit(f"cannot load {path}: {exc}")


def _cmd_diff(args: argparse.Namespace) -> int:
    import pathlib

    from .errors import TsdbError
    from .obs.timeseries import (
        diff_artifacts,
        render_diff_json,
        render_diff_markdown,
        render_diff_text,
    )

    baseline = _load_artifact(args.baseline)
    candidate = _load_artifact(args.candidate)
    try:
        report = diff_artifacts(
            baseline,
            candidate,
            rel=args.rel_tol,
            abs_=args.abs_tol,
            columns=tuple(args.columns) if args.columns else None,
        )
    except TsdbError as exc:
        raise SystemExit(f"cannot diff: {exc}")
    renderers = {
        "text": lambda r: render_diff_text(r, verbose=args.verbose),
        "markdown": lambda r: render_diff_markdown(r, verbose=args.verbose),
        "json": render_diff_json,
    }
    output = renderers[args.format](report)
    if args.out:
        pathlib.Path(args.out).write_text(
            output if output.endswith("\n") else output + "\n"
        )
        print(f"wrote {args.out}")
    else:
        print(output if not output.endswith("\n") else output[:-1])
    return report.exit_code()


def _cmd_dashboard(args: argparse.Namespace) -> int:
    import pathlib

    from .obs.timeseries import render_dashboard

    run = _load_artifact(args.run)
    baseline = _load_artifact(args.compare) if args.compare else None
    html = render_dashboard(run, baseline, title=args.title)
    pathlib.Path(args.out).write_text(html)
    print(f"wrote {args.out} ({len(html) / 1024:.0f} KiB, self-contained)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import pathlib

    from .staticcheck import (
        DEFAULT_BASELINE_NAME,
        Baseline,
        BaselineError,
        changed_python_files,
        lint_paths,
        render_github,
        render_json,
        render_text,
    )

    baseline = None
    baseline_path = args.baseline or DEFAULT_BASELINE_NAME
    if not args.no_baseline and not args.write_baseline:
        if args.baseline or pathlib.Path(baseline_path).exists():
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                raise SystemExit(str(exc))
    paths: list[str | pathlib.Path] = list(args.paths)
    if args.changed:
        try:
            paths = list(changed_python_files(paths))
        except RuntimeError as exc:
            raise SystemExit(str(exc))
        if not paths:
            print("no changed python files under the given paths")
            return 0
    try:
        result = lint_paths(
            paths, select=args.select, baseline=baseline, jobs=args.jobs
        )
    except ValueError as exc:  # unknown --select rule id or family
        raise SystemExit(str(exc))
    if args.write_baseline:
        new_baseline = Baseline.from_findings(result.findings)
        new_baseline.save(baseline_path)
        print(
            f"wrote {len(new_baseline)} grandfathered finding(s) to {baseline_path}"
        )
        return 0
    if args.format == "json":
        print(render_json(result))
    elif args.format == "github":
        print(render_github(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json

    from .staticcheck.sanitizer import (
        DeterminismSanitizer,
        FingerprintError,
        FingerprintTrail,
        bisect_divergence,
    )

    scenario = _scenario(args)

    def one_run() -> FingerprintTrail:
        sanitizer = DeterminismSanitizer()
        run_experiment(args.policy, scenario, sanitizer=sanitizer, engine=args.engine)
        return sanitizer.trail()

    candidate = one_run()
    if args.save:
        candidate.save(args.save)
        print(f"wrote fingerprint trail to {args.save}")
    if args.against:
        try:
            baseline = FingerprintTrail.load(args.against)
        except FingerprintError as exc:
            raise SystemExit(str(exc))
        label = f"against {args.against}"
    else:
        # The double-run: a fresh simulation replays the same recorded
        # trace, so any divergence is real nondeterminism, not workload.
        baseline = one_run()
        label = "double-run"
    report = bisect_divergence(baseline, candidate)
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(
            f"sanitize policy={args.policy} scenario={scenario.name} "
            f"epochs={args.epochs} seed={args.seed} "
            f"engine={args.engine} ({label})"
        )
        print(f"  {report.describe()}")
        if report.exit_code != 0:
            print(
                "  hint: re-run both sides with --provenance-out and use "
                "`repro provdiff A.prov.json B.prov.json` to pinpoint the "
                "first divergent decision and threshold term"
            )
    return report.exit_code


def _cmd_explain(args: argparse.Namespace) -> int:
    from .errors import ProvenanceError
    from .obs.provenance import ProvArtifact, render_explanation

    try:
        artifact = ProvArtifact.load(args.artifact)
    except ProvenanceError as exc:
        raise SystemExit(f"cannot load {args.artifact}: {exc}")
    try:
        text = render_explanation(
            artifact,
            args.partition,
            epoch=args.epoch,
            why_not=args.why_not,
        )
    except ProvenanceError as exc:
        raise SystemExit(str(exc))
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_provdiff(args: argparse.Namespace) -> int:
    from .errors import ProvenanceError
    from .obs.provenance import ProvArtifact, diff_provenance

    artifacts = []
    for path in (args.baseline, args.candidate):
        try:
            artifacts.append(ProvArtifact.load(path))
        except ProvenanceError as exc:
            raise SystemExit(f"cannot load {path}: {exc}")
    report = diff_provenance(artifacts[0], artifacts[1])
    print(f"provdiff {args.baseline} vs {args.candidate}")
    print(report.describe())
    return report.exit_code


def _sweep_manifest(args: argparse.Namespace):
    """Build the sweep manifest from ``--manifest`` and/or axis flags.

    Axis flags override individual fields of a loaded manifest, so a
    committed grid can be re-run with, say, extra seeds without editing
    the file."""
    from .errors import SweepError
    from .sweep import SweepManifest, SweepScale

    overrides: dict[str, object] = {}
    if args.name is not None:
        overrides["name"] = args.name
    if args.policies is not None:
        overrides["policies"] = tuple(dict.fromkeys(args.policies))
    if args.scenarios is not None:
        overrides["scenarios"] = tuple(dict.fromkeys(args.scenarios))
    if args.seeds is not None:
        overrides["seeds"] = tuple(dict.fromkeys(args.seeds))
    if args.engines is not None:
        overrides["engines"] = tuple(dict.fromkeys(args.engines))
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.timeseries_stride is not None:
        overrides["timeseries_stride"] = args.timeseries_stride
    try:
        if args.manifest:
            manifest = SweepManifest.load(args.manifest)
            if args.partitions is not None or args.rate is not None:
                base = manifest.scales[0]
                overrides["scales"] = (
                    SweepScale(
                        base.name,
                        partitions=args.partitions
                        if args.partitions is not None
                        else base.partitions,
                        rate=args.rate if args.rate is not None else base.rate,
                    ),
                )
            if overrides:
                manifest = dataclasses.replace(manifest, **overrides)
        else:
            overrides.setdefault(
                "scales",
                (
                    SweepScale(
                        "paper",
                        partitions=args.partitions
                        if args.partitions is not None
                        else 64,
                        rate=args.rate if args.rate is not None else 300.0,
                    ),
                ),
            )
            manifest = SweepManifest(**overrides)
    except SweepError as exc:
        raise SystemExit(str(exc))
    return manifest


def _cmd_sweep(args: argparse.Namespace) -> int:
    import pathlib

    from .errors import SweepError
    from .obs.fleet import FleetProgress
    from .sweep import SWEEP_ARTIFACT_NAME, render_sweep, run_sweep

    manifest = _sweep_manifest(args)
    if args.max_workers < 1:
        raise SystemExit(f"--max-workers must be >= 1, got {args.max_workers}")
    out = pathlib.Path(args.out or f"sweep-{manifest.manifest_hash}")
    print(
        f"sweep {manifest.name}: {manifest.num_cells} cell(s) "
        f"[{len(manifest.policies)} policies x {len(manifest.scenarios)} "
        f"scenarios x {len(manifest.seeds)} seeds x {len(manifest.scales)} "
        f"scales x {len(manifest.engines)} engines], "
        f"manifest hash {manifest.manifest_hash} -> {out}"
    )
    try:
        artifact = run_sweep(
            manifest,
            out,
            max_workers=args.max_workers,
            resume=args.resume,
            verify=args.verify_cells,
            progress=FleetProgress(manifest.num_cells),
            inject_crash=args.inject_crash,
            inject_mode=args.inject_mode,
        )
    except SweepError as exc:
        raise SystemExit(str(exc))
    print(f"wrote {out / SWEEP_ARTIFACT_NAME}")

    if args.report is not None:
        text = render_sweep(artifact)
        if args.report == "-":
            print(text)
        else:
            pathlib.Path(args.report).write_text(text)
            print(f"wrote {args.report}")
    if args.dashboard is not None:
        from .obs.fleet.dashboard import render_fleet_dashboard

        dash_path = pathlib.Path(args.dashboard or out / "dashboard.html")
        try:
            dash_path.write_text(render_fleet_dashboard(artifact, out))
        except SweepError as exc:
            raise SystemExit(str(exc))
        print(f"wrote {dash_path}")

    for failure in artifact.failures:
        print(
            f"FAILED cell {failure.get('cell_id')} "
            f"[{failure.get('kind')}]: {failure.get('error')}"
        )
    return 1 if artifact.failures else 0


def _cmd_sweepdiff(args: argparse.Namespace) -> int:
    from .errors import SweepError
    from .sweep import SweepArtifact, diff_sweeps

    artifacts = []
    for path in (args.baseline, args.candidate):
        try:
            artifacts.append(SweepArtifact.load(path))
        except SweepError as exc:
            raise SystemExit(f"cannot load {path}: {exc}")
    report = diff_sweeps(artifacts[0], artifacts[1])
    print(f"sweepdiff {args.baseline} vs {args.candidate}")
    print(report.render())
    return report.exit_code()


def _cmd_profile(args: argparse.Namespace) -> int:
    import pathlib

    from .obs.perf import profile_scenario, render_flamegraph

    scenario = _scenario(args)
    profile = profile_scenario(
        args.policy,
        scenario,
        mode=args.mode,
        allocations=not args.no_alloc,
        engine=args.engine,
    )
    profile.save(args.out)
    print(
        f"wrote {args.out} (policy={args.policy} scenario={scenario.name} "
        f"mode={args.mode}, {len(profile.nodes)} stack node(s), "
        f"{profile.total_seconds() * 1e3:.1f} ms profiled)"
    )
    flame_path = args.flamegraph
    if flame_path is None:
        flame_path = derived_path(args.out, ".flame.html")
    if flame_path:
        html = render_flamegraph(profile)
        pathlib.Path(flame_path).write_text(html)
        print(f"wrote {flame_path} ({len(html) / 1024:.0f} KiB, self-contained)")
    speedscope_path = args.speedscope
    if speedscope_path is None:
        speedscope_path = derived_path(args.out, ".speedscope.json")
    if speedscope_path:
        profile.save_speedscope(speedscope_path)
        print(f"wrote {speedscope_path}")
    hottest = profile.hottest(args.top)
    if hottest:
        print(f"hottest {len(hottest)} stack(s) by self time:")
        for node in hottest:
            print(
                f"  {node['self_s'] * 1e3:9.3f} ms  x{node['count']:<6d} "
                f"{';'.join(node['stack'])}"
            )
    if profile.counters:
        print("work counters:")
        for name, value in profile.counters.items():
            print(f"  {name}: {value:.0f}")
    return 0


def _cmd_perfdiff(args: argparse.Namespace) -> int:
    import pathlib

    from .obs.perf import (
        PerfProfile,
        ProfileError,
        diff_profiles,
        render_perfdiff_json,
        render_perfdiff_text,
    )

    profiles = []
    for path in (args.baseline, args.candidate):
        if not pathlib.Path(path).exists():
            raise SystemExit(f"no such profile artifact: {path}")
        try:
            profiles.append(PerfProfile.load(path))
        except ProfileError as exc:
            raise SystemExit(f"cannot load {path}: {exc}")
    report = diff_profiles(
        profiles[0],
        profiles[1],
        rel_tol=args.rel_tol,
        abs_tol_s=args.abs_tol_ms / 1e3,
        gate_counters=args.gate_counters,
    )
    if args.format == "json":
        output = render_perfdiff_json(report)
    else:
        output = render_perfdiff_text(report, verbose=args.verbose)
    if args.out:
        pathlib.Path(args.out).write_text(
            output if output.endswith("\n") else output + "\n"
        )
        print(f"wrote {args.out}")
    else:
        print(output if not output.endswith("\n") else output[:-1])
    return report.exit_code()


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    commands = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "chaos": _cmd_chaos,
        "figures": _cmd_figures,
        "sla": _cmd_sla,
        "analyze": _cmd_analyze,
        "diff": _cmd_diff,
        "dashboard": _cmd_dashboard,
        "lint": _cmd_lint,
        "sanitize": _cmd_sanitize,
        "profile": _cmd_profile,
        "perfdiff": _cmd_perfdiff,
        "explain": _cmd_explain,
        "provdiff": _cmd_provdiff,
        "sweep": _cmd_sweep,
        "sweepdiff": _cmd_sweepdiff,
    }
    try:
        return commands[args.command](args)
    except BrokenPipeError:  # e.g. `repro analyze ... | head`
        # Downstream closed the pipe; detach stdout so the interpreter's
        # exit-time flush does not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
