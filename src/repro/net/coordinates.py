"""Great-circle distances between datacenter sites.

Replication cost (paper Eq. 1) is proportional to the distance ``d_i``
between source and destination.  We use the haversine great-circle
distance between site coordinates as that ``d``; intra-datacenter
transfers get a small constant distance so same-DC replication is cheap
but never free.
"""

from __future__ import annotations

import math

from ..geo.hierarchy import DatacenterSite

__all__ = ["EARTH_RADIUS_KM", "INTRA_DATACENTER_KM", "great_circle_km", "site_distance_km"]

#: Mean Earth radius used by the haversine formula.
EARTH_RADIUS_KM: float = 6371.0

#: Nominal distance charged for an intra-datacenter transfer (two servers
#: in the same building are metres apart; 1 km keeps Eq. 1 strictly
#: positive without distorting inter-DC comparisons).
INTRA_DATACENTER_KM: float = 1.0


def great_circle_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Haversine great-circle distance in kilometres.

    Symmetric, zero iff the points coincide, and always finite for valid
    coordinates.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    # Clamp against floating-point overshoot before the asin.
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def site_distance_km(a: DatacenterSite, b: DatacenterSite) -> float:
    """Distance between two datacenter sites.

    Same site -> :data:`INTRA_DATACENTER_KM` (replication inside one
    datacenter still crosses a network, see Eq. 1 discussion in
    Section III-C: "replicas are placed on the same datacenter of the
    primary partition holders, but in different servers; thus, the
    replication cost is even lower than replicating on neighbors").
    """
    if a.index == b.index:
        return INTRA_DATACENTER_KM
    return great_circle_km(a.latitude, a.longitude, b.latitude, b.longitude)
