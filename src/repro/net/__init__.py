"""Inter-datacenter WAN substrate (paper Fig. 1).

The traffic-hub concept at the heart of RFH only exists because queries
from requester datacenters to a partition holder *transit* intermediate
datacenters ("conjunction nodes of many necessary routing paths").  This
package builds the sparse WAN graph those paths live on:

* :mod:`repro.net.coordinates` — great-circle distances between sites;
* :mod:`repro.net.graph` — a validated, immutable weighted graph;
* :mod:`repro.net.builder` — the default 13-link topology matching the
  Fig. 1 narrative (Asia reaches ``A`` via hubs ``D``/``E``/``F``);
* :mod:`repro.net.routing` — deterministic shortest-path routing with an
  all-pairs cache and transit-frequency analysis.
"""

from .builder import build_default_wan, build_ring_wan, build_wan
from .coordinates import great_circle_km
from .graph import WanGraph
from .routing import Router

__all__ = [
    "great_circle_km",
    "WanGraph",
    "build_wan",
    "build_default_wan",
    "build_ring_wan",
    "Router",
]
