"""Default WAN topology construction.

The link set is chosen to reproduce the Fig. 1 situation the paper
narrates: the hot partition lives in datacenter ``A`` (US-East) and "80%
of the queries are from the clients near to datacenters I, J and H"
(Tokyo/Shanghai/Beijing); those queries transit ``D`` and ``F`` (and in
our geometry also ``E``), which therefore "shoulder most traffic" and are
where RFH wants replicas.

Links (13 total):

* US backbone: A–B, B–C, A–C (triangle so intra-US routing is short);
* Canada: D–E, plus cross-border D–A and E–C;
* Europe: F–G, plus transatlantic F–A;
* Asia: H–I, H–J, I–J (triangle);
* Trans-Pacific: I–E (Tokyo–Vancouver);
* Eurasia: H–F (Beijing–Zurich).

Consequences (verified by tests): shortest paths from H/I/J to A run
through E→D (Pacific) or F (Eurasian), never directly, so traffic hubs
exist exactly where the paper says they do.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..geo.hierarchy import GeoHierarchy, build_default_hierarchy
from .coordinates import site_distance_km
from .graph import WanGraph

__all__ = ["DEFAULT_LINKS", "build_wan", "build_default_wan", "build_ring_wan"]

#: Default links as datacenter letter pairs.
DEFAULT_LINKS: tuple[tuple[str, str], ...] = (
    ("A", "B"),
    ("B", "C"),
    ("A", "C"),
    ("D", "E"),
    ("D", "A"),
    ("E", "C"),
    ("F", "G"),
    ("F", "A"),
    ("H", "I"),
    ("H", "J"),
    ("I", "J"),
    ("I", "E"),
    ("H", "F"),
)


def build_wan(
    hierarchy: GeoHierarchy, links: tuple[tuple[str, str], ...] = DEFAULT_LINKS
) -> WanGraph:
    """Build a WAN graph over ``hierarchy``'s sites with the given links.

    Edge weights are great-circle distances between the linked sites.

    Raises
    ------
    TopologyError
        If a link references an unknown site or the result is
        disconnected.
    """
    edges: list[tuple[int, int, float]] = []
    for name_u, name_v in links:
        site_u = hierarchy.by_name(name_u)
        site_v = hierarchy.by_name(name_v)
        if site_u.index == site_v.index:
            raise TopologyError(f"link {name_u}-{name_v} is a self-loop")
        edges.append((site_u.index, site_v.index, site_distance_km(site_u, site_v)))
    return WanGraph(hierarchy.num_datacenters, edges)


def build_default_wan() -> tuple[GeoHierarchy, WanGraph]:
    """The default 10-site hierarchy together with its default WAN graph."""
    hierarchy = build_default_hierarchy()
    return hierarchy, build_wan(hierarchy)


def build_ring_wan(hierarchy: GeoHierarchy, chord_stride: int = 7) -> WanGraph:
    """A connected WAN over *any* hierarchy: a ring plus skip chords.

    The default link set (:data:`DEFAULT_LINKS`) names the ten paper
    sites, so synthetic topologies
    (:func:`repro.geo.hierarchy.build_synthetic_hierarchy`) need their
    own graph.  A ring guarantees connectivity at every size; chords
    every ``chord_stride`` sites keep shortest paths from degenerating
    to O(n) hops, which preserves the multi-level overflow dynamics the
    serve walk exercises.  Edge weights are great-circle distances, so
    the graph is a pure function of the hierarchy.
    """
    if chord_stride < 1:
        raise TopologyError(f"chord_stride must be >= 1, got {chord_stride}")
    n = hierarchy.num_datacenters
    edges: list[tuple[int, int, float]] = []
    seen: set[tuple[int, int]] = set()

    def add(u: int, v: int) -> None:
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            return
        seen.add(key)
        edges.append(
            (u, v, site_distance_km(hierarchy.site(u), hierarchy.site(v)))
        )

    for i in range(n):
        add(i, (i + 1) % n)
    if chord_stride > 1:
        for i in range(0, n, chord_stride):
            add(i, (i + chord_stride) % n)
    return WanGraph(n, edges)
