"""Default WAN topology construction.

The link set is chosen to reproduce the Fig. 1 situation the paper
narrates: the hot partition lives in datacenter ``A`` (US-East) and "80%
of the queries are from the clients near to datacenters I, J and H"
(Tokyo/Shanghai/Beijing); those queries transit ``D`` and ``F`` (and in
our geometry also ``E``), which therefore "shoulder most traffic" and are
where RFH wants replicas.

Links (13 total):

* US backbone: A–B, B–C, A–C (triangle so intra-US routing is short);
* Canada: D–E, plus cross-border D–A and E–C;
* Europe: F–G, plus transatlantic F–A;
* Asia: H–I, H–J, I–J (triangle);
* Trans-Pacific: I–E (Tokyo–Vancouver);
* Eurasia: H–F (Beijing–Zurich).

Consequences (verified by tests): shortest paths from H/I/J to A run
through E→D (Pacific) or F (Eurasian), never directly, so traffic hubs
exist exactly where the paper says they do.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..geo.hierarchy import GeoHierarchy, build_default_hierarchy
from .coordinates import site_distance_km
from .graph import WanGraph

__all__ = ["DEFAULT_LINKS", "build_wan", "build_default_wan"]

#: Default links as datacenter letter pairs.
DEFAULT_LINKS: tuple[tuple[str, str], ...] = (
    ("A", "B"),
    ("B", "C"),
    ("A", "C"),
    ("D", "E"),
    ("D", "A"),
    ("E", "C"),
    ("F", "G"),
    ("F", "A"),
    ("H", "I"),
    ("H", "J"),
    ("I", "J"),
    ("I", "E"),
    ("H", "F"),
)


def build_wan(
    hierarchy: GeoHierarchy, links: tuple[tuple[str, str], ...] = DEFAULT_LINKS
) -> WanGraph:
    """Build a WAN graph over ``hierarchy``'s sites with the given links.

    Edge weights are great-circle distances between the linked sites.

    Raises
    ------
    TopologyError
        If a link references an unknown site or the result is
        disconnected.
    """
    edges: list[tuple[int, int, float]] = []
    for name_u, name_v in links:
        site_u = hierarchy.by_name(name_u)
        site_v = hierarchy.by_name(name_v)
        if site_u.index == site_v.index:
            raise TopologyError(f"link {name_u}-{name_v} is a self-loop")
        edges.append((site_u.index, site_v.index, site_distance_km(site_u, site_v)))
    return WanGraph(hierarchy.num_datacenters, edges)


def build_default_wan() -> tuple[GeoHierarchy, WanGraph]:
    """The default 10-site hierarchy together with its default WAN graph."""
    hierarchy = build_default_hierarchy()
    return hierarchy, build_wan(hierarchy)
