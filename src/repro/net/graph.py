"""Validated, immutable WAN graph over datacenter indices.

A thin wrapper around :class:`networkx.Graph` that enforces the
invariants routing relies on:

* nodes are exactly ``0..n-1`` (datacenter indices);
* every edge carries a strictly positive ``distance_km`` weight;
* the graph is connected (every requester can reach every holder).

The wrapper is immutable after construction — topology changes in the
paper happen at the *server* level (join/failure/recovery), never at the
WAN level, so a frozen graph lets the router cache all-pairs paths once.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from ..errors import TopologyError

__all__ = ["WanGraph"]


class WanGraph:
    """An immutable weighted graph over datacenter indices.

    Parameters
    ----------
    num_nodes:
        Number of datacenters; node ids are ``0..num_nodes-1``.
    edges:
        Iterable of ``(u, v, distance_km)`` triples.
    allow_disconnected:
        Skip the connectivity check.  Only degraded views built by
        :meth:`without_links` (chaos WAN partitions) may be
        disconnected; a *physical* topology must stay connected.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int, float]],
        *,
        allow_disconnected: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        for u, v, dist in edges:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise TopologyError(f"edge ({u}, {v}) references an unknown node")
            if u == v:
                raise TopologyError(f"self-loop on node {u} is not allowed")
            if dist <= 0:
                raise TopologyError(f"edge ({u}, {v}) must have positive distance, got {dist}")
            if graph.has_edge(u, v):
                raise TopologyError(f"duplicate edge ({u}, {v})")
            graph.add_edge(u, v, distance_km=float(dist))
        if num_nodes > 1 and not allow_disconnected and not nx.is_connected(graph):
            components = [sorted(c) for c in nx.connected_components(graph)]
            raise TopologyError(f"WAN graph is disconnected: components {components}")
        self._graph = graph
        self._num_nodes = num_nodes

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of datacenters."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of WAN links."""
        return self._graph.number_of_edges()

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Sorted neighbour datacenters of ``node``."""
        self._check_node(node)
        return tuple(sorted(self._graph.neighbors(node)))

    def has_edge(self, u: int, v: int) -> bool:
        """True when a direct WAN link connects ``u`` and ``v``."""
        return self._graph.has_edge(u, v)

    def edge_distance_km(self, u: int, v: int) -> float:
        """Distance of the direct link ``u``–``v``.

        Raises :class:`TopologyError` when no such link exists.
        """
        if not self._graph.has_edge(u, v):
            raise TopologyError(f"no WAN link between {u} and {v}")
        return float(self._graph.edges[u, v]["distance_km"])

    def edges(self) -> tuple[tuple[int, int, float], ...]:
        """All edges as sorted ``(u, v, distance_km)`` triples with u < v."""
        out = []
        for u, v, data in self._graph.edges(data=True):
            a, b = (u, v) if u < v else (v, u)
            out.append((a, b, float(data["distance_km"])))
        return tuple(sorted(out))

    def as_networkx(self) -> nx.Graph:
        """A *copy* of the underlying graph (callers cannot mutate ours)."""
        return self._graph.copy()

    def without_links(self, links: Iterable[tuple[int, int]]) -> "WanGraph":
        """A degraded copy with the given links removed.

        The result may be disconnected — that is the point: a WAN
        partition isolates datacenters without touching their servers.
        Raises :class:`TopologyError` when a named link does not exist
        in *this* graph (cut sets are always expressed against the
        physical topology).
        """
        cut = set()
        for u, v in links:
            a, b = (u, v) if u < v else (v, u)
            if not self._graph.has_edge(a, b):
                raise TopologyError(f"cannot cut non-existent WAN link ({u}, {v})")
            cut.add((a, b))
        kept = [e for e in self.edges() if (e[0], e[1]) not in cut]
        return WanGraph(self._num_nodes, kept, allow_disconnected=True)

    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise TopologyError(f"datacenter index out of range: {node}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WanGraph(nodes={self._num_nodes}, edges={self.num_edges})"
