"""Deterministic shortest-path routing over the WAN graph.

The traffic-determination model (paper Eqs. 2–8) is defined over "the
routing path from requester j to the holder of partition B_i"; the set of
nodes on that path is ``A_ij``.  :class:`Router` precomputes all-pairs
shortest paths (distance-weighted, deterministic tie-break by node index)
once per topology — the WAN never changes during a run — and exposes:

* :meth:`Router.path` — the ordered datacenter path ``j → holder``;
* :meth:`Router.distance_km` — path distance, feeding Eq. 1's ``d``;
* :meth:`Router.transit_counts` — how many source–destination pairs each
  node forwards for, i.e. which nodes are structural "conjunction nodes
  of many necessary routing paths".
"""

from __future__ import annotations

import numpy as np

from ..errors import TopologyError
from .graph import WanGraph

__all__ = ["Router"]


class Router:
    """All-pairs deterministic shortest paths over a :class:`WanGraph`.

    Uses Dijkstra with a lexicographic tie-break: among equal-distance
    paths the one whose predecessor has the smaller index wins, so every
    run of the simulation sees identical routes.
    """

    def __init__(self, wan: WanGraph) -> None:
        self._wan = wan
        n = wan.num_nodes
        self._dist = np.full((n, n), np.inf, dtype=np.float64)
        # _next_hop[s, d] = first hop on the path s -> d (or -1 on s == d).
        self._next_hop = np.full((n, n), -1, dtype=np.int64)
        self._paths: dict[tuple[int, int], tuple[int, ...]] = {}
        for source in range(n):
            self._run_dijkstra(source)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _run_dijkstra(self, source: int) -> None:
        n = self._wan.num_nodes
        dist = np.full(n, np.inf, dtype=np.float64)
        prev = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        dist[source] = 0.0
        for _ in range(n):
            # Deterministic extraction: smallest distance, then smallest id.
            pending = np.where(~visited)[0]
            if pending.size == 0:
                break
            u = int(pending[np.argmin(dist[pending])])
            if not np.isfinite(dist[u]):
                break
            visited[u] = True
            for v in self._wan.neighbors(u):
                if visited[v]:
                    continue
                cand = dist[u] + self._wan.edge_distance_km(u, v)
                # Strict improvement, or equal distance with a smaller
                # predecessor index: both keep routing deterministic.
                if cand < dist[v] - 1e-12 or (
                    abs(cand - dist[v]) <= 1e-12 and prev[v] > u
                ):
                    dist[v] = cand
                    prev[v] = u
        self._dist[source, :] = dist
        for dest in range(n):
            if dest == source or not np.isfinite(dist[dest]):
                continue
            path = [dest]
            node = dest
            while node != source:
                node = int(prev[node])
                if node < 0:  # pragma: no cover - connectivity is validated
                    raise TopologyError(f"no path from {source} to {dest}")
                path.append(node)
            path.reverse()
            self._paths[(source, dest)] = tuple(path)
            self._next_hop[source, dest] = path[1]
        self._paths[(source, source)] = (source,)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._wan.num_nodes

    def path(self, source: int, dest: int) -> tuple[int, ...]:
        """Ordered datacenter path from ``source`` to ``dest``, inclusive.

        ``path(j, j) == (j,)`` — a query raised inside the holder's own
        datacenter has a zero-hop path.
        """
        try:
            return self._paths[(source, dest)]
        except KeyError:
            raise TopologyError(f"invalid route endpoints ({source}, {dest})") from None

    def hop_count(self, source: int, dest: int) -> int:
        """Number of WAN hops (edges) on the route."""
        return len(self.path(source, dest)) - 1

    def distance_km(self, source: int, dest: int) -> float:
        """Shortest-path distance in kilometres (0.0 for source == dest).

        ``inf`` when the pair is unreachable (a router over a degraded,
        partitioned WAN graph — see :meth:`reachable`).
        """
        if not (0 <= source < self.num_nodes and 0 <= dest < self.num_nodes):
            raise TopologyError(f"invalid route endpoints ({source}, {dest})")
        return float(self._dist[source, dest])

    def reachable(self, source: int, dest: int) -> bool:
        """Whether any path connects the pair.

        Always True on a connected topology; routers built over a
        partitioned graph (chaos ``LinkFailureEvent``) report False for
        pairs the cut separates.
        """
        if not (0 <= source < self.num_nodes and 0 <= dest < self.num_nodes):
            raise TopologyError(f"invalid route endpoints ({source}, {dest})")
        return bool(np.isfinite(self._dist[source, dest]))

    def next_hop(self, source: int, dest: int) -> int:
        """First hop on the route, or ``source`` itself when already there."""
        if source == dest:
            return source
        hop = int(self._next_hop[source, dest])
        if hop < 0:
            raise TopologyError(f"invalid route endpoints ({source}, {dest})")
        return hop

    def wan_neighbors(self, node: int) -> tuple[int, ...]:
        """Direct WAN neighbours of a datacenter (sorted)."""
        return self._wan.neighbors(node)

    def transit_counts(self) -> np.ndarray:
        """How many ordered (s, d) pairs each node *forwards* for.

        A node forwards for a pair when it lies strictly inside the path
        (neither endpoint).  High counts identify the structural traffic
        hubs of the topology; tests assert D/E/F dominate the default WAN.
        """
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for (source, dest), path in self._paths.items():
            if source == dest:
                continue
            for node in path[1:-1]:
                counts[node] += 1
        return counts

    def distance_matrix_km(self) -> np.ndarray:
        """Copy of the all-pairs shortest distance matrix."""
        return self._dist.copy()
