"""Render a :class:`~repro.staticcheck.engine.LintResult` three ways.

* ``text`` — ``path:line:col: REPxxx message`` plus a summary block,
  for humans at a terminal;
* ``json`` — the full structured result, for tooling;
* ``github`` — GitHub Actions workflow commands (``::error file=...``),
  so CI findings annotate the offending line in the PR diff.
"""

from __future__ import annotations

import json

from .engine import LintResult
from .findings import RULES

__all__ = ["render_text", "render_json", "render_github", "RENDERERS"]


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """The default human report; ``verbose`` lists suppressed/baselined
    findings too (marked, not counted against the gate)."""
    lines: list[str] = []
    for finding in result.findings:
        if finding.active:
            lines.append(
                f"{finding.location()}: {finding.rule_id} {finding.message}"
            )
        elif verbose:
            tag = "noqa" if finding.suppressed else "baseline"
            lines.append(
                f"{finding.location()}: {finding.rule_id} [{tag}] {finding.message}"
            )
    for error in result.errors:
        lines.append(f"{error.path}: ERROR {error.message}")
    for warning in result.warnings:
        lines.append(f"warning: {warning}")
    counts = result.counts_by_rule()
    if counts:
        lines.append("")
        for rule_id, count in counts.items():
            summary = RULES[rule_id].summary if rule_id in RULES else ""
            lines.append(f"  {rule_id}  {count:>4}  {summary}")
    lines.append("")
    lines.append(
        f"{len(result.active)} finding(s) in {result.files_checked} file(s)"
        f" ({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined"
        + (f", {len(result.errors)} file error(s)" if result.errors else "")
        + ")"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "files_checked": result.files_checked,
        "counts_by_rule": result.counts_by_rule(),
        "active": len(result.active),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "findings": [f.to_dict() for f in result.findings],
        "errors": [
            {"path": e.path, "message": e.message} for e in result.errors
        ],
        "warnings": list(result.warnings),
    }
    return json.dumps(payload, indent=1)


def _escape_property(value: str) -> str:
    """GitHub workflow-command property escaping."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        .replace(":", "%3A").replace(",", "%2C")
    )


def _escape_data(value: str) -> str:
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(result: LintResult) -> str:
    """One ``::error`` annotation per active finding (plus file errors)."""
    lines = [
        f"::error file={_escape_property(f.path)},line={f.line},"
        f"col={f.col},title={f.rule_id}"
        f"::{_escape_data(f.rule_id + ' ' + f.message)}"
        for f in result.active
    ]
    lines.extend(
        f"::error file={_escape_property(e.path)},title=lint"
        f"::{_escape_data(e.message)}"
        for e in result.errors
    )
    lines.extend(
        f"::warning title=lint::{_escape_data(w)}" for w in result.warnings
    )
    lines.append(
        f"{len(result.active)} finding(s) in {result.files_checked} file(s)"
    )
    return "\n".join(lines)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
