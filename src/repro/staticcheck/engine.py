"""The lint driver: discovery, dispatch, noqa, baseline, project pass.

Separated from the rule modules so the AST logic stays testable on
source snippets while this module owns everything filesystem-shaped.
The driver is itself deterministic: files are visited in sorted path
order and findings are reported in (path, line, col, rule) order, so
two runs over the same tree produce byte-identical reports — including
under ``jobs > 1``, where per-file results are merged back in sorted
path order regardless of completion order.
"""

from __future__ import annotations

import re
import subprocess
from dataclasses import dataclass, field, replace
from pathlib import Path

from .analyzers import AUDIT_RULE_IDS, expand_select, run_file_analyzers
from .baseline import Baseline
from .findings import RULES, Finding
from .project import find_project_root, run_project_audit

__all__ = [
    "LintError",
    "LintResult",
    "changed_python_files",
    "expand_select",
    "lint_paths",
    "lint_source",
]

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[REP001,REP003]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[\s*(?P<rules>[A-Za-z0-9_,\s]+?)\s*\])?",
)


@dataclass(frozen=True)
class LintError:
    """A file the linter could not check (syntax or I/O failure)."""

    path: str
    message: str


@dataclass
class LintResult:
    """Everything one lint invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    files_checked: int = 0
    #: Non-gating diagnostics (e.g. stale baseline entries).
    warnings: list[str] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        """Findings that gate (not noqa'd, not baselined)."""
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if (self.active or self.errors) else 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _noqa_rules_by_line(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to suppressed rule ids (None = all)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                part.strip() for part in spec.split(",") if part.strip()
            )
    return out


def _rule_exempt(rule_id: str, posix_path: str) -> bool:
    rule = RULES.get(rule_id)
    if rule is None:
        return False
    if any(posix_path.endswith(suffix) for suffix in rule.exempt_paths):
        return True
    # scoped rules only fire under their scope fragments
    if rule.scope_paths and not any(
        fragment in posix_path for fragment in rule.scope_paths
    ):
        return True
    return False


def _apply_flags(
    findings: list[Finding],
    noqa: dict[int, frozenset[str] | None],
    baseline: Baseline | None,
) -> list[Finding]:
    """Apply noqa suppression and baseline matching to raw findings."""
    out: list[Finding] = []
    for finding in findings:
        suppressed_rules = noqa.get(finding.line, ())
        suppressed = suppressed_rules is None or finding.rule_id in suppressed_rules
        baselined = (
            not suppressed
            and baseline is not None
            and baseline.covers(finding)
        )
        if suppressed or baselined:
            finding = replace(finding, suppressed=suppressed, baselined=baselined)
        out.append(finding)
    return out


def lint_source(
    path: str,
    source: str,
    *,
    select: frozenset[str] | None = None,
    baseline: Baseline | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob with every selected file analyzer;
    returns findings with suppression/baseline flags applied.  Raises
    SyntaxError on a parse failure (callers decide how to report it).

    ``select`` takes concrete rule ids (already expanded); ``None``
    means the default set.
    """
    selected = select if select is not None else expand_select(None)
    raw = run_file_analyzers(path, source, selected)
    raw = [
        f for f in raw
        if f.rule_id in selected and not _rule_exempt(f.rule_id, f.path)
    ]
    return _apply_flags(raw, _noqa_rules_by_line(source), baseline)


def _discover(paths: list[str | Path]) -> list[Path]:
    """Python files under the given paths, sorted, ``__pycache__`` skipped."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            files.add(path)
    return sorted(files)


def _display_path(path: Path) -> str:
    """Posix path relative to the CWD when possible (stable baselines)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _lint_file_job(
    job: tuple[str, str, frozenset[str], Baseline | None],
) -> tuple[str, list[Finding] | None, LintError | None]:
    """Lint one file; the unit of work for both serial and parallel
    drivers (top-level so it pickles into worker processes)."""
    display, file_path, selected, baseline = job
    try:
        source = Path(file_path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return display, None, LintError(display, f"cannot read: {exc}")
    try:
        findings = lint_source(
            display, source, select=selected, baseline=baseline
        )
    except SyntaxError as exc:
        return display, None, LintError(
            display, f"syntax error at line {exc.lineno}: {exc.msg}"
        )
    return display, findings, None


def _project_findings(
    paths: list[str | Path],
    selected: frozenset[str],
    baseline: Baseline | None,
    project_root: Path | None,
    result: LintResult,
) -> None:
    """Run the AUD project pass and fold its findings into ``result``."""
    root = project_root or find_project_root(list(paths))
    if root is None:
        result.errors.append(
            LintError(
                "<project>",
                "cannot locate a project root (pyproject.toml + tests/) "
                "for the AUD auditors; lint from inside the repository "
                "or drop AUD from --select",
            )
        )
        return
    raw = run_project_audit(root, selected & AUDIT_RULE_IDS)
    noqa_cache: dict[str, dict[int, frozenset[str] | None]] = {}
    for finding in raw:
        if _rule_exempt(finding.rule_id, Path(finding.path).as_posix()):
            continue
        original = finding.path
        if original not in noqa_cache:
            try:
                noqa_cache[original] = _noqa_rules_by_line(
                    Path(original).read_text(encoding="utf-8")
                )
            except (OSError, UnicodeDecodeError):
                noqa_cache[original] = {}
        display = _display_path(Path(original))
        finding = replace(finding, path=display)
        result.findings.extend(
            _apply_flags([finding], noqa_cache[original], baseline)
        )


def lint_paths(
    paths: list[str | Path],
    *,
    select: list[str] | None = None,
    baseline: Baseline | None = None,
    jobs: int | None = None,
    project_root: Path | None = None,
) -> LintResult:
    """Lint files and directories; the package's main entry point.

    ``select`` takes rule ids and family prefixes (``REP1``, ``AUD``,
    comma-separable); the default is every REP rule.  Selecting any AUD
    rule additionally runs the project pass against the enclosing
    repository root (or ``project_root``).  ``baseline`` marks
    grandfathered findings so they do not gate.  ``jobs`` > 1 lints
    files in a process pool; results are merged in sorted path order so
    output is identical to a serial run.
    """
    selected = expand_select(select)
    result = LintResult()
    jobs_list = [
        (_display_path(p), str(p), selected, baseline) for p in _discover(paths)
    ]
    if jobs is not None and jobs != 1 and len(jobs_list) > 1:
        from concurrent.futures import ProcessPoolExecutor

        max_workers = jobs if jobs > 0 else None
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            outcomes = list(pool.map(_lint_file_job, jobs_list))
        outcomes.sort(key=lambda item: item[0])
    else:
        outcomes = [_lint_file_job(job) for job in jobs_list]
    for _display, findings, error in outcomes:
        if error is not None:
            result.errors.append(error)
            continue
        assert findings is not None
        result.findings.extend(findings)
        result.files_checked += 1
    if selected & AUDIT_RULE_IDS:
        _project_findings(paths, selected, baseline, project_root, result)
    if baseline is not None:
        for entry in baseline.entries:
            entry_path = str(entry.get("path", ""))
            if entry_path and not Path(entry_path).exists():
                result.warnings.append(
                    f"stale baseline entry: {entry_path} "
                    f"({entry.get('rule', '?')}) no longer exists; "
                    "regenerate with --write-baseline"
                )
    return result


def changed_python_files(
    paths: list[str | Path], *, cwd: str | Path | None = None
) -> list[Path]:
    """Python files under ``paths`` that differ from git HEAD (modified,
    staged or untracked).  Raises :class:`RuntimeError` when git is
    unavailable or the CWD is not a repository."""
    base = Path(cwd) if cwd is not None else Path.cwd()

    def _git(*args: str) -> str:
        proc = subprocess.run(
            ["git", *args], cwd=base, capture_output=True, text=True
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"git {' '.join(args)} failed: {proc.stderr.strip()}"
            )
        return proc.stdout

    toplevel = Path(_git("rev-parse", "--show-toplevel").strip())
    names: set[str] = set()
    for args in (
        ("diff", "--name-only", "HEAD"),
        ("ls-files", "--others", "--exclude-standard"),
    ):
        names.update(
            line.strip() for line in _git(*args).splitlines() if line.strip()
        )
    scopes = [Path(p).resolve() for p in paths]
    out: list[Path] = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        candidate = (toplevel / name).resolve()
        if not candidate.is_file():
            continue  # deleted in the working tree
        if any(
            candidate == scope or candidate.is_relative_to(scope)
            for scope in scopes
        ):
            out.append(candidate)
    return out
