"""The lint driver: file discovery, noqa suppression, baseline matching.

Separated from :mod:`.rules` so the AST logic stays testable on source
snippets while this module owns everything filesystem-shaped.  The
driver is itself deterministic: files are visited in sorted path order
and findings are reported in (path, line, col, rule) order, so two runs
over the same tree produce byte-identical reports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .findings import ALL_RULE_IDS, RULES, Finding
from .rules import check_module

__all__ = ["LintError", "LintResult", "lint_paths", "lint_source"]

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[REP001,REP003]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[\s*(?P<rules>[A-Za-z0-9_,\s]+?)\s*\])?",
)


@dataclass(frozen=True)
class LintError:
    """A file the linter could not check (syntax or I/O failure)."""

    path: str
    message: str


@dataclass
class LintResult:
    """Everything one lint invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> list[Finding]:
        """Findings that gate (not noqa'd, not baselined)."""
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if (self.active or self.errors) else 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _noqa_rules_by_line(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to suppressed rule ids (None = all)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                part.strip() for part in spec.split(",") if part.strip()
            )
    return out


def _rule_exempt(rule_id: str, posix_path: str) -> bool:
    rule = RULES.get(rule_id)
    if rule is None:
        return False
    return any(posix_path.endswith(suffix) for suffix in rule.exempt_paths)


def lint_source(
    path: str,
    source: str,
    *,
    select: frozenset[str] | None = None,
    baseline: Baseline | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob; returns findings with
    suppression/baseline flags applied.  Raises SyntaxError on a parse
    failure (callers decide how to report it)."""
    raw = check_module(path, source)
    noqa = _noqa_rules_by_line(source)
    out: list[Finding] = []
    for finding in raw:
        if select is not None and finding.rule_id not in select:
            continue
        if _rule_exempt(finding.rule_id, path):
            continue
        suppressed_rules = noqa.get(finding.line, ())
        suppressed = suppressed_rules is None or finding.rule_id in suppressed_rules
        baselined = (
            not suppressed
            and baseline is not None
            and baseline.covers(finding)
        )
        if suppressed or baselined:
            finding = Finding(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule_id=finding.rule_id,
                message=finding.message,
                snippet=finding.snippet,
                occurrence=finding.occurrence,
                suppressed=suppressed,
                baselined=baselined,
            )
        out.append(finding)
    return out


def _discover(paths: list[str | Path]) -> list[Path]:
    """Python files under the given paths, sorted, ``__pycache__`` skipped."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            files.add(path)
    return sorted(files)


def _display_path(path: Path) -> str:
    """Posix path relative to the CWD when possible (stable baselines)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: list[str | Path],
    *,
    select: list[str] | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint files and directories; the package's main entry point.

    ``select`` restricts checking to the given rule ids (default: all).
    ``baseline`` marks grandfathered findings so they do not gate.
    """
    selected = frozenset(select) if select else frozenset(ALL_RULE_IDS)
    unknown = selected - set(ALL_RULE_IDS)
    if unknown:
        raise ValueError(f"unknown rule ids: {sorted(unknown)}; have {ALL_RULE_IDS}")
    result = LintResult()
    for file_path in _discover(paths):
        display = _display_path(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(LintError(display, f"cannot read: {exc}"))
            continue
        try:
            findings = lint_source(
                display, source, select=selected, baseline=baseline
            )
        except SyntaxError as exc:
            result.errors.append(
                LintError(display, f"syntax error at line {exc.lineno}: {exc.msg}")
            )
            continue
        result.findings.extend(findings)
        result.files_checked += 1
    return result
