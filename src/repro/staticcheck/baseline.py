"""Committed baseline of grandfathered lint findings.

The baseline lets the linter gate at zero on *new* findings while a
legacy finding is being worked off: CI fails on anything not in the
file, and regenerating the file is an explicit, reviewable act
(``repro lint --write-baseline``).  For this repository the policy is
stricter still — the committed baseline stays **empty** for
``src/repro`` (see ISSUE 5) — but the mechanism is generic.

Entries match on a line-number-independent fingerprint
(path + rule + stripped source line + occurrence index), so unrelated
edits above a finding do not invalidate the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import SimulationError
from .findings import Finding

__all__ = ["Baseline", "BaselineError", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_FORMAT = "repro-lint-baseline"
_VERSION = 1


class BaselineError(SimulationError):
    """The baseline file is malformed."""


class Baseline:
    """An immutable set of grandfathered finding fingerprints."""

    def __init__(self, entries: list[dict[str, object]] | None = None) -> None:
        self._entries: list[dict[str, object]] = list(entries or [])
        self._fingerprints = frozenset(
            str(entry.get("fingerprint", "")) for entry in self._entries
        )

    def __len__(self) -> int:
        return len(self._entries)

    def covers(self, finding: Finding) -> bool:
        return finding.fingerprint in self._fingerprints

    @property
    def entries(self) -> list[dict[str, object]]:
        """The grandfathered entries (path/rule/line/snippet/fingerprint)."""
        return list(self._entries)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """A baseline grandfathering every *active* finding given."""
        entries = [
            {
                "path": f.path,
                "rule": f.rule_id,
                "line": f.line,
                "snippet": f.snippet,
                "fingerprint": f.fingerprint,
            }
            for f in sorted(
                (f for f in findings if f.active),
                key=lambda f: (f.path, f.line, f.col, f.rule_id),
            )
        ]
        return cls(entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            raise BaselineError(
                f"baseline {path} is not a {_FORMAT!r} file"
            )
        version = payload.get("version")
        if version != _VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported version {version!r} "
                f"(supported: {_VERSION})"
            )
        findings = payload.get("findings")
        if not isinstance(findings, list) or not all(
            isinstance(entry, dict) for entry in findings
        ):
            raise BaselineError(f"baseline {path}: 'findings' must be a list of objects")
        return cls(findings)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "findings": self._entries,
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=1) + "\n", encoding="utf-8"
        )
