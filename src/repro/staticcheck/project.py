"""The project-level analysis pass: cross-module contract auditors.

Per-file AST rules cannot see a contract that spans files.  This module
walks the *project* — source tree plus test tree — builds a light
import graph, and runs three auditors over it:

* **AUD001 engine parity** — every ``Simulation`` hook that
  ``ColumnarSimulation`` (or any future engine subclass) overrides must
  be named in the ``DIFFERENTIAL_HOOKS`` tuple of the differential
  equivalence test module, which in turn asserts (at runtime) that the
  tuple matches the real override set.  The static side catches the
  gap at lint time; the runtime side stops the tuple from rotting;
* **AUD002 reason vocabulary** — decision-reason/cause string literals
  that duplicate a constant from ``repro.sim.reasons`` must import the
  constant instead.  Flagged contexts: ``reason=``/``cause=`` keyword
  arguments, assignments to (and comparisons against) names containing
  ``reason``/``cause``, and ``"reason"``/``"cause"`` dict keys;
* **AUD003 artifact versioning** — every module defining a
  ``"repro-*"`` format string alongside a ``*VERSION*`` integer must
  have a test that loads a bumped version and asserts the loader
  raises.

Auditors return raw findings anchored to real files; the engine applies
noqa/baseline exactly as for per-file rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from .findings import RULES, Finding

__all__ = [
    "ProjectLayout",
    "find_project_root",
    "run_project_audit",
]

#: Module-level assignment name that the differential test uses to
#: enumerate covered hooks.
DIFFERENTIAL_HOOKS_NAME = "DIFFERENTIAL_HOOKS"


@dataclass(frozen=True)
class ProjectLayout:
    """Where the audited contracts live, relative to the project root.

    Defaults match this repository; fixture tests build mirror trees
    with the same relative paths.
    """

    root: Path
    scalar_engine: Path
    columnar_dir: Path
    differential_test: Path
    reasons_module: Path
    src_dir: Path
    tests_dir: Path

    @classmethod
    def discover(cls, root: Path) -> "ProjectLayout":
        return cls(
            root=root,
            scalar_engine=root / "src" / "repro" / "sim" / "engine.py",
            columnar_dir=root / "src" / "repro" / "sim" / "columnar",
            differential_test=root / "tests" / "test_columnar_equivalence.py",
            reasons_module=root / "src" / "repro" / "sim" / "reasons.py",
            src_dir=root / "src" / "repro",
            tests_dir=root / "tests",
        )


def find_project_root(paths: list[str | Path]) -> Path | None:
    """Walk up from the first existing path to a directory that looks
    like a project root (``pyproject.toml`` plus a ``tests/`` dir)."""
    for raw in paths:
        start = Path(raw).resolve()
        if not start.exists():
            continue
        candidates = [start, *start.parents] if start.is_dir() else list(
            start.parents
        )
        for candidate in candidates:
            if (candidate / "pyproject.toml").is_file() and (
                candidate / "tests"
            ).is_dir():
                return candidate
    return None


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _parse(path: Path) -> ast.Module | None:
    try:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except (OSError, UnicodeDecodeError, SyntaxError):
        return None


def _python_files(directory: Path) -> list[Path]:
    return sorted(
        p for p in directory.rglob("*.py") if "__pycache__" not in p.parts
    )


def _snippet(lines: list[str], lineno: int) -> str:
    return lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""


class _Emitter:
    """Shared finding construction with per-file occurrence counters."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self._occurrences: dict[tuple[str, str, str], int] = {}
        self._line_cache: dict[Path, list[str]] = {}

    def emit(
        self, path: Path, node_line: int, node_col: int, rule_id: str, message: str
    ) -> None:
        hint = RULES[rule_id].hint
        if hint:
            message = f"{message} — fix: {hint}"
        if path not in self._line_cache:
            try:
                self._line_cache[path] = path.read_text(
                    encoding="utf-8"
                ).splitlines()
            except (OSError, UnicodeDecodeError):
                self._line_cache[path] = []
        snippet = _snippet(self._line_cache[path], node_line)
        key = (str(path), rule_id, snippet)
        occurrence = self._occurrences.get(key, 0)
        self._occurrences[key] = occurrence + 1
        self.findings.append(
            Finding(
                path=str(path),
                line=node_line,
                col=node_col + 1,
                rule_id=rule_id,
                message=message,
                snippet=snippet,
                occurrence=occurrence,
            )
        )


# ----------------------------------------------------------------------
# Import graph (light: per-module imported-name table)
# ----------------------------------------------------------------------
def _imported_names(tree: ast.Module) -> dict[str, tuple[str, str]]:
    """Map local name → (module, original name) for ``from`` imports."""
    table: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                table[alias.asname or alias.name] = (node.module, alias.name)
    return table


# ----------------------------------------------------------------------
# AUD001 — engine parity
# ----------------------------------------------------------------------
def _class_methods(tree: ast.Module, class_name: str) -> dict[str, int]:
    """Method name → def line for one class in a module."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                stmt.name: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    return {}


def _simulation_subclasses(
    tree: ast.Module,
) -> list[tuple[str, dict[str, int]]]:
    """(class name, method→line) for classes subclassing ``Simulation``."""
    out: list[tuple[str, dict[str, int]]] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and any(
            (isinstance(base, ast.Name) and base.id == "Simulation")
            or (isinstance(base, ast.Attribute) and base.attr == "Simulation")
            for base in node.bases
        ):
            methods = {
                stmt.name: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            out.append((node.name, methods))
    return out


def _differential_hooks(
    tree: ast.Module,
) -> tuple[frozenset[str], int] | None:
    """The DIFFERENTIAL_HOOKS names and the assignment's line, if any."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == DIFFERENTIAL_HOOKS_NAME
            for t in targets
        ):
            continue
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            names = frozenset(
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            )
            return names, node.lineno
    return None


def _audit_engine_parity(layout: ProjectLayout, emitter: _Emitter) -> None:
    if not layout.columnar_dir.is_dir():
        return  # project has no columnar engine to audit
    scalar_tree = _parse(layout.scalar_engine)
    if scalar_tree is None:
        return
    base_methods = set(_class_methods(scalar_tree, "Simulation"))
    if not base_methods:
        return
    test_tree = (
        _parse(layout.differential_test)
        if layout.differential_test.is_file()
        else None
    )
    hooks = _differential_hooks(test_tree) if test_tree is not None else None
    overrides: dict[str, tuple[Path, str, int]] = {}
    for path in _python_files(layout.columnar_dir):
        tree = _parse(path)
        if tree is None:
            continue
        for class_name, methods in _simulation_subclasses(tree):
            for method, lineno in methods.items():
                if method in base_methods and not method.startswith("__"):
                    overrides[method] = (path, class_name, lineno)
    if not overrides:
        return
    if hooks is None:
        anchor = layout.differential_test
        emitter.emit(
            anchor, 1, 0, "AUD001",
            f"{len(overrides)} Simulation override(s) found but "
            f"{anchor.name} defines no {DIFFERENTIAL_HOOKS_NAME} tuple "
            "enumerating differential coverage",
        )
        return
    covered, hooks_line = hooks
    for method in sorted(overrides):
        if method in covered:
            continue
        path, class_name, lineno = overrides[method]
        emitter.emit(
            path, lineno, 0, "AUD001",
            f"{class_name} overrides Simulation.{method} but "
            f"{DIFFERENTIAL_HOOKS_NAME} does not list it; the override "
            "is outside differential equivalence coverage",
        )
    for name in sorted(covered - set(overrides)):
        emitter.emit(
            layout.differential_test, hooks_line, 0, "AUD001",
            f"{DIFFERENTIAL_HOOKS_NAME} lists {name!r} but no Simulation "
            "subclass overrides it; stale entry",
        )


# ----------------------------------------------------------------------
# AUD002 — reason vocabulary
# ----------------------------------------------------------------------
_REASON_CONTEXT_MARKERS = ("reason", "cause")


def _reason_vocabulary(tree: ast.Module) -> dict[str, str]:
    """Value → constant name for module-level string constants."""
    vocab: dict[str, str] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if (
            isinstance(value, ast.Constant)
            and isinstance(value.value, str)
            and value.value
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    vocab.setdefault(value.value, target.id)
    return vocab


def _is_reason_name(node: ast.expr) -> bool:
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in _REASON_CONTEXT_MARKERS)


def _vocab_literals(
    node: ast.expr, vocab: dict[str, str]
) -> list[tuple[ast.Constant, str]]:
    out = []
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and sub.value in vocab
        ):
            out.append((sub, vocab[sub.value]))
    return out


def _audit_reason_vocabulary(layout: ProjectLayout, emitter: _Emitter) -> None:
    if not layout.reasons_module.is_file():
        return
    reasons_tree = _parse(layout.reasons_module)
    if reasons_tree is None:
        return
    vocab = _reason_vocabulary(reasons_tree)
    if not vocab:
        return
    reasons_resolved = layout.reasons_module.resolve()
    for path in _python_files(layout.src_dir):
        if path.resolve() == reasons_resolved:
            continue
        tree = _parse(path)
        if tree is None:
            continue
        imports = _imported_names(tree)
        hits: list[tuple[ast.Constant, str]] = []
        seen: set[int] = set()

        def collect(value: ast.expr) -> None:
            for constant, const_name in _vocab_literals(value, vocab):
                if id(constant) not in seen:
                    seen.add(id(constant))
                    hits.append((constant, const_name))

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg and kw.arg.lower() in _REASON_CONTEXT_MARKERS:
                        collect(kw.value)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if any(_is_reason_name(t) for t in targets):
                    collect(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_reason_name(node.target):
                    collect(node.value)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                if any(_is_reason_name(op) for op in operands):
                    for op in operands:
                        collect(op)
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value.lower() in _REASON_CONTEXT_MARKERS
                        and value is not None
                    ):
                        collect(value)
        for constant, const_name in hits:
            already = const_name in imports
            suffix = (
                f"(already imported as {const_name})"
                if already
                else f"(import {const_name} from repro.sim.reasons)"
            )
            emitter.emit(
                path, constant.lineno, constant.col_offset, "AUD002",
                f"reason literal {constant.value!r} duplicates "
                f"repro.sim.reasons.{const_name} {suffix}",
            )


# ----------------------------------------------------------------------
# AUD003 — artifact version-rejection coverage
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ArtifactModule:
    path: Path
    format_value: str
    version_name: str
    version_line: int
    link_names: frozenset[str]


def _artifact_modules(src_dir: Path) -> list[_ArtifactModule]:
    out: list[_ArtifactModule] = []
    for path in _python_files(src_dir):
        tree = _parse(path)
        if tree is None:
            continue
        format_value: str | None = None
        version_name: str | None = None
        version_line = 0
        link_names: set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                link_names.add(node.name)
                continue
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and value.value.startswith("repro-")
                ):
                    format_value = value.value
                    link_names.add(target.id)
                elif (
                    "VERSION" in target.id.upper()
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, int)
                    and not isinstance(value.value, bool)
                ):
                    version_name = target.id
                    version_line = node.lineno
                    link_names.add(target.id)
        if format_value is not None and version_name is not None:
            out.append(
                _ArtifactModule(
                    path=path,
                    format_value=format_value,
                    version_name=version_name,
                    version_line=version_line,
                    link_names=frozenset(link_names),
                )
            )
    return out


def _has_raises(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "raises":
                return True
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "raises":
                return True
    return False


def _has_version_bump(func: ast.AST, version_name: str) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript):
            # payload["version"] = ... — the idiomatic bump-in-place.
            if (
                isinstance(node.slice, ast.Constant)
                and node.slice.value == "version"
            ):
                return True
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "version"
                ):
                    return True
        elif isinstance(node, ast.Call):
            if any(kw.arg == "version" for kw in node.keywords):
                return True
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            for side in (node.left, node.right):
                name = None
                if isinstance(side, ast.Name):
                    name = side.id
                elif isinstance(side, ast.Attribute):
                    name = side.attr
                if name is not None and (
                    name == version_name or "VERSION" in name.upper()
                ):
                    return True
    return False


def _links_module(func: ast.AST, module: _ArtifactModule) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in module.link_names:
            return True
        if isinstance(node, ast.Attribute) and node.attr in module.link_names:
            return True
        if (
            isinstance(node, ast.Constant)
            and node.value == module.format_value
        ):
            return True
    return False


def _audit_artifact_versions(layout: ProjectLayout, emitter: _Emitter) -> None:
    modules = _artifact_modules(layout.src_dir)
    if not modules:
        return
    test_funcs: list[ast.AST] = []
    if layout.tests_dir.is_dir():
        for path in _python_files(layout.tests_dir):
            tree = _parse(path)
            if tree is None:
                continue
            for node in ast.walk(tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and node.name.startswith("test"):
                    test_funcs.append(node)
    for module in modules:
        covered = any(
            _has_raises(func)
            and _has_version_bump(func, module.version_name)
            and _links_module(func, module)
            for func in test_funcs
        )
        if not covered:
            try:
                rel = module.path.relative_to(layout.root)
            except ValueError:
                rel = module.path
            emitter.emit(
                module.path, module.version_line, 0, "AUD003",
                f"artifact format {module.format_value!r} ({rel.as_posix()}) "
                "has no test rejecting a bumped version; its "
                "forward-compat guard is unverified",
            )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
_AUDITORS = {
    "AUD001": _audit_engine_parity,
    "AUD002": _audit_reason_vocabulary,
    "AUD003": _audit_artifact_versions,
}


def run_project_audit(
    root: Path,
    select: frozenset[str],
    *,
    layout: ProjectLayout | None = None,
) -> list[Finding]:
    """Run the selected AUD auditors over one project tree.

    Returns raw findings anchored to absolute paths; the engine
    display-paths them and applies noqa/baseline.
    """
    layout = layout or ProjectLayout.discover(root)
    emitter = _Emitter()
    for rule_id, auditor in sorted(_AUDITORS.items()):
        if rule_id in select:
            auditor(layout, emitter)
    emitter.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return emitter.findings
