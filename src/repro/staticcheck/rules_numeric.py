"""AST implementations of the numeric-kernel purity rules REP101–REP104.

These rules are scoped (via :attr:`Rule.scope_paths`) to kernel
directories — ``sim/columnar/`` today — because they enforce the
columnar engine's house style, not general Python hygiene: every dtype
transition explicit (REP101), every reduction over a deterministically
ordered sequence (REP102), no hidden copies on the per-epoch hot path
(REP103), no interpreter-level loops over arrays unless the boxing is
made visible with ``.tolist()`` (REP104).

The dtype inference is per-file and deliberately shallow: names and
``self.*`` attributes assigned from numpy constructors with a known
dtype (or ``.astype``) are classified as ``int``/``float``/``bool``
arrays; everything else is unknown and never flagged.  Shallow
inference means the family only fires where it is *sure*, which is what
lets it gate at zero.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .findings import RULES, Finding

__all__ = ["check_numeric"]

#: dtype names (numpy attributes or builtins) → kind buckets.
_INT_DTYPES = frozenset(
    {"int8", "int16", "int32", "int64", "intp", "int_", "uint8", "uint16",
     "uint32", "uint64", "uintp", "int"}
)
_FLOAT_DTYPES = frozenset({"float16", "float32", "float64", "float_", "float"})
_BOOL_DTYPES = frozenset({"bool_", "bool"})

#: numpy constructors that default to float64 when no dtype is given.
_FLOAT_DEFAULT_CTORS = frozenset(
    {"zeros", "ones", "empty", "full", "linspace", "eye", "identity"}
)
#: numpy constructors whose dtype follows their template argument.
_LIKE_CTORS = frozenset({"zeros_like", "ones_like", "empty_like", "full_like"})

#: numpy reductions whose implicit upcast REP101 polices on bool input.
_SUM_REDUCTIONS = frozenset({"sum", "dot"})

#: In-loop concatenation calls REP103 flags (quadratic reallocation).
_CONCAT_CALLS = frozenset(
    {"concatenate", "hstack", "vstack", "column_stack", "stack"}
)

#: Kinds that mean "definitely an ndarray of this dtype family".
_ARRAY_KINDS = frozenset({"int", "float", "bool", "array"})


def _last_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dtype_kind(node: ast.expr) -> str | None:
    """Classify a ``dtype=`` argument expression."""
    name = _last_name(node)
    if name is None and isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    if name in _INT_DTYPES:
        return "int"
    if name in _FLOAT_DTYPES:
        return "float"
    if name in _BOOL_DTYPES:
        return "bool"
    return None


@dataclass
class _Scope:
    names: dict[str, str | None]


class NumericVisitor(ast.NodeVisitor):
    """Single-pass checker for REP101–REP104 (raw findings)."""

    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: list[Finding] = []
        self._numpy_aliases: set[str] = set()
        self._scopes: list[_Scope] = [_Scope({})]
        #: ``self.<attr>`` → kind, collected file-wide in a pre-pass.
        self._attr_kinds: dict[str, str | None] = {}
        self._loop_depth = 0
        self._occurrences: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        hint = RULES[rule_id].hint
        if hint:
            message = f"{message} — fix: {hint}"
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if line - 1 < len(self.lines) else ""
        key = (rule_id, snippet)
        occurrence = self._occurrences.get(key, 0)
        self._occurrences[key] = occurrence + 1
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col + 1,
                rule_id=rule_id,
                message=message,
                snippet=snippet,
                occurrence=occurrence,
            )
        )

    # ------------------------------------------------------------------
    # Pre-pass: numpy aliases + self-attribute dtype kinds, file-wide
    # ------------------------------------------------------------------
    def collect_file_facts(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self._numpy_aliases.add(alias.asname or "numpy")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                kind = self._classify(node.value)
                if kind not in _ARRAY_KINDS:
                    continue  # unknown assignments never override a known kind
                known = self._attr_kinds.get(target.attr)
                if target.attr in self._attr_kinds and known is None:
                    continue  # already marked conflicting
                if known is not None and known != kind:
                    self._attr_kinds[target.attr] = None  # conflict: trust neither
                else:
                    self._attr_kinds[target.attr] = kind

    # ------------------------------------------------------------------
    # Scope handling
    # ------------------------------------------------------------------
    def _push(self) -> None:
        self._scopes.append(_Scope({}))

    def _pop(self) -> None:
        self._scopes.pop()

    def _bind(self, name: str, kind: str | None) -> None:
        self._scopes[-1].names[name] = kind

    def _lookup(self, name: str) -> str | None:
        for scope in reversed(self._scopes):
            if name in scope.names:
                return scope.names[name]
        return None

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._push()
        self.generic_visit(node)
        self._pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = self._classify(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, kind)
        self._check_chained_subscript_assign(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Classification: expression → int/float/bool array, set, or None
    # ------------------------------------------------------------------
    def _is_numpy(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in self._numpy_aliases

    def _classify(self, node: ast.expr) -> str | None:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return self._attr_kinds.get(node.attr)
        if isinstance(node, ast.Subscript):
            # indexing preserves dtype (basic and fancy alike)
            base = self._classify(node.value)
            return base if base in _ARRAY_KINDS else None
        if isinstance(node, ast.Compare):
            # array comparison yields a bool array when a side is known
            operands = [node.left, *node.comparators]
            if any(self._classify(op) in _ARRAY_KINDS for op in operands):
                return "bool"
            return None
        if isinstance(node, ast.BinOp):
            left = self._classify(node.left)
            right = self._classify(node.right)
            kinds = {left, right} & _ARRAY_KINDS
            if not kinds:
                return None
            if isinstance(node.op, ast.Div):
                return "float"
            if "float" in kinds:
                return "float"
            if kinds == {"int"}:
                return "int"
            return "array"
        if isinstance(node, ast.Call):
            return self._classify_call(node)
        return None

    def _classify_call(self, node: ast.Call) -> str | None:
        func = node.func
        name = _last_name(func)
        if name == "astype":
            if node.args:
                kind = _dtype_kind(node.args[0])
                return kind if kind is not None else "array"
            return "array"
        if name in ("tolist", "item"):
            return None  # explicitly boxed out of array-land
        if isinstance(func, ast.Attribute) and name in ("set", "frozenset"):
            return None
        if isinstance(func, ast.Name) and name in ("set", "frozenset"):
            return "set"
        if not (isinstance(func, ast.Attribute) and self._is_numpy(func.value)):
            return None
        dtype_kw = next(
            (kw.value for kw in node.keywords if kw.arg == "dtype"), None
        )
        if dtype_kw is not None:
            kind = _dtype_kind(dtype_kw)
            return kind if kind is not None else "array"
        if name in _LIKE_CTORS and node.args:
            template = self._classify(node.args[0])
            return template if template in _ARRAY_KINDS else "array"
        if name in _FLOAT_DEFAULT_CTORS:
            return "float"
        if name == "arange":
            if node.args and all(
                isinstance(arg, ast.Constant) and isinstance(arg.value, int)
                for arg in node.args
            ):
                return "int"
            return "array"
        if name in ("array", "asarray", "ascontiguousarray", "sort", "where",
                    "minimum", "maximum", "abs", "clip"):
            return "array"
        return None

    # ------------------------------------------------------------------
    # REP101 — implicit dtype promotion
    # ------------------------------------------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        left = self._classify(node.left)
        right = self._classify(node.right)
        if isinstance(node.op, ast.Div) and "int" in (left, right):
            self._emit(
                node, "REP101",
                "true division involving an int64 array promotes to "
                "float64 implicitly",
            )
        elif (
            isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.MatMult))
            and {left, right} == {"int", "float"}
        ):
            self._emit(
                node, "REP101",
                "arithmetic mixes int64 and float64 arrays; the promotion "
                "is implicit",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = _last_name(func)
        has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
        # np.sum / np.dot over a known-bool array without an explicit dtype
        if (
            isinstance(func, ast.Attribute)
            and self._is_numpy(func.value)
            and name in _SUM_REDUCTIONS
            and not has_dtype
            and any(self._classify(arg) == "bool" for arg in node.args)
        ):
            self._emit(
                node, "REP101",
                f"np.{name} over a bool array upcasts implicitly",
            )
        # bool_array.sum() method form
        elif (
            isinstance(func, ast.Attribute)
            and name == "sum"
            and not has_dtype
            and self._classify(func.value) == "bool"
        ):
            self._emit(
                node, "REP101",
                ".sum() on a bool array upcasts implicitly",
            )
        self._check_rep102_call(node)
        self._check_rep103_call(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # REP102 — order-sensitive reductions over unordered input
    # ------------------------------------------------------------------
    def _is_unordered(self, node: ast.expr) -> bool:
        if self._classify(node) == "set":
            return True
        if isinstance(node, ast.GeneratorExp):
            return any(
                self._classify(gen.iter) == "set" for gen in node.generators
            )
        return False

    def _check_rep102_call(self, node: ast.Call) -> None:
        func = node.func
        name = _last_name(func)
        reducers = name in ("sum", "fsum") and (
            isinstance(func, ast.Name)
            or (isinstance(func, ast.Attribute) and _last_name(func.value) == "math")
        )
        np_consumers = (
            isinstance(func, ast.Attribute)
            and self._is_numpy(func.value)
            and name in ("fromiter", "array", "asarray")
        )
        if not (reducers or np_consumers):
            return
        for arg in node.args:
            if self._is_unordered(arg):
                what = "a set" if not isinstance(arg, ast.GeneratorExp) else (
                    "a generator over a set"
                )
                self._emit(
                    node, "REP102",
                    f"{name}() consumes {what} in hash order; float "
                    "accumulation order changes the result bits",
                )
                return

    # ------------------------------------------------------------------
    # REP103 — hidden copies
    # ------------------------------------------------------------------
    def _check_rep103_call(self, node: ast.Call) -> None:
        func = node.func
        name = _last_name(func)
        if name == "flatten" and isinstance(func, ast.Attribute) and not node.args:
            self._emit(
                node, "REP103",
                ".flatten() always copies",
            )
            return
        if not (isinstance(func, ast.Attribute) and self._is_numpy(func.value)):
            return
        if name == "append":
            self._emit(
                node, "REP103",
                "np.append reallocates and copies the whole array per call",
            )
        elif name in _CONCAT_CALLS and self._loop_depth > 0:
            self._emit(
                node, "REP103",
                f"np.{name} inside a loop is quadratic copying",
            )

    def _check_chained_subscript_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Subscript)
                and self._classify(target.value.value) in _ARRAY_KINDS
            ):
                self._emit(
                    target, "REP103",
                    "chained-index assignment writes into the temporary a "
                    "fancy first index copies out",
                )

    # ------------------------------------------------------------------
    # REP104 — python loops over arrays
    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._classify(node.iter) in _ARRAY_KINDS:
            self._emit(
                node.iter, "REP104",
                "python-level for loop iterates an ndarray element-wise",
            )
        if isinstance(node.target, ast.Name):
            self._bind(node.target.id, None)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1


def check_numeric(
    path: str, source: str, tree: ast.Module | None = None
) -> list[Finding]:
    """Run the REP1xx family over one file (raw findings; the engine
    applies scope/noqa/baseline).  Raises SyntaxError on parse failure."""
    if tree is None:
        tree = ast.parse(source, filename=path)
    visitor = NumericVisitor(path, source.splitlines())
    visitor.collect_file_facts(tree)
    visitor.visit(tree)
    visitor.findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return visitor.findings
