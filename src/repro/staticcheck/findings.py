"""Finding records and the analysis rule registry.

Every rule this package enforces exists because one class of bug would
silently corrupt the reproduction's bit-identical guarantee (golden
chaos traces, ``repro diff`` gating, the paper's same-trace policy
comparisons).  The registry below is the single source of truth: the
linter, the reports, the baseline format and the docs all read it.

Rules are grouped into families by id prefix:

* ``REP0xx`` — determinism (per-file AST);
* ``REP1xx`` — numeric-kernel purity (per-file AST, scoped to kernel
  directories via :attr:`Rule.scope_paths`);
* ``REP2xx`` — concurrency & resource lifecycle (per-file AST);
* ``AUDxxx`` — cross-module contract auditors (project-level pass).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = [
    "ALL_RULE_IDS",
    "DEFAULT_RULE_IDS",
    "FAMILIES",
    "Finding",
    "RULES",
    "Rule",
    "is_rule_id",
    "rule_family",
]


@dataclass(frozen=True)
class Rule:
    """One analysis rule: stable id, summary and rationale."""

    rule_id: str
    summary: str
    rationale: str
    #: Path suffixes (posix) where the rule does not apply — the one
    #: module that legitimately owns the flagged construct.
    exempt_paths: tuple[str, ...] = ()
    #: Posix path fragments the rule is *scoped to*: when non-empty the
    #: rule only fires on files whose path contains one of them.  Used
    #: by the REP1xx kernel-purity family, which would drown
    #: general-purpose code in noise.
    scope_paths: tuple[str, ...] = ()
    #: One-line autofix hint appended to every message for this rule.
    hint: str = ""


#: Directories holding numeric kernels — the REP1xx family only fires
#: under these fragments.  Future kernel packages (mean-field backend,
#: hierarchy-aware placement) add their directory here.
_KERNEL_SCOPE: tuple[str, ...] = ("sim/columnar/",)

#: The project's analysis rules, keyed by stable id.  Ids are append
#: only: a retired rule keeps its number so old ``noqa`` comments and
#: baselines never silently change meaning.
RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "REP001",
            "unseeded or global RNG use",
            "Draws from `random.*` or `numpy.random.*` module state (or an "
            "unseeded `Random()`/`default_rng()`) bypass the per-run "
            "`RngTree`; one stray draw perturbs every stream that shares "
            "the global state and breaks same-seed reproducibility.  Draw "
            "from a named `rng_tree.stream(...)` instead.",
            exempt_paths=("sim/rng.py",),
        ),
        Rule(
            "REP002",
            "wall-clock read",
            "`time.time()`, `perf_counter()` and `datetime.now()` differ "
            "between runs by construction; any value derived from them "
            "that reaches simulation state or output breaks bit-identical "
            "replay.  Timing belongs in `obs/profiler.py` and "
            "`obs/perf/profiler.py`, which are measurement-only by "
            "contract.",
            exempt_paths=("obs/profiler.py", "obs/perf/profiler.py"),
        ),
        Rule(
            "REP003",
            "order-sensitive iteration over a set",
            "Iterating a `set`/`frozenset` (or set algebra over dict "
            "views) feeds hash order into an ordering-sensitive sink — "
            "list building, first-match selection, RNG draws, float "
            "accumulation.  Hash order is not part of the language "
            "contract (string hashes are salted per process); wrap the "
            "iterable in `sorted(...)` or use an order-insensitive "
            "reduction.",
        ),
        Rule(
            "REP004",
            "float equality comparison",
            "`==`/`!=` against a float value is exact bit comparison; a "
            "reordered accumulation or an optimisation that changes "
            "rounding flips the branch.  Compare with a tolerance "
            "(`math.isclose`) or restructure; suppress only where exact "
            "comparison is the point (e.g. an exactly-zero sentinel).",
        ),
        Rule(
            "REP005",
            "mutable default argument",
            "A mutable default (`def f(x=[])`) is shared across calls: "
            "state leaks between invocations and between simulations, "
            "making behaviour depend on call history instead of the "
            "seed.  Default to `None` and construct inside the body.",
        ),
        Rule(
            "REP006",
            "non-literal RNG stream name",
            "`rng_tree.stream(name)` with a computed name makes the "
            "stream registry impossible to audit statically: `repro lint` "
            "and reviewers can no longer enumerate every stream a run "
            "draws from.  Pass a string literal at the call site.",
        ),
        # --- Family REP1xx: numeric-kernel purity (kernel dirs only) ---
        Rule(
            "REP101",
            "implicit dtype promotion in a kernel",
            "Mixing int64 and float64 arrays (or true-dividing an int64 "
            "array) relies on numpy's implicit promotion rules; the "
            "columnar engine's bit-identical contract requires every "
            "dtype transition to be explicit so scalar and vector paths "
            "round identically.  Summing a bool array upcasts twice "
            "(bool→int64→float64) behind the caller's back.",
            scope_paths=_KERNEL_SCOPE,
            hint="cast at the boundary with .astype(np.float64) (or use "
            "np.count_nonzero / an explicit dtype= for bool reductions)",
        ),
        Rule(
            "REP102",
            "order-sensitive reduction over unordered input",
            "Float accumulation is not associative: reducing a set (or a "
            "generator over one) feeds hash order into the rounding "
            "sequence, so the same values can sum to different bits on "
            "different runs.  Kernel reductions must consume a "
            "deterministically ordered sequence.",
            scope_paths=_KERNEL_SCOPE,
            hint="sort first — np.add.reduce(np.sort(...)) or "
            "sum(sorted(...))",
        ),
        Rule(
            "REP103",
            "hidden array copy in a hot path",
            "`.flatten()` always copies where `.ravel()` usually aliases; "
            "`np.append`/loop concatenation reallocates the whole array "
            "per call (quadratic); chained indexing (`a[i][j] = v`) "
            "writes into the temporary a fancy first index copies out.  "
            "Kernels are the per-epoch hot path — hidden copies are "
            "exactly the cost the columnar engine exists to remove.",
            scope_paths=_KERNEL_SCOPE,
            hint="use .ravel(), preallocate + fill, or a single "
            "a[i, j] = v fancy-index write",
        ),
        Rule(
            "REP104",
            "python-level loop over an ndarray in a kernel",
            "`for x in array:` boxes every element into a PyObject and "
            "runs the loop in the interpreter — the scalar-engine cost "
            "profile the columnar kernels were built to escape.  "
            "Intentional scalar-reference branches iterate an explicit "
            "`.tolist()` so the boxing is visible.",
            scope_paths=_KERNEL_SCOPE,
            hint="vectorise the loop body, or make the scalar fallback "
            "explicit with .tolist()",
        ),
        # --- Family REP2xx: concurrency & resource lifecycle ----------
        Rule(
            "REP201",
            "process/thread/queue without cleanup in a finally",
            "A `Process`/`Thread`/`Pool`/`Queue` whose `join`/`close`/"
            "`terminate` only runs on the happy path leaks workers and "
            "feeder threads when the orchestrating loop raises: the "
            "parent hangs at interpreter exit or strands children.  "
            "Cleanup must be reachable on the exception path.",
            hint="move join/close/terminate into a finally: block (or "
            "use the object as a context manager)",
        ),
        Rule(
            "REP202",
            "blocking queue get without a timeout",
            "`Queue.get()` with no timeout blocks forever when the "
            "producer died — precisely the crashed-worker case the sweep "
            "watchdog exists for.  A bounded `get(timeout=...)` loop "
            "keeps the supervisor responsive to worker death.",
            hint="use get(timeout=...) in a loop that re-checks liveness",
        ),
        Rule(
            "REP203",
            "os._exit outside a worker entry point",
            "`os._exit` skips finally blocks, atexit hooks and buffered "
            "I/O flushes.  In a fork worker's entry path that is the "
            "point (don't run the parent's cleanup twice); anywhere else "
            "it silently drops artifacts mid-write.",
            hint="raise SystemExit / return an exit code; keep os._exit "
            "in worker entry functions only",
        ),
        Rule(
            "REP204",
            "fork-unsafe module state mutated from a worker target",
            "A module-level mutable mutated inside a function used as a "
            "`Process` target changes a *copy* under fork (each child "
            "has its own heap) and does not exist yet under spawn: the "
            "parent never sees the writes, so the mutation is at best "
            "dead and at worst a divergence between start methods.",
            hint="pass state through args/queues and return results "
            "explicitly",
        ),
        Rule(
            "REP205",
            "daemon thread without a shutdown path",
            "A daemon thread with no `join` is killed mid-statement at "
            "interpreter exit — mid-write for anything holding a file or "
            "queue.  Daemonising is a backstop, not a shutdown protocol.",
            hint="signal the thread to stop (Event) and join(timeout=...) "
            "in a finally",
        ),
        # --- Family AUD: cross-module contract auditors ---------------
        Rule(
            "AUD001",
            "columnar override missing differential coverage",
            "Every `Simulation` hook `ColumnarSimulation` overrides is a "
            "place the two engines can disagree; the bit-identical "
            "equivalence suite only defends hooks it knows about.  An "
            "override absent from the differential test list is an "
            "unguarded divergence surface.",
            hint="add the hook name to DIFFERENTIAL_HOOKS in "
            "tests/test_columnar_equivalence.py (with a covering test)",
        ),
        Rule(
            "AUD002",
            "reason literal bypasses sim/reasons.py",
            "Decision reasons and causes are a closed vocabulary defined "
            "once in `repro.sim.reasons`; a re-spelled literal compiles "
            "fine but silently splits a category across traces, "
            "provenance, time-series columns and root-cause tables the "
            "moment either copy drifts.",
            hint="import the constant from repro.sim.reasons",
        ),
        Rule(
            "AUD003",
            "versioned artifact without a version-rejection test",
            "Every `repro-*` artifact loader rejects unknown versions so "
            "a future format bump fails loudly instead of misparsing; "
            "that rejection path is dead code until a test feeds it a "
            "bumped version.  Formats without such a test have an "
            "unverified forward-compat story.",
            hint="add a test that loads the artifact with version+1 and "
            "asserts the loader raises",
        ),
    )
}

ALL_RULE_IDS: tuple[str, ...] = tuple(sorted(RULES))


def rule_family(rule_id: str) -> str:
    """The family prefix a rule belongs to (``REP0``/``REP1``/``REP2``/
    ``AUD``)."""
    if rule_id.startswith("AUD"):
        return "AUD"
    return rule_id[:4]


#: Every family prefix, in registry order.
FAMILIES: tuple[str, ...] = tuple(
    sorted({rule_family(rule_id) for rule_id in ALL_RULE_IDS})
)

#: Rules checked when no ``--select`` is given: every per-file REP rule.
#: The AUD project pass needs a repository root (it reads files far from
#: the linted paths), so it is opt-in via ``--select AUD``.
DEFAULT_RULE_IDS: tuple[str, ...] = tuple(
    rule_id for rule_id in ALL_RULE_IDS if rule_id.startswith("REP")
)


def is_rule_id(text: str) -> bool:
    """Whether ``text`` names a known rule (exact, case-sensitive)."""
    return text in RULES


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source line.

    ``path`` is stored posix-relative to the lint invocation's working
    directory when possible so baselines and CI annotations are
    machine-independent.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: The stripped source line, for reports and baseline fingerprints.
    snippet: str = ""
    #: 0-based index of this finding among same-(path, rule, snippet)
    #: findings in the file — keeps fingerprints stable when unrelated
    #: lines move, yet distinct for repeated identical lines.
    occurrence: int = 0
    #: Set when a `# repro: noqa[...]` comment on the line covers it.
    suppressed: bool = field(default=False, compare=False)
    #: Set when the committed baseline grandfathers it.
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        payload = f"{self.path}\0{self.rule_id}\0{self.snippet}\0{self.occurrence}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def active(self) -> bool:
        """Whether the finding should gate (not suppressed, not baselined)."""
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
