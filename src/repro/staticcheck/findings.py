"""Finding records and the determinism rule registry.

Every rule this package enforces exists because one class of bug would
silently corrupt the reproduction's bit-identical guarantee (golden
chaos traces, ``repro diff`` gating, the paper's same-trace policy
comparisons).  The registry below is the single source of truth: the
linter, the reports, the baseline format and the docs all read it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding", "Rule", "RULES", "ALL_RULE_IDS", "is_rule_id"]


@dataclass(frozen=True)
class Rule:
    """One determinism rule: stable id, summary and rationale."""

    rule_id: str
    summary: str
    rationale: str
    #: Path suffixes (posix) where the rule does not apply — the one
    #: module that legitimately owns the flagged construct.
    exempt_paths: tuple[str, ...] = ()


#: The project's determinism rules, keyed by stable id.  Ids are append
#: only: a retired rule keeps its number so old ``noqa`` comments and
#: baselines never silently change meaning.
RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "REP001",
            "unseeded or global RNG use",
            "Draws from `random.*` or `numpy.random.*` module state (or an "
            "unseeded `Random()`/`default_rng()`) bypass the per-run "
            "`RngTree`; one stray draw perturbs every stream that shares "
            "the global state and breaks same-seed reproducibility.  Draw "
            "from a named `rng_tree.stream(...)` instead.",
            exempt_paths=("sim/rng.py",),
        ),
        Rule(
            "REP002",
            "wall-clock read",
            "`time.time()`, `perf_counter()` and `datetime.now()` differ "
            "between runs by construction; any value derived from them "
            "that reaches simulation state or output breaks bit-identical "
            "replay.  Timing belongs in `obs/profiler.py` and "
            "`obs/perf/profiler.py`, which are measurement-only by "
            "contract.",
            exempt_paths=("obs/profiler.py", "obs/perf/profiler.py"),
        ),
        Rule(
            "REP003",
            "order-sensitive iteration over a set",
            "Iterating a `set`/`frozenset` (or set algebra over dict "
            "views) feeds hash order into an ordering-sensitive sink — "
            "list building, first-match selection, RNG draws, float "
            "accumulation.  Hash order is not part of the language "
            "contract (string hashes are salted per process); wrap the "
            "iterable in `sorted(...)` or use an order-insensitive "
            "reduction.",
        ),
        Rule(
            "REP004",
            "float equality comparison",
            "`==`/`!=` against a float value is exact bit comparison; a "
            "reordered accumulation or an optimisation that changes "
            "rounding flips the branch.  Compare with a tolerance "
            "(`math.isclose`) or restructure; suppress only where exact "
            "comparison is the point (e.g. an exactly-zero sentinel).",
        ),
        Rule(
            "REP005",
            "mutable default argument",
            "A mutable default (`def f(x=[])`) is shared across calls: "
            "state leaks between invocations and between simulations, "
            "making behaviour depend on call history instead of the "
            "seed.  Default to `None` and construct inside the body.",
        ),
        Rule(
            "REP006",
            "non-literal RNG stream name",
            "`rng_tree.stream(name)` with a computed name makes the "
            "stream registry impossible to audit statically: `repro lint` "
            "and reviewers can no longer enumerate every stream a run "
            "draws from.  Pass a string literal at the call site.",
        ),
    )
}

ALL_RULE_IDS: tuple[str, ...] = tuple(sorted(RULES))


def is_rule_id(text: str) -> bool:
    """Whether ``text`` names a known rule (exact, case-sensitive)."""
    return text in RULES


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source line.

    ``path`` is stored posix-relative to the lint invocation's working
    directory when possible so baselines and CI annotations are
    machine-independent.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: The stripped source line, for reports and baseline fingerprints.
    snippet: str = ""
    #: 0-based index of this finding among same-(path, rule, snippet)
    #: findings in the file — keeps fingerprints stable when unrelated
    #: lines move, yet distinct for repeated identical lines.
    occurrence: int = 0
    #: Set when a `# repro: noqa[...]` comment on the line covers it.
    suppressed: bool = field(default=False, compare=False)
    #: Set when the committed baseline grandfathers it.
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        payload = f"{self.path}\0{self.rule_id}\0{self.snippet}\0{self.occurrence}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def active(self) -> bool:
        """Whether the finding should gate (not suppressed, not baselined)."""
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
