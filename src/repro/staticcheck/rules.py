"""AST implementations of the determinism rules REP001–REP006.

One :class:`DeterminismVisitor` pass per file implements every rule.
The visitor keeps three kinds of state:

* import tables — which local names are bound to ``random``, ``numpy``,
  ``time`` and ``datetime`` (modules, submodules and imported
  functions), so aliased use (``import numpy as np``) is still caught;
* a lexical scope stack for REP003's light type inference — names
  assigned or annotated as ``set``/``frozenset`` (and ``self.attr``
  annotations anywhere in the file) are tracked so iteration over them
  can be classified;
* a set of AST node ids already consumed by an enclosing construct
  (a call's ``func``, an order-insensitive reduction's argument), so a
  node is reported at most once and ``sorted(s)`` exempts ``s``.

The inference is deliberately heuristic: a linter that needs whole
program type analysis to say anything is a linter nobody runs.  False
positives are handled with ``# repro: noqa[REPxxx]`` on the line.
"""

from __future__ import annotations

import ast

from .findings import Finding

__all__ = ["check_module"]

# --- REP001 tables --------------------------------------------------------
#: numpy.random attributes that are deterministic *classes*, fine to
#: reference (constructing a seeded generator is the RngTree's own idiom).
_NP_RANDOM_CLASSES = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
     "Philox", "MT19937", "SFC64"}
)
#: Constructors that are fine *only when given an explicit seed*.
_SEED_REQUIRED = frozenset({"Random", "RandomState", "default_rng"})

# --- REP002 tables --------------------------------------------------------
_TIME_READS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime",
     "clock_gettime_ns", "localtime", "gmtime"}
)
_DATETIME_CLASSES = frozenset({"datetime", "date"})
_DATETIME_READS = frozenset({"now", "utcnow", "today"})

# --- REP003 tables --------------------------------------------------------
#: Builtins whose result does not depend on argument iteration order.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset",
     "sum"}
)
#: Builtins that materialise or linearise iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "iter", "enumerate", "zip"})
#: Set-algebra methods that yield a set.
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference", "copy"}
)
#: Calls allowed inside a loop over a set without making it
#: order-sensitive (keyed updates and order-free reductions).
_SAFE_BODY_CALLS = frozenset(
    {"len", "min", "max", "sum", "any", "all", "abs", "float", "int", "bool",
     "str", "set", "frozenset", "sorted", "isinstance", "repr", "round"}
)
_SAFE_BODY_METHODS = frozenset(
    {"add", "discard", "remove", "get", "setdefault", "update", "append_to"}
)
#: Method names that look like RNG draws — drawing per element of a set
#: consumes the stream in hash order.
_RNG_DRAW_METHODS = frozenset(
    {"random", "choice", "shuffle", "integers", "normal", "uniform",
     "standard_normal", "binomial", "poisson", "sample", "randint",
     "permutation", "exponential"}
)

_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)

# --- REP005 tables --------------------------------------------------------
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque",
     "bytearray"}
)

# --- REP006 tables --------------------------------------------------------
_RNG_TREE_METHODS = frozenset({"stream", "fresh", "child"})


def _last_name(node: ast.expr) -> str | None:
    """Trailing identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _is_floatish(node: ast.expr) -> bool:
    """Heuristically float-valued: a float literal, a division, an
    expression containing a float literal, or a ``float(...)`` call."""
    if _is_float_literal(node):
        return True
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


def _is_int_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, int)


class DeterminismVisitor(ast.NodeVisitor):
    """Single-pass checker producing raw findings (no noqa/baseline yet)."""

    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: list[Finding] = []
        # Import tables (module-level and local imports both land here;
        # per-file granularity is plenty for a lint heuristic).
        self._random_modules: set[str] = set()
        self._random_funcs: dict[str, str] = {}
        self._numpy_modules: set[str] = set()
        self._numpy_random_modules: set[str] = set()
        self._numpy_random_funcs: dict[str, str] = {}
        self._time_modules: set[str] = set()
        self._time_funcs: dict[str, str] = {}
        self._datetime_modules: set[str] = set()
        self._datetime_classes: set[str] = set()
        # REP003 scope stack: innermost last; each maps name -> kind
        # ("set" or None for explicitly-shadowed).
        self._scopes: list[dict[str, str | None]] = [{}]
        # `self.<attr>` annotations seen anywhere in the file.
        self._attr_kinds: dict[str, str] = {}
        # Node ids already handled by an enclosing construct.
        self._consumed: set[int] = set()
        # Per-(rule, snippet) occurrence counters for fingerprints.
        self._occurrences: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if line - 1 < len(self.lines) else ""
        key = (rule_id, snippet)
        occurrence = self._occurrences.get(key, 0)
        self._occurrences[key] = occurrence + 1
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col + 1,
                rule_id=rule_id,
                message=message,
                snippet=snippet,
                occurrence=occurrence,
            )
        )

    # ------------------------------------------------------------------
    # Pre-pass: collect `self.attr: set[...]` annotations file-wide
    # ------------------------------------------------------------------
    def collect_attribute_annotations(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.AnnAssign):
                continue
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                kind = self._annotation_kind(node.annotation)
                if kind is not None:
                    self._attr_kinds[target.attr] = kind

    @staticmethod
    def _annotation_kind(annotation: ast.expr) -> str | None:
        base: ast.expr = annotation
        if isinstance(base, ast.Subscript):
            base = base.value
        name = _last_name(base)
        if name in _SET_ANNOTATIONS:
            return "set"
        return None

    # ------------------------------------------------------------------
    # Imports
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_modules.add(bound)
            elif alias.name == "numpy":
                self._numpy_modules.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self._numpy_random_modules.add(alias.asname)
                else:  # `import numpy.random` binds `numpy`
                    self._numpy_modules.add("numpy")
            elif alias.name == "time":
                self._time_modules.add(bound)
            elif alias.name == "datetime":
                self._datetime_modules.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "random":
                self._random_funcs[bound] = alias.name
            elif module == "numpy" and alias.name == "random":
                self._numpy_random_modules.add(bound)
            elif module == "numpy.random":
                self._numpy_random_funcs[bound] = alias.name
            elif module == "time":
                self._time_funcs[bound] = alias.name
            elif module == "datetime" and alias.name in _DATETIME_CLASSES:
                self._datetime_classes.add(bound)

    # ------------------------------------------------------------------
    # Scope handling (REP003 inference + REP005 defaults)
    # ------------------------------------------------------------------
    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _bind(self, name: str, kind: str | None) -> None:
        self._scopes[-1][name] = kind

    def _lookup(self, name: str) -> str | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._push_scope()
        args = node.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            if arg.annotation is not None:
                kind = self._annotation_kind(arg.annotation)
                if kind is not None:
                    self._bind(arg.arg, kind)
        self.generic_visit(node)
        self._pop_scope()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_mutable_defaults(node)
        self._push_scope()
        self.generic_visit(node)
        self._pop_scope()

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = self._classify(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, kind)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        kind = self._annotation_kind(node.annotation)
        if kind is None and node.value is not None:
            kind = self._classify(node.value)
        if isinstance(node.target, ast.Name):
            self._bind(node.target.id, kind)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # REP005 — mutable defaults
    # ------------------------------------------------------------------
    def _check_mutable_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            )
            if (
                not mutable
                and isinstance(default, ast.Call)
                and _last_name(default.func) in _MUTABLE_FACTORIES
            ):
                mutable = True
            if mutable:
                self._emit(
                    default,
                    "REP005",
                    "mutable default argument is shared across calls; "
                    "default to None and construct in the body",
                )

    # ------------------------------------------------------------------
    # REP003 — set-typed expression classification
    # ------------------------------------------------------------------
    def _classify(self, node: ast.expr) -> str | None:
        """'set' when the expression is confidently set-valued."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Call):
            func_name = _last_name(node.func)
            if isinstance(node.func, ast.Name) and func_name in ("set", "frozenset"):
                return "set"
            if (
                isinstance(node.func, ast.Attribute)
                and func_name in _SET_METHODS
                and self._classify(node.func.value) == "set"
            ):
                return "set"
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self._classify_or_dict_view(node.left)
            right = self._classify_or_dict_view(node.right)
            if "set" in (left, right):
                return "set"
            # dict-view algebra (`a.keys() & b.keys()`) yields a set
            if left == "dict-view" and right == "dict-view":
                return "set"
            return None
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return self._attr_kinds.get(node.attr)
        return None

    def _classify_or_dict_view(self, node: ast.expr) -> str | None:
        kind = self._classify(node)
        if kind is not None:
            return kind
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "items")
            and not node.args
        ):
            return "dict-view"
        return None

    # ------------------------------------------------------------------
    # REP003 — iteration sinks
    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if id(node.iter) not in self._consumed and self._classify(node.iter) == "set":
            reason = self._body_order_sensitivity(node.body)
            if reason is not None:
                self._emit(
                    node.iter,
                    "REP003",
                    f"iterating a set in hash order feeds {reason}; "
                    "wrap the iterable in sorted(...)",
                )
        self.generic_visit(node)

    def _body_order_sensitivity(self, body: list[ast.stmt]) -> str | None:
        """Why the loop body is ordering-sensitive, or None if it is not."""
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Break, ast.Return)):
                    return "a first-match selection (break/return)"
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    return "an ordered yield sequence"
                if isinstance(sub, ast.AugAssign) and isinstance(sub.op, ast.Add):
                    if not _is_int_literal(sub.value):
                        return "an order-dependent accumulation (+=)"
                if isinstance(sub, ast.Call):
                    name = _last_name(sub.func)
                    if name in ("append", "extend", "insert"):
                        return "list building"
                    if name in _RNG_DRAW_METHODS:
                        return "RNG draws (stream consumed in hash order)"
                    if isinstance(sub.func, ast.Name):
                        if name not in _SAFE_BODY_CALLS:
                            return f"a call to {name}() whose order may matter"
                    elif name not in _SAFE_BODY_METHODS and name not in _SET_METHODS:
                        return f"a call to .{name}() whose order may matter"
        return None

    def _check_comprehension(
        self, node: ast.ListComp | ast.GeneratorExp | ast.SetComp | ast.DictComp
    ) -> None:
        order_sensitive = isinstance(node, (ast.ListComp, ast.GeneratorExp))
        exempt = id(node) in self._consumed
        self._push_scope()
        for comp in node.generators:
            if (
                order_sensitive
                and not exempt
                and id(comp.iter) not in self._consumed
                and self._classify(comp.iter) == "set"
            ):
                self._emit(
                    comp.iter,
                    "REP003",
                    "building an ordered sequence from set iteration; "
                    "wrap the iterable in sorted(...)",
                )
            # bind the loop target so nested use doesn't misclassify
            if isinstance(comp.target, ast.Name):
                self._bind(comp.target.id, None)
        self.generic_visit(node)
        self._pop_scope()

    visit_ListComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension

    # ------------------------------------------------------------------
    # REP004 — float equality
    # ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_floatish(left) or _is_floatish(right)
            ):
                self._emit(
                    node,
                    "REP004",
                    "exact float ==/!= comparison; use a tolerance "
                    "(math.isclose) or suppress if exactness is intended",
                )
                break
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Calls: REP001/REP002 dispatch, REP003 sinks, REP006
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        # The func node is reported through call-aware logic below, not
        # as a bare reference.
        self._consumed.add(id(node.func))
        func_name = _last_name(node.func)

        # REP003: order-insensitive reductions exempt their argument...
        if isinstance(node.func, ast.Name) and func_name in _ORDER_INSENSITIVE_CALLS:
            for arg in node.args:
                self._consumed.add(id(arg))
        # ...order-sensitive builtins flag set-typed arguments.
        elif isinstance(node.func, ast.Name) and func_name in _ORDER_SENSITIVE_CALLS:
            for arg in node.args:
                if id(arg) not in self._consumed and self._classify(arg) == "set":
                    self._emit(
                        arg,
                        "REP003",
                        f"{func_name}() materialises set hash order; "
                        "wrap the set in sorted(...)",
                    )
        elif func_name == "join" and isinstance(node.func, ast.Attribute):
            for arg in node.args:
                if self._classify(arg) == "set":
                    self._emit(
                        arg,
                        "REP003",
                        "str.join over a set concatenates in hash order; "
                        "wrap the set in sorted(...)",
                    )
        # star-unpacking a set linearises hash order
        for arg in node.args:
            if isinstance(arg, ast.Starred) and self._classify(arg.value) == "set":
                self._emit(
                    arg,
                    "REP003",
                    "*-unpacking a set passes arguments in hash order; "
                    "wrap the set in sorted(...)",
                )

        self._check_rep001_call(node)
        self._check_rep002_call(node)
        self._check_rep006_call(node)
        self.generic_visit(node)

    # --- REP001 -------------------------------------------------------
    def _check_rep001_call(self, node: ast.Call) -> None:
        func = node.func
        has_args = bool(node.args or node.keywords)
        if isinstance(func, ast.Name):
            origin = self._random_funcs.get(func.id)
            if origin is not None:
                if origin == "Random":
                    if not has_args:
                        self._emit(
                            node, "REP001",
                            "unseeded random.Random(); pass an explicit seed",
                        )
                elif origin == "SystemRandom":
                    self._emit(
                        node, "REP001",
                        "random.SystemRandom is nondeterministic by design",
                    )
                else:
                    self._emit(
                        node, "REP001",
                        f"random.{origin}() draws from the global RNG; use a "
                        "seeded rng_tree stream",
                    )
                return
            np_origin = self._numpy_random_funcs.get(func.id)
            if np_origin is not None:
                self._flag_numpy_random_attr(node, np_origin, has_args)
                return
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id in self._random_modules:
                attr = func.attr
                if attr == "Random":
                    if not has_args:
                        self._emit(
                            node, "REP001",
                            "unseeded random.Random(); pass an explicit seed",
                        )
                elif attr == "SystemRandom":
                    self._emit(
                        node, "REP001",
                        "random.SystemRandom is nondeterministic by design",
                    )
                else:
                    self._emit(
                        node, "REP001",
                        f"random.{attr}() draws from the global RNG; use a "
                        "seeded rng_tree stream",
                    )
                return
            if self._is_numpy_random_base(func.value):
                self._flag_numpy_random_attr(node, func.attr, has_args)

    def _flag_numpy_random_attr(self, node: ast.Call, attr: str, has_args: bool) -> None:
        if attr in _NP_RANDOM_CLASSES:
            return
        if attr in _SEED_REQUIRED:
            if not has_args:
                self._emit(
                    node, "REP001",
                    f"unseeded numpy.random.{attr}(); pass an explicit seed "
                    "or derive from rng_tree",
                )
            return
        self._emit(
            node, "REP001",
            f"numpy.random.{attr}() uses numpy's global RNG state; use a "
            "seeded rng_tree stream",
        )

    def _is_numpy_random_base(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._numpy_random_modules
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self._numpy_modules
        )

    # --- REP002 -------------------------------------------------------
    def _check_rep002_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            origin = self._time_funcs.get(func.id)
            if origin in _TIME_READS:
                self._emit(
                    node, "REP002",
                    f"time.{origin}() reads the wall clock; timing belongs "
                    "in obs/profiler.py",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        if self._is_time_module_attr(func):
            self._emit(
                node, "REP002",
                f"time.{func.attr}() reads the wall clock; timing belongs "
                "in obs/profiler.py",
            )
            return
        if func.attr in _DATETIME_READS and self._is_datetime_class(func.value):
            self._emit(
                node, "REP002",
                f"datetime .{func.attr}() reads the wall clock; derive "
                "timestamps from the epoch counter instead",
            )

    def _is_time_module_attr(self, node: ast.Attribute) -> bool:
        return (
            node.attr in _TIME_READS
            and isinstance(node.value, ast.Name)
            and node.value.id in self._time_modules
        )

    def _is_datetime_class(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._datetime_classes
        return (
            isinstance(node, ast.Attribute)
            and node.attr in _DATETIME_CLASSES
            and isinstance(node.value, ast.Name)
            and node.value.id in self._datetime_modules
        )

    # --- REP006 -------------------------------------------------------
    def _check_rep006_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _RNG_TREE_METHODS:
            return
        if not self._is_rng_tree_receiver(func.value):
            return
        if not node.args:
            return
        name_arg = node.args[0]
        if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
            self._emit(
                node, "REP006",
                f"rng stream name passed to .{func.attr}() is not a string "
                "literal; the stream registry must stay statically auditable",
            )

    @staticmethod
    def _is_rng_tree_receiver(node: ast.expr) -> bool:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on exprs
            return False
        tail = text.rsplit(".", 1)[-1]
        return (
            tail in ("rng_tree", "rngtree", "tree", "_rng_tree")
            or "RngTree(" in text
        )

    # ------------------------------------------------------------------
    # Bare references (callbacks like `default_factory=time.time`)
    # ------------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) not in self._consumed:
            if self._is_time_module_attr(node):
                self._emit(
                    node, "REP002",
                    f"reference to time.{node.attr} (wall-clock read when "
                    "called); timing belongs in obs/profiler.py",
                )
            elif (
                isinstance(node.value, ast.Name)
                and node.value.id in self._random_modules
                and node.attr not in ("Random", "SystemRandom")
                and not node.attr.startswith("_")
                and node.attr.islower()
            ):
                self._emit(
                    node, "REP001",
                    f"reference to random.{node.attr} (global-RNG draw when "
                    "called); use a seeded rng_tree stream",
                )
            elif self._is_numpy_random_base(node.value) and node.attr not in (
                _NP_RANDOM_CLASSES | _SEED_REQUIRED
            ):
                self._emit(
                    node, "REP001",
                    f"reference to numpy.random.{node.attr}; use a seeded "
                    "rng_tree stream",
                )
        self.generic_visit(node)


def check_module(
    path: str, source: str, tree: ast.Module | None = None
) -> list[Finding]:
    """Run every determinism rule over one file's source; returns raw
    findings (suppression and baseline are applied by the engine).

    Raises :class:`SyntaxError` when the source does not parse.
    """
    if tree is None:
        tree = ast.parse(source, filename=path)
    visitor = DeterminismVisitor(path, source.splitlines())
    visitor.collect_attribute_annotations(tree)
    visitor.visit(tree)
    visitor.findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return visitor.findings
