"""AST implementations of the concurrency/lifecycle rules REP201–REP205.

The sweep orchestrator (PR 9) made multiprocessing load-bearing; the
roadmap's live asyncio ring will add more.  This family enforces the
lifecycle invariants a crashed worker or an exception mid-orchestration
would otherwise violate:

* REP201 — every locally-owned ``Process``/``Thread``/``Pool``/``Queue``
  must have its ``join``/``close``/``terminate`` reachable in a
  ``finally`` (or be used as a context manager).  Ownership transfer —
  returning the object, storing it into a container/attribute, passing
  it to a call — exempts the creation site;
* REP202 — ``Queue.get()`` without a timeout blocks forever on producer
  death;
* REP203 — ``os._exit`` outside a worker entry point skips finallys and
  atexit hooks;
* REP204 — module-level mutable state mutated from a process-target
  function mutates a fork-copy the parent never sees;
* REP205 — a daemon thread with no ``join`` anywhere has no shutdown
  path at all.

Analysis is per-function: a creation is attributed to its innermost
enclosing function and its cleanup/escape is searched in that whole
function subtree (nested helpers included), so closures that tend a
parent's resources are credited to the parent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .findings import RULES, Finding

__all__ = ["check_concurrency"]

#: Constructor names whose instances need lifecycle cleanup, mapped to
#: the method names that count as cleanup.
_PROC_CLEANUP = frozenset({"join", "terminate", "kill", "close"})
_QUEUE_CLEANUP = frozenset({"close", "join_thread", "join", "shutdown"})
_POOL_CLEANUP = frozenset({"close", "terminate", "join", "shutdown"})
_CREATORS: dict[str, frozenset[str]] = {
    "Process": _PROC_CLEANUP,
    "Thread": _PROC_CLEANUP,
    "Pool": _POOL_CLEANUP,
    "ThreadPool": _POOL_CLEANUP,
    "ProcessPoolExecutor": _POOL_CLEANUP,
    "ThreadPoolExecutor": _POOL_CLEANUP,
    "Queue": _QUEUE_CLEANUP,
    "SimpleQueue": _QUEUE_CLEANUP,
    "JoinableQueue": _QUEUE_CLEANUP,
}
_QUEUE_CTORS = frozenset({"Queue", "SimpleQueue", "JoinableQueue"})

#: Parameter-name shapes treated as queues for REP202.
_QUEUE_PARAM_SUFFIXES = ("_q", "_queue")
_QUEUE_PARAM_NAMES = frozenset({"q", "queue"})

#: Pool/executor methods whose first argument is a worker function.
_SUBMIT_METHODS = frozenset(
    {"submit", "apply", "apply_async", "map", "imap", "imap_unordered",
     "map_async", "starmap", "starmap_async"}
)

#: Container/collection methods that mutate their receiver (REP204).
_MUTATOR_METHODS = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault", "pop",
     "popitem", "remove", "discard", "clear", "appendleft", "extendleft"}
)

_MUTABLE_FACTORY_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _last_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _contains_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


@dataclass
class _Creation:
    name: str
    ctor: str
    node: ast.Call
    scope: ast.AST  # enclosing function (or module)
    daemon: bool = False
    cleanup_methods: frozenset[str] = field(default_factory=frozenset)


class ConcurrencyVisitor:
    """Whole-module checker for REP201–REP205 (raw findings)."""

    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: list[Finding] = []
        self._occurrences: dict[tuple[str, str], int] = {}
        self._os_aliases: set[str] = set()
        self._os_exit_names: set[str] = set()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        hint = RULES[rule_id].hint
        if hint:
            message = f"{message} — fix: {hint}"
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if line - 1 < len(self.lines) else ""
        key = (rule_id, snippet)
        occurrence = self._occurrences.get(key, 0)
        self._occurrences[key] = occurrence + 1
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col + 1,
                rule_id=rule_id,
                message=message,
                snippet=snippet,
                occurrence=occurrence,
            )
        )

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def check(self, tree: ast.Module) -> None:
        self._collect_imports(tree)
        creations = self._collect_creations(tree)
        self._check_lifecycles(creations)
        self._check_queue_gets(tree)
        self._check_os_exit(tree)
        self._check_fork_unsafe_state(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "os":
                        self._os_aliases.add(alias.asname or "os")
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name == "_exit":
                        self._os_exit_names.add(alias.asname or "_exit")

    # ------------------------------------------------------------------
    # REP201 / REP205 — creation + lifecycle
    # ------------------------------------------------------------------
    def _collect_creations(self, tree: ast.Module) -> list[_Creation]:
        creations: list[_Creation] = []

        def walk(node: ast.AST, scope: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                child_scope = scope
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_scope = child
                # `with Pool() as p:` creations are managed by __exit__
                # and are not Assign nodes, so they are never collected.
                if (
                    isinstance(child, ast.Assign)
                    and len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Name)
                ):
                    creation = self._creation_from_call(child.value)
                    if creation is not None:
                        ctor, call = creation
                        creations.append(
                            _Creation(
                                name=child.targets[0].id,
                                ctor=ctor,
                                node=call,
                                scope=scope,
                                daemon=self._daemon_flag(call),
                                cleanup_methods=_CREATORS[ctor],
                            )
                        )
                walk(child, child_scope)

        walk(tree, tree)
        return creations

    @staticmethod
    def _creation_from_call(node: ast.expr) -> tuple[str, ast.Call] | None:
        if not isinstance(node, ast.Call):
            return None
        name = _last_name(node.func)
        if name in _CREATORS:
            return name, node
        return None

    @staticmethod
    def _daemon_flag(call: ast.Call) -> bool:
        for kw in call.keywords:
            if (
                kw.arg == "daemon"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
        return False

    def _check_lifecycles(self, creations: list[_Creation]) -> None:
        for creation in creations:
            cleanups = self._cleanup_calls(creation)
            in_finally = self._any_in_finally(creation, cleanups)
            managed = self._used_as_context_manager(creation)
            if creation.ctor == "Thread" and creation.daemon:
                # REP205 owns daemon threads: any join (or context
                # management) is a shutdown path; finally not required
                # because the daemon flag already bounds the hang.
                if not cleanups and not managed:
                    self._emit(
                        creation.node, "REP205",
                        f"daemon thread {creation.name!r} is never joined",
                    )
                continue
            if managed:
                continue
            if cleanups:
                if not in_finally:
                    self._emit(
                        creation.node, "REP201",
                        f"{creation.ctor} {creation.name!r} is cleaned up "
                        "only on the happy path; an exception before "
                        "cleanup leaks it",
                    )
            elif not self._escapes(creation):
                self._emit(
                    creation.node, "REP201",
                    f"{creation.ctor} {creation.name!r} is created but "
                    "never joined/closed",
                )

    def _cleanup_calls(self, creation: _Creation) -> list[ast.Call]:
        calls: list[ast.Call] = []
        for node in ast.walk(creation.scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in creation.cleanup_methods
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == creation.name
            ):
                calls.append(node)
        return calls

    def _any_in_finally(
        self, creation: _Creation, cleanups: list[ast.Call]
    ) -> bool:
        if not cleanups:
            return False
        cleanup_ids = {id(c) for c in cleanups}
        for node in ast.walk(creation.scope):
            if isinstance(node, (ast.Try, ast.TryStar)):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if id(sub) in cleanup_ids:
                            return True
        return False

    def _used_as_context_manager(self, creation: _Creation) -> bool:
        for node in ast.walk(creation.scope):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == creation.name:
                        return True
        return False

    def _escapes(self, creation: _Creation) -> bool:
        name = creation.name
        for node in ast.walk(creation.scope):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and _contains_name(node.value, name):
                    return True
            elif isinstance(node, ast.Assign):
                if node.value is not creation.node and _contains_name(
                    node.value, name
                ) and any(
                    isinstance(t, (ast.Attribute, ast.Subscript, ast.Tuple))
                    for t in node.targets
                ):
                    return True
            elif isinstance(node, ast.Call):
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if _contains_name(arg, name):
                        return True
        return False

    # ------------------------------------------------------------------
    # REP202 — blocking queue get
    # ------------------------------------------------------------------
    def _check_queue_gets(self, tree: ast.Module) -> None:
        queue_names = self._queue_names(tree)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in queue_names
            ):
                continue
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            if any(
                kw.arg == "block"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            ):
                continue
            if len(node.args) >= 2:  # get(block, timeout)
                continue
            if (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is False
            ):
                continue
            self._emit(
                node, "REP202",
                f"{node.func.value.id}.get() blocks forever if the "
                "producer died",
            )

    @staticmethod
    def _queue_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if (
                    isinstance(node.value, ast.Call)
                    and _last_name(node.value.func) in _QUEUE_CTORS
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in (
                    *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs
                ):
                    lowered = arg.arg.lower()
                    if lowered in _QUEUE_PARAM_NAMES or lowered.endswith(
                        _QUEUE_PARAM_SUFFIXES
                    ):
                        names.add(arg.arg)
        return names

    # ------------------------------------------------------------------
    # REP203 — os._exit placement
    # ------------------------------------------------------------------
    def _check_os_exit(self, tree: ast.Module) -> None:
        def walk(node: ast.AST, func_stack: tuple[str, ...]) -> None:
            for child in ast.iter_child_nodes(node):
                child_stack = func_stack
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_stack = (*func_stack, child.name)
                if isinstance(child, ast.Call) and self._is_os_exit(child.func):
                    in_worker = any(
                        "worker" in name or name.endswith("_main") or name == "main"
                        for name in child_stack
                    )
                    if not in_worker:
                        self._emit(
                            child, "REP203",
                            "os._exit skips finally blocks and atexit "
                            "hooks outside a worker entry point",
                        )
                walk(child, child_stack)

        walk(tree, ())

    def _is_os_exit(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            return func.id in self._os_exit_names
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "_exit"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._os_aliases
        )

    # ------------------------------------------------------------------
    # REP204 — fork-unsafe module state
    # ------------------------------------------------------------------
    def _check_fork_unsafe_state(self, tree: ast.Module) -> None:
        mutables = self._module_mutables(tree)
        if not mutables:
            return
        targets = self._worker_target_names(tree)
        if not targets:
            return
        for node in tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in targets
            ):
                self._flag_mutations(node, mutables)

    @staticmethod
    def _module_mutables(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            mutable = isinstance(value, (ast.List, ast.Dict, ast.Set))
            if not mutable and isinstance(value, ast.Call):
                mutable = _last_name(value.func) in _MUTABLE_FACTORY_CALLS
            if mutable:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _worker_target_names(tree: ast.Module) -> set[str]:
        targets: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    targets.add(kw.value.id)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                targets.add(node.args[0].id)
        return targets

    def _flag_mutations(self, func: ast.AST, mutables: set[str]) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name) and node.target.id in mutables:
                    self._mutation(node, node.target.id)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutables
                    ):
                        self._mutation(node, target.value.id)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutables
            ):
                self._mutation(node, node.func.value.id)

    def _mutation(self, node: ast.AST, name: str) -> None:
        self._emit(
            node, "REP204",
            f"module-level mutable {name!r} mutated inside a process "
            "target; under fork this writes to a copy the parent never "
            "sees",
        )


def check_concurrency(
    path: str, source: str, tree: ast.Module | None = None
) -> list[Finding]:
    """Run the REP2xx family over one file (raw findings).  Raises
    SyntaxError on parse failure."""
    if tree is None:
        tree = ast.parse(source, filename=path)
    visitor = ConcurrencyVisitor(path, source.splitlines())
    visitor.check(tree)
    visitor.findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return visitor.findings
