"""Static analysis and runtime determinism checking (``repro.staticcheck``).

A multi-family analysis platform plus a runtime sanitizer, all
defending one guarantee — that a seeded run is bit-reproducible:

* **REP0xx determinism** (:mod:`.rules`) — nondeterminism sources:
  unseeded RNGs, wall-clock reads, set-order iteration, float
  equality, mutable defaults, non-literal RNG stream names;
* **REP1xx numeric-kernel purity** (:mod:`.rules_numeric`) — implicit
  dtype promotion, unordered reductions, hidden copies and
  interpreter loops inside kernel directories;
* **REP2xx concurrency & lifecycle** (:mod:`.rules_concurrency`) —
  unjoined processes/queues, blocking gets, ``os._exit`` placement,
  fork-unsafe module state, daemon threads without shutdown;
* **AUD cross-module auditors** (:mod:`.project`) — engine parity,
  reason vocabulary, artifact version-rejection coverage;
* the **determinism sanitizer** (:mod:`.sanitizer`) fingerprints live
  engine state per epoch so a same-seed re-run can be diffed and the
  first divergent epoch — and the component that diverged — named.

CLI entry points: ``repro lint`` (``--select REP1,REP2,AUD``) and
``repro sanitize`` (plus ``--sanitize`` on ``run``/``compare``).  See
DESIGN.md §9.
"""

from .analyzers import AUDIT_RULE_IDS, FILE_ANALYZERS, FileAnalyzer, expand_select
from .baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineError
from .engine import (
    LintError,
    LintResult,
    changed_python_files,
    lint_paths,
    lint_source,
)
from .findings import (
    ALL_RULE_IDS,
    DEFAULT_RULE_IDS,
    FAMILIES,
    RULES,
    Finding,
    Rule,
    rule_family,
)
from .project import ProjectLayout, find_project_root, run_project_audit
from .reporting import RENDERERS, render_github, render_json, render_text
from .sanitizer import (
    COMPONENTS,
    DeterminismSanitizer,
    DivergenceReport,
    EpochFingerprint,
    FingerprintError,
    FingerprintTrail,
    bisect_divergence,
)

__all__ = [
    "ALL_RULE_IDS",
    "AUDIT_RULE_IDS",
    "Baseline",
    "BaselineError",
    "COMPONENTS",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_RULE_IDS",
    "DeterminismSanitizer",
    "DivergenceReport",
    "EpochFingerprint",
    "FAMILIES",
    "FILE_ANALYZERS",
    "FileAnalyzer",
    "Finding",
    "FingerprintError",
    "FingerprintTrail",
    "LintError",
    "LintResult",
    "ProjectLayout",
    "RENDERERS",
    "RULES",
    "Rule",
    "bisect_divergence",
    "changed_python_files",
    "expand_select",
    "find_project_root",
    "lint_paths",
    "lint_source",
    "render_github",
    "render_json",
    "render_text",
    "rule_family",
]
