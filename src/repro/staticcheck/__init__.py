"""Static analysis and runtime determinism checking (``repro.staticcheck``).

Two halves of one guarantee — that a seeded run is bit-reproducible:

* the **lint engine** (:mod:`.rules`, :mod:`.engine`) finds
  nondeterminism *sources* in the source tree before they ship
  (unseeded RNGs, wall-clock reads, set-order iteration, float
  equality, mutable defaults, non-literal RNG stream names);
* the **determinism sanitizer** (:mod:`.sanitizer`) fingerprints live
  engine state per epoch so a same-seed re-run can be diffed and the
  first divergent epoch — and the component that diverged — named.

CLI entry points: ``repro lint`` and ``repro sanitize`` (plus
``--sanitize`` on ``run``/``compare``).  See DESIGN.md §9.
"""

from .baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineError
from .engine import LintError, LintResult, lint_paths, lint_source
from .findings import ALL_RULE_IDS, RULES, Finding, Rule
from .reporting import RENDERERS, render_github, render_json, render_text
from .sanitizer import (
    COMPONENTS,
    DeterminismSanitizer,
    DivergenceReport,
    EpochFingerprint,
    FingerprintError,
    FingerprintTrail,
    bisect_divergence,
)

__all__ = [
    "ALL_RULE_IDS",
    "Baseline",
    "BaselineError",
    "COMPONENTS",
    "DEFAULT_BASELINE_NAME",
    "DeterminismSanitizer",
    "DivergenceReport",
    "EpochFingerprint",
    "Finding",
    "FingerprintError",
    "FingerprintTrail",
    "LintError",
    "LintResult",
    "RENDERERS",
    "RULES",
    "Rule",
    "bisect_divergence",
    "lint_paths",
    "lint_source",
    "render_github",
    "render_json",
    "render_text",
]
