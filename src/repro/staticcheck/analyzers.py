"""Analyzer registry and ``--select`` expansion.

The platform has two kinds of analyzer:

* **file analyzers** — one AST pass per family per file
  (:func:`repro.staticcheck.rules.check_module` for REP0xx,
  :mod:`.rules_numeric` for REP1xx, :mod:`.rules_concurrency` for
  REP2xx).  The driver parses each file once and hands the tree to
  every family whose rules are selected;
* the **project pass** (:mod:`.project`) — the AUD auditors, which read
  multiple files and therefore run once per invocation, not per file.

``--select`` accepts exact rule ids and family prefixes, comma- or
space-separated: ``--select REP1,REP2,AUD`` expands to every rule in
those families.  Unknown tokens raise so a typo cannot silently lint
nothing.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from .findings import ALL_RULE_IDS, DEFAULT_RULE_IDS, Finding, rule_family
from .rules import check_module
from .rules_concurrency import check_concurrency
from .rules_numeric import check_numeric

__all__ = [
    "AUDIT_RULE_IDS",
    "FILE_ANALYZERS",
    "FileAnalyzer",
    "expand_select",
    "run_file_analyzers",
]


@dataclass(frozen=True)
class FileAnalyzer:
    """One per-file AST pass: the rules it implements and its entry."""

    name: str
    family: str
    rule_ids: frozenset[str]
    check: Callable[[str, str, ast.Module], list[Finding]]


def _family_ids(prefix: str) -> frozenset[str]:
    return frozenset(r for r in ALL_RULE_IDS if rule_family(r) == prefix)


FILE_ANALYZERS: tuple[FileAnalyzer, ...] = (
    FileAnalyzer(
        name="determinism",
        family="REP0",
        rule_ids=_family_ids("REP0"),
        check=lambda path, source, tree: check_module(path, source, tree),
    ),
    FileAnalyzer(
        name="numeric-purity",
        family="REP1",
        rule_ids=_family_ids("REP1"),
        check=lambda path, source, tree: check_numeric(path, source, tree),
    ),
    FileAnalyzer(
        name="concurrency",
        family="REP2",
        rule_ids=_family_ids("REP2"),
        check=lambda path, source, tree: check_concurrency(path, source, tree),
    ),
)

#: Rule ids implemented by the project pass rather than a file analyzer.
AUDIT_RULE_IDS: frozenset[str] = _family_ids("AUD")

_FAMILY_PREFIXES = ("AUD", "REP0", "REP1", "REP2", "REP")


def expand_select(select: Iterable[str] | None) -> frozenset[str]:
    """Expand rule ids and family prefixes into a concrete rule-id set.

    ``None``/empty selects the default set (every REP rule; the AUD
    project pass is opt-in).  Tokens may be comma-separated.  Raises
    :class:`ValueError` on anything that is neither a rule id nor a
    family prefix.
    """
    if not select:
        return frozenset(DEFAULT_RULE_IDS)
    out: set[str] = set()
    unknown: list[str] = []
    for raw in select:
        for token in raw.split(","):
            token = token.strip()
            if not token:
                continue
            if token in ALL_RULE_IDS:
                out.add(token)
            elif token in _FAMILY_PREFIXES:
                out.update(
                    r for r in ALL_RULE_IDS
                    if r.startswith(token)
                )
            else:
                unknown.append(token)
    if unknown:
        raise ValueError(
            f"unknown rule ids or families: {sorted(set(unknown))}; "
            f"rules: {list(ALL_RULE_IDS)}; families: {list(_FAMILY_PREFIXES)}"
        )
    return frozenset(out)


def run_file_analyzers(
    path: str, source: str, select: frozenset[str]
) -> list[Finding]:
    """Run every selected file analyzer over one file, parsing once.

    Returns raw findings in (line, col, rule) order; raises SyntaxError
    on a parse failure.
    """
    analyzers = [a for a in FILE_ANALYZERS if a.rule_ids & select]
    if not analyzers:
        return []
    tree = ast.parse(source, filename=path)
    findings: list[Finding] = []
    for analyzer in analyzers:
        findings.extend(analyzer.check(path, source, tree))
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings
