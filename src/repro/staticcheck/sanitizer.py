"""Runtime determinism sanitizer: per-epoch state fingerprints.

The lint rules catch nondeterminism *sources*; this module catches the
*symptom* — two same-seed runs whose state drifts apart — and, crucially,
answers the question "where and when" instead of "outputs differ".

Per epoch the engine hands the sanitizer four state components and it
condenses each into an 8-byte BLAKE2b digest:

* ``replicas``   — the full ReplicaMap (holder + (sid, count) multiset
  per partition);
* ``storage``    — per-server liveness and storage accounting;
* ``rng``        — the position of every named ``rng_tree`` stream
  (also kept per stream, so a divergence names the stream);
* ``metrics``    — every metric value recorded for the epoch, bit-exact.

The component digests are folded into a running **hash chain**:
``chain[e] = H(chain[e-1] || e || digests[e])``.  Because the chain is
prefix-cumulative, two trails can be compared by *binary search* on the
chain values — :func:`bisect_divergence` finds the first divergent
epoch in O(log n) record comparisons, then attributes it to the
component(s) (and RNG stream(s)) whose digests differ at that epoch.

Digests are built from explicit byte encodings (``struct``-packed
doubles, length-prefixed UTF-8), never ``hash()`` or ``repr`` of
floats, so a trail saved on one machine is comparable on another.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster
    from ..cluster.replicas import ReplicaMap
    from ..sim.rng import RngTree

__all__ = [
    "COMPONENTS",
    "DeterminismSanitizer",
    "DivergenceReport",
    "EpochFingerprint",
    "FingerprintError",
    "FingerprintTrail",
    "bisect_divergence",
]

#: Fingerprinted state components, in digest order.
COMPONENTS: tuple[str, ...] = ("replicas", "storage", "rng", "metrics")

_DIGEST_SIZE = 8  # bytes -> 16 hex chars per component
_FORMAT = "repro-fingerprint"
_VERSION = 1


class FingerprintError(SimulationError):
    """A fingerprint artifact is malformed or unusable."""


def _hexdigest(payload: bytes) -> str:
    return blake2b(payload, digest_size=_DIGEST_SIZE).hexdigest()


def _pack_float(value: float) -> bytes:
    return struct.pack("<d", float(value))


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


@dataclass(frozen=True)
class EpochFingerprint:
    """One epoch's component digests plus the running chain value."""

    epoch: int
    components: dict[str, str]
    rng_streams: dict[str, str]
    chain: str

    def to_dict(self) -> dict[str, object]:
        return {
            "epoch": self.epoch,
            "components": dict(self.components),
            "rng_streams": dict(self.rng_streams),
            "chain": self.chain,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EpochFingerprint":
        try:
            return cls(
                epoch=int(payload["epoch"]),  # type: ignore[arg-type]
                components={
                    str(k): str(v)
                    for k, v in dict(payload["components"]).items()  # type: ignore[arg-type]
                },
                rng_streams={
                    str(k): str(v)
                    for k, v in dict(payload.get("rng_streams", {})).items()  # type: ignore[arg-type]
                },
                chain=str(payload["chain"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FingerprintError(f"malformed fingerprint record: {exc}") from exc


@dataclass
class FingerprintTrail:
    """A run's full fingerprint sequence, saveable as a JSON artifact."""

    meta: dict[str, object] = field(default_factory=dict)
    records: list[EpochFingerprint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def final_chain(self) -> str:
        """The whole-run digest: equal chains imply equal runs."""
        return self.records[-1].chain if self.records else ""

    # ------------------------------------------------------------------
    # Artifact I/O
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "meta": dict(self.meta),
            "epochs": [record.to_dict() for record in self.records],
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=1) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FingerprintTrail":
        if not isinstance(payload, Mapping) or payload.get("format") != _FORMAT:
            raise FingerprintError(f"not a {_FORMAT!r} artifact")
        if payload.get("version") != _VERSION:
            raise FingerprintError(
                f"unsupported fingerprint version {payload.get('version')!r} "
                f"(supported: {_VERSION})"
            )
        epochs = payload.get("epochs")
        if not isinstance(epochs, list):
            raise FingerprintError("'epochs' must be a list")
        meta = payload.get("meta")
        return cls(
            meta=dict(meta) if isinstance(meta, Mapping) else {},
            records=[EpochFingerprint.from_dict(record) for record in epochs],
        )

    @classmethod
    def load(cls, path: str | Path) -> "FingerprintTrail":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise FingerprintError(f"cannot read {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FingerprintError(f"{path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


class DeterminismSanitizer:
    """Fingerprints engine state once per epoch (driven by the engine).

    Attach via ``Simulation(..., sanitizer=DeterminismSanitizer())`` or
    the CLI's ``--sanitize``; after the run, :meth:`trail` returns the
    artifact to save or compare.  The per-epoch cost is a few byte-pack
    loops over ~64 partitions and ~120 servers — benchmarked in
    ``bench_kernels.py`` to stay within noise of a bare epoch step.
    """

    def __init__(self, *, meta: Mapping[str, object] | None = None) -> None:
        self._trail = FingerprintTrail(meta=dict(meta or {}))
        self._chain = b""

    # ------------------------------------------------------------------
    # Component digests
    # ------------------------------------------------------------------
    @staticmethod
    def _digest_replicas(replicas: "ReplicaMap") -> str:
        parts: list[bytes] = []
        for partition in range(replicas.num_partitions):
            holder = (
                replicas.holder(partition) if replicas.has_holder(partition) else -1
            )
            entries = replicas.servers_with(partition)  # sorted by sid
            parts.append(struct.pack("<iiI", partition, holder, len(entries)))
            for sid, count in entries:
                parts.append(struct.pack("<ii", sid, count))
        return _hexdigest(b"".join(parts))

    @staticmethod
    def _digest_storage(cluster: "Cluster") -> str:
        parts: list[bytes] = []
        for server in cluster.servers:  # stable sid order
            parts.append(
                struct.pack("<i?", server.sid, server.alive)
                + _pack_float(server.storage_used_mb)
            )
        return _hexdigest(b"".join(parts))

    @staticmethod
    def _digest_rng(rng_tree: "RngTree") -> tuple[str, dict[str, str]]:
        streams: dict[str, str] = {}
        parts: list[bytes] = []
        for name, state in rng_tree.stream_states().items():
            encoded = json.dumps(state, sort_keys=True, default=str).encode("utf-8")
            digest = _hexdigest(encoded)
            streams[name] = digest
            parts.append(_pack_str(name) + digest.encode("ascii"))
        return _hexdigest(b"".join(parts)), streams

    @staticmethod
    def _digest_metrics(values: Mapping[str, float]) -> str:
        parts = [
            _pack_str(name) + _pack_float(values[name]) for name in sorted(values)
        ]
        return _hexdigest(b"".join(parts))

    # ------------------------------------------------------------------
    # Engine hook
    # ------------------------------------------------------------------
    def observe(
        self,
        epoch: int,
        *,
        replicas: "ReplicaMap",
        cluster: "Cluster",
        rng_tree: "RngTree",
        metrics: Mapping[str, float],
    ) -> EpochFingerprint:
        """Fingerprint one epoch's end-of-epoch state; returns the record."""
        rng_digest, rng_streams = self._digest_rng(rng_tree)
        components = {
            "replicas": self._digest_replicas(replicas),
            "storage": self._digest_storage(cluster),
            "rng": rng_digest,
            "metrics": self._digest_metrics(metrics),
        }
        payload = self._chain + struct.pack("<q", epoch)
        for name in COMPONENTS:
            payload += components[name].encode("ascii")
        chain = _hexdigest(payload)
        self._chain = chain.encode("ascii")
        record = EpochFingerprint(
            epoch=epoch,
            components=components,
            rng_streams=rng_streams,
            chain=chain,
        )
        self._trail.records.append(record)
        return record

    def trail(self) -> FingerprintTrail:
        """The trail recorded so far (live object, not a copy)."""
        return self._trail


# ----------------------------------------------------------------------
# Divergence bisection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DivergenceReport:
    """Outcome of comparing two fingerprint trails."""

    identical: bool
    epochs_compared: int
    #: Trailing epochs present in only one trail (baseline, candidate).
    extra_epochs: tuple[int, int] = (0, 0)
    first_divergent_epoch: int | None = None
    #: Components whose digests differ at the first divergent epoch.
    components: tuple[str, ...] = ()
    #: RNG streams whose digests differ there (when ``rng`` diverged, or
    #: streams that exist in only one run).
    rng_streams: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        return 0 if self.identical else 1

    def to_dict(self) -> dict[str, object]:
        return {
            "identical": self.identical,
            "epochs_compared": self.epochs_compared,
            "extra_epochs": list(self.extra_epochs),
            "first_divergent_epoch": self.first_divergent_epoch,
            "components": list(self.components),
            "rng_streams": list(self.rng_streams),
        }

    def describe(self) -> str:
        """Human verdict, one short paragraph."""
        if self.identical:
            text = (
                f"runs are fingerprint-identical over "
                f"{self.epochs_compared} epoch(s)"
            )
            if any(self.extra_epochs):
                text += (
                    f" (note: trails differ in length by "
                    f"{self.extra_epochs[0]}/{self.extra_epochs[1]} trailing "
                    "epoch(s))"
                )
            return text
        if self.first_divergent_epoch is None:
            return "runs share no comparable epochs"
        parts = [
            f"DIVERGENCE at epoch {self.first_divergent_epoch}: "
            f"component(s) {', '.join(self.components) or '<chain only>'} differ"
        ]
        if self.rng_streams:
            parts.append(f"rng stream(s): {', '.join(self.rng_streams)}")
        return "; ".join(parts)


def _diverged_detail(
    a: EpochFingerprint, b: EpochFingerprint
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    names = sorted(set(a.components) | set(b.components))
    components = tuple(
        name for name in names if a.components.get(name) != b.components.get(name)
    )
    stream_names = sorted(set(a.rng_streams) | set(b.rng_streams))
    streams = tuple(
        name
        for name in stream_names
        if a.rng_streams.get(name) != b.rng_streams.get(name)
    )
    return components, streams


def bisect_divergence(
    baseline: FingerprintTrail, candidate: FingerprintTrail
) -> DivergenceReport:
    """Locate the first divergent epoch between two trails.

    Exploits the chain's prefix-cumulative property: if ``chain[i]``
    matches, every epoch ``<= i`` matches, so a binary search over the
    shared prefix finds the first mismatch in O(log n) comparisons.
    Epochs must line up index-by-index (same stride); mismatched epoch
    numbering is reported as an immediate divergence at the first
    mismatched index.
    """
    n = min(len(baseline.records), len(candidate.records))
    extra = (len(baseline.records) - n, len(candidate.records) - n)
    if n == 0:
        return DivergenceReport(
            identical=not any(extra),
            epochs_compared=0,
            extra_epochs=extra,
            first_divergent_epoch=None,
        )
    if baseline.records[n - 1].chain == candidate.records[n - 1].chain:
        return DivergenceReport(
            identical=not any(extra),
            epochs_compared=n,
            extra_epochs=extra,
            first_divergent_epoch=None,
        )
    # Binary search: find the smallest index whose chains differ.
    lo, hi = 0, n - 1  # invariant: chains differ at hi
    while lo < hi:
        mid = (lo + hi) // 2
        if baseline.records[mid].chain == candidate.records[mid].chain:
            lo = mid + 1
        else:
            hi = mid
    rec_a, rec_b = baseline.records[lo], candidate.records[lo]
    if rec_a.epoch != rec_b.epoch:
        return DivergenceReport(
            identical=False,
            epochs_compared=n,
            extra_epochs=extra,
            first_divergent_epoch=min(rec_a.epoch, rec_b.epoch),
            components=("epoch-numbering",),
        )
    components, streams = _diverged_detail(rec_a, rec_b)
    return DivergenceReport(
        identical=False,
        epochs_compared=n,
        extra_epochs=extra,
        first_divergent_epoch=rec_a.epoch,
        components=components,
        rng_streams=streams,
    )
