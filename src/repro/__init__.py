"""repro — reproduction of "RFH: A Resilient, Fault-Tolerant and
High-efficient Replication Algorithm for Distributed Cloud Storage"
(Qu & Xiong, ICPP 2012).

Quickstart::

    from repro import Simulation, SimulationConfig

    sim = Simulation(SimulationConfig(seed=7), policy="rfh")
    metrics = sim.run(epochs=100)
    print(metrics.series("utilization").tail_mean(20))

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from .baselines import OwnerOrientedPolicy, RandomPolicy, RequestOrientedPolicy
from .config import (
    ClusterParameters,
    RFHParameters,
    SimulationConfig,
    WorkloadParameters,
)
from .core import RFHPolicy
from .errors import ReproError
from .metrics import MetricsCollector, Series
from .sim import (
    EpochObservation,
    MassFailureEvent,
    Migrate,
    Replicate,
    ServerJoinEvent,
    ServerRecoveryEvent,
    Simulation,
    Suicide,
)
from .workload import (
    FlashCrowdPattern,
    HotspotPattern,
    LocationShiftPattern,
    PopularityShiftPattern,
    QueryGenerator,
    UniformPattern,
    WorkloadTrace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SimulationConfig",
    "RFHParameters",
    "ClusterParameters",
    "WorkloadParameters",
    "Simulation",
    "EpochObservation",
    "Replicate",
    "Migrate",
    "Suicide",
    "MassFailureEvent",
    "ServerRecoveryEvent",
    "ServerJoinEvent",
    "RFHPolicy",
    "RandomPolicy",
    "OwnerOrientedPolicy",
    "RequestOrientedPolicy",
    "MetricsCollector",
    "Series",
    "QueryGenerator",
    "WorkloadTrace",
    "UniformPattern",
    "HotspotPattern",
    "FlashCrowdPattern",
    "LocationShiftPattern",
    "PopularityShiftPattern",
    "ReproError",
]
