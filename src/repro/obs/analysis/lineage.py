"""Replica-lifecycle reconstruction from an event trace.

The engine's metric series say *how many* replicas existed per epoch;
the trace says which copy was created where and why — and from it the
full per-copy biography can be stitched back together.  The mean-field
replication literature (Sun et al., arXiv:1701.00335) treats replica
*lifetime* and loss-lineage distributions as the primary lens on a
replication algorithm's behaviour, so this module rebuilds exactly
those: every copy's chain of **stays** (a residence on one server),
linked across migrations into a **lifecycle**, annotated with birth and
death causes.

Stitching rules mirror the engine's own birth/death bookkeeping
(``Simulation._replica_birth``) one-to-one, which is what makes the
round-trip test possible: the multiset of closed-stay durations
reconstructed here equals the engine-side ``replica_lifetime_epochs``
histogram exactly.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..trace import TraceEvent

__all__ = [
    "ReplicaStay",
    "ReplicaLifecycle",
    "Lineage",
    "build_lineage",
    "distribution",
]

#: Kinds that create a brand-new copy (start a lifecycle).
BIRTH_KINDS: tuple[str, ...] = ("replica_bootstrap", "partition_restore", "replicate")


def distribution(values: Iterable[float]) -> dict[str, float]:
    """count/mean/p50/p95/max of a sample (nearest-rank percentiles)."""
    ordered = sorted(values)
    if not ordered:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    n = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(n - 1, max(0, round(q * (n - 1))))]

    return {
        "count": n,
        "mean": sum(ordered) / n,
        "p50": pct(0.50),
        "p95": pct(0.95),
        "max": ordered[-1],
    }


@dataclass
class ReplicaStay:
    """One copy's residence on one server.

    ``born_epoch`` is ``None`` when the birth predates the trace (a
    truncated or ring-buffer-evicted prefix); such stays are excluded
    from lifetime statistics, exactly as the engine skips deaths whose
    birth record is missing.
    """

    partition: int
    sid: int
    dc: int | None
    born_epoch: int | None
    born_kind: str
    end_epoch: int | None = None
    end_kind: str | None = None

    @property
    def closed(self) -> bool:
        return self.end_epoch is not None

    @property
    def duration(self) -> int | None:
        """Epochs lived, when both endpoints are known."""
        if self.born_epoch is None or self.end_epoch is None:
            return None
        return self.end_epoch - self.born_epoch


@dataclass
class ReplicaLifecycle:
    """A copy's full biography: stays chained across migrations."""

    partition: int
    stays: list[ReplicaStay] = field(default_factory=list)

    @property
    def born_epoch(self) -> int | None:
        return self.stays[0].born_epoch

    @property
    def born_kind(self) -> str:
        return self.stays[0].born_kind

    @property
    def end_epoch(self) -> int | None:
        return self.stays[-1].end_epoch

    @property
    def end_kind(self) -> str | None:
        """What finally killed the copy (migration ends a stay, not a life)."""
        return self.stays[-1].end_kind

    @property
    def alive(self) -> bool:
        return self.stays[-1].end_epoch is None

    @property
    def migrations(self) -> int:
        return len(self.stays) - 1

    @property
    def dc_hops(self) -> int:
        """Migrations that crossed datacenters (needs ``dc`` tags)."""
        hops = 0
        for prev, cur in zip(self.stays, self.stays[1:]):
            if prev.dc is not None and cur.dc is not None and prev.dc != cur.dc:
                hops += 1
        return hops

    @property
    def lifetime(self) -> int | None:
        """Birth-to-death epochs across the whole chain, when known."""
        if self.born_epoch is None or self.end_epoch is None:
            return None
        return self.end_epoch - self.born_epoch

    @property
    def servers(self) -> list[int]:
        return [stay.sid for stay in self.stays]


class Lineage:
    """Every reconstructed lifecycle of one policy's event stream."""

    def __init__(self) -> None:
        self.lifecycles: list[ReplicaLifecycle] = []
        #: (partition, sid) -> lifecycle whose last stay is still open there.
        self._live: dict[tuple[int, int], ReplicaLifecycle] = {}
        #: Closed stays, in death order (the engine-histogram mirror).
        self.closed_stays: list[ReplicaStay] = []
        #: Stitching problems worth surfacing (e.g. failures without a
        #: ``partitions`` list from a pre-analytics trace).
        self.warnings: list[str] = []
        self._warned_no_partitions = False

    # -- construction ---------------------------------------------------
    def _open(
        self, partition: int, sid: int, dc: int | None, epoch: int | None, kind: str
    ) -> ReplicaLifecycle:
        """Start a new lifecycle at (partition, sid)."""
        existing = self._live.pop((partition, sid), None)
        if existing is not None:
            # A second copy landed on the same server: the engine
            # overwrites its birth record without observing a death, so
            # mark the old stay superseded and exclude it from stats.
            self._close_stay(existing.stays[-1], epoch or 0, "superseded", record=False)
        life = ReplicaLifecycle(partition=partition)
        life.stays.append(
            ReplicaStay(
                partition=partition, sid=sid, dc=dc, born_epoch=epoch, born_kind=kind
            )
        )
        self.lifecycles.append(life)
        self._live[(partition, sid)] = life
        return life

    def _resume_or_adopt(
        self, partition: int, sid: int, dc: int | None
    ) -> ReplicaLifecycle:
        """The live lifecycle at (partition, sid), or a pre-trace stand-in."""
        life = self._live.pop((partition, sid), None)
        if life is not None:
            return life
        life = ReplicaLifecycle(partition=partition)
        life.stays.append(
            ReplicaStay(
                partition=partition,
                sid=sid,
                dc=dc,
                born_epoch=None,
                born_kind="pre-trace",
            )
        )
        self.lifecycles.append(life)
        return life

    def _close_stay(
        self, stay: ReplicaStay, epoch: int, kind: str, *, record: bool = True
    ) -> None:
        stay.end_epoch = epoch
        stay.end_kind = kind
        if record and stay.born_epoch is not None:
            self.closed_stays.append(stay)

    def apply(self, event: TraceEvent) -> None:
        """Fold one trace event into the lineage state."""
        kind = event.kind
        if kind in BIRTH_KINDS and event.partition is not None and event.server is not None:
            self._open(
                event.partition,
                event.server,
                _as_int(event.extra.get("dc")),
                event.epoch,
                "bootstrap" if kind == "replica_bootstrap" else kind,
            )
        elif kind == "migrate" and event.partition is not None:
            source = _as_int(event.extra.get("source"))
            if source is None or event.server is None:
                return
            life = self._resume_or_adopt(
                event.partition, source, _as_int(event.extra.get("source_dc"))
            )
            self._close_stay(life.stays[-1], event.epoch, "migrate")
            existing = self._live.pop((event.partition, event.server), None)
            if existing is not None:
                self._close_stay(
                    existing.stays[-1], event.epoch, "superseded", record=False
                )
            life.stays.append(
                ReplicaStay(
                    partition=event.partition,
                    sid=event.server,
                    dc=_as_int(event.extra.get("dc")),
                    born_epoch=event.epoch,
                    born_kind="migrate",
                )
            )
            self._live[(event.partition, event.server)] = life
        elif kind == "suicide" and event.partition is not None and event.server is not None:
            life = self._resume_or_adopt(
                event.partition, event.server, _as_int(event.extra.get("dc"))
            )
            self._close_stay(life.stays[-1], event.epoch, "suicide")
        elif kind == "server_failure" and event.server is not None:
            partitions = event.extra.get("partitions")
            if partitions is None:
                lost = _as_int(event.extra.get("replicas_lost")) or 0
                if lost and not self._warned_no_partitions:
                    self.warnings.append(
                        "server_failure events carry no 'partitions' list "
                        "(pre-analytics trace?); failure deaths cannot be "
                        "stitched and lifetime stats will undercount"
                    )
                    self._warned_no_partitions = True
                return
            for partition in partitions:  # type: ignore[union-attr]
                p = _as_int(partition)
                if p is None:
                    continue
                life = self._resume_or_adopt(
                    p, event.server, _as_int(event.extra.get("dc"))
                )
                self._close_stay(life.stays[-1], event.epoch, "failure")

    # -- statistics -----------------------------------------------------
    def stay_lifetimes(self) -> list[int]:
        """Durations of closed stays with a known birth — the exact
        multiset the engine feeds ``replica_lifetime_epochs``."""
        return [stay.duration for stay in self.closed_stays if stay.duration is not None]

    def lifecycle_lifetimes(self) -> list[int]:
        """Birth-to-death epochs per whole lifecycle (chains included)."""
        return [
            life.lifetime
            for life in self.lifecycles
            if life.lifetime is not None and life.end_kind != "superseded"
        ]

    def summary(self) -> dict[str, object]:
        """JSON-able digest of the reconstruction."""
        closed = [life for life in self.lifecycles if not life.alive]
        births: dict[str, int] = {}
        deaths: dict[str, int] = {}
        for life in self.lifecycles:
            births[life.born_kind] = births.get(life.born_kind, 0) + 1
        for life in closed:
            key = life.end_kind or "unknown"
            deaths[key] = deaths.get(key, 0) + 1
        migrated = [life for life in self.lifecycles if life.migrations > 0]
        return {
            "lifecycles": len(self.lifecycles),
            "alive": len(self.lifecycles) - len(closed),
            "closed": len(closed),
            "births_by_kind": dict(sorted(births.items())),
            "deaths_by_kind": dict(sorted(deaths.items())),
            "lifetime_epochs": distribution(self.lifecycle_lifetimes()),
            "stay_lifetime_epochs": distribution(self.stay_lifetimes()),
            "migrations_per_lifecycle": distribution(
                [life.migrations for life in self.lifecycles]
            ),
            "migrated_lifecycles": len(migrated),
            "dc_hops_per_migrated_lifecycle": distribution(
                [life.dc_hops for life in migrated]
            ),
            "warnings": list(self.warnings),
        }


def _as_int(value: object) -> int | None:
    if value is None or isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return int(value)
    try:
        return int(str(value))
    except ValueError:
        return None


def build_lineage(events: Iterable[TraceEvent]) -> Lineage:
    """Stitch an event stream (one policy's, in emission order) into a
    :class:`Lineage`."""
    lineage = Lineage()
    for event in events:
        lineage.apply(event)
    return lineage
