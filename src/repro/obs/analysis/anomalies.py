"""Anomaly detectors over the event stream.

Three detectors, each targeting a pathology a replication loop can fall
into without any aggregate metric flagging it:

* **migration ping-pong** — the same partition bouncing A→B→A within a
  few epochs: the decision thresholds are fighting each other and every
  bounce pays full migration cost for zero placement gain;
* **replication storms** — actions-per-epoch spiking far above the
  recent baseline (a rolling z-score): self-inflicted maintenance
  traffic of the kind churn studies blame for secondary overload;
* **churn hotspots** — one datacenter absorbing a disproportionate
  share of membership churn and replica movement.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..trace import TraceEvent

__all__ = [
    "Anomaly",
    "detect_pingpong",
    "detect_replication_storms",
    "detect_churn_hotspots",
    "detect_anomalies",
]


@dataclass(frozen=True)
class Anomaly:
    """One detected pathology, self-describing for reports."""

    kind: str
    epoch: int
    severity: float
    description: str
    detail: dict[str, object] = field(default_factory=dict)


def detect_pingpong(
    events: Iterable[TraceEvent], *, k: int = 10
) -> list[Anomaly]:
    """Partitions whose copies bounce straight back (A→B then B→A
    within ``k`` epochs).  One anomaly per offending partition, counting
    every bounce and naming the server pair that bounced most."""
    last_move: dict[int, tuple[int, int, int]] = {}  # partition -> (src, dst, epoch)
    bounces: dict[int, list[tuple[int, int, int]]] = {}  # partition -> [(a, b, epoch)]
    for event in events:
        if event.kind != "migrate" or event.partition is None or event.server is None:
            continue
        source = event.extra.get("source")
        if not isinstance(source, (int, float)):
            continue
        src, dst = int(source), event.server
        previous = last_move.get(event.partition)
        if (
            previous is not None
            and previous[0] == dst
            and previous[1] == src
            and event.epoch - previous[2] <= k
        ):
            bounces.setdefault(event.partition, []).append((src, dst, event.epoch))
        last_move[event.partition] = (src, dst, event.epoch)
    out: list[Anomaly] = []
    for partition, hits in sorted(bounces.items()):
        pairs: dict[tuple[int, int], int] = {}
        for a, b, _epoch in hits:
            key = (min(a, b), max(a, b))
            pairs[key] = pairs.get(key, 0) + 1
        (sa, sb), count = max(pairs.items(), key=lambda kv: (kv[1], kv[0]))
        out.append(
            Anomaly(
                kind="ping-pong",
                epoch=hits[0][2],
                severity=float(len(hits)),
                description=(
                    f"partition {partition} bounced {len(hits)}x within "
                    f"{k} epochs (worst pair: servers {sa}<->{sb}, {count}x)"
                ),
                detail={
                    "partition": partition,
                    "bounces": len(hits),
                    "epochs": [epoch for _a, _b, epoch in hits],
                    "worst_pair": [sa, sb],
                },
            )
        )
    return out


def detect_replication_storms(
    events: Iterable[TraceEvent],
    *,
    window: int = 25,
    z_threshold: float = 3.0,
    min_actions: int = 5,
) -> list[Anomaly]:
    """Epochs whose action count (replicate + migrate) sits ``z_threshold``
    standard deviations above the mean of the preceding ``window``
    epochs.  Consecutive storm epochs merge into one anomaly reporting
    the peak.  ``min_actions`` suppresses "storms" in near-idle runs
    where one action is already many sigmas."""
    per_epoch: dict[int, int] = {}
    for event in events:
        if event.kind in ("replicate", "migrate"):
            per_epoch[event.epoch] = per_epoch.get(event.epoch, 0) + 1
    if not per_epoch:
        return []
    first, last = min(per_epoch), max(per_epoch)
    series = [per_epoch.get(e, 0) for e in range(first, last + 1)]

    flagged: list[tuple[int, int, float]] = []  # (epoch, count, z)
    for i, count in enumerate(series):
        history = series[max(0, i - window) : i]
        if len(history) < max(3, window // 3) or count < min_actions:
            continue
        mean = sum(history) / len(history)
        var = sum((x - mean) ** 2 for x in history) / len(history)
        std = math.sqrt(var)
        # An all-quiet history has std 0; any burst out of silence with
        # >= min_actions actions is a storm by construction.
        z = (count - mean) / std if std > 0 else math.inf
        if z >= z_threshold:
            flagged.append((first + i, count, z))

    out: list[Anomaly] = []
    run: list[tuple[int, int, float]] = []
    for entry in flagged:
        if run and entry[0] == run[-1][0] + 1:
            run.append(entry)
            continue
        if run:
            out.append(_storm_anomaly(run))
        run = [entry]
    if run:
        out.append(_storm_anomaly(run))
    return out


def _storm_anomaly(run: Sequence[tuple[int, int, float]]) -> Anomaly:
    peak_epoch, peak_count, peak_z = max(run, key=lambda r: (r[1], r[0]))
    start, end = run[0][0], run[-1][0]
    span = f"epoch {start}" if start == end else f"epochs {start}-{end}"
    z_text = "inf" if math.isinf(peak_z) else f"{peak_z:.1f}"
    return Anomaly(
        kind="replication-storm",
        epoch=start,
        severity=float(peak_count),
        description=(
            f"{span}: replication burst peaking at {peak_count} "
            f"actions/epoch (z={z_text})"
        ),
        detail={
            "start": start,
            "end": end,
            "peak_epoch": peak_epoch,
            "peak_actions": peak_count,
            "peak_z": None if math.isinf(peak_z) else peak_z,
        },
    )


#: Event kinds counting as churn for the hotspot detector, with weights:
#: a failure is worth more than a routine replica arrival.
_CHURN_WEIGHTS: dict[str, float] = {
    "server_failure": 3.0,
    "server_recovery": 1.0,
    "server_join": 1.0,
    "partition_restore": 2.0,
    "replicate": 1.0,
    "migrate": 1.0,
    "suicide": 0.5,
}


def detect_churn_hotspots(
    events: Iterable[TraceEvent], *, factor: float = 2.0
) -> list[Anomaly]:
    """Datacenters whose weighted churn exceeds ``mean + factor * std``
    of the per-datacenter distribution (requires ``dc`` tags on events;
    untagged events are ignored)."""
    churn: dict[int, float] = {}
    first_epoch: dict[int, int] = {}
    for event in events:
        weight = _CHURN_WEIGHTS.get(event.kind)
        if weight is None:
            continue
        dc = event.extra.get("dc")
        if not isinstance(dc, (int, float)) or isinstance(dc, bool):
            continue
        dc = int(dc)
        churn[dc] = churn.get(dc, 0.0) + weight
        first_epoch.setdefault(dc, event.epoch)
    if len(churn) < 2:
        return []
    values = list(churn.values())
    mean = sum(values) / len(values)
    std = math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))
    threshold = mean + factor * std
    out: list[Anomaly] = []
    for dc in sorted(churn, key=lambda d: -churn[d]):
        if std <= 0.0 or churn[dc] <= threshold:
            continue
        out.append(
            Anomaly(
                kind="churn-hotspot",
                epoch=first_epoch[dc],
                severity=churn[dc] / mean if mean else churn[dc],
                description=(
                    f"datacenter {dc} absorbed {churn[dc]:.0f} weighted churn "
                    f"({churn[dc] / mean:.1f}x the {mean:.0f} fleet mean)"
                ),
                detail={
                    "dc": dc,
                    "churn": churn[dc],
                    "fleet_mean": mean,
                    "threshold": threshold,
                },
            )
        )
    return out


def detect_anomalies(
    events: Iterable[TraceEvent],
    *,
    pingpong_k: int = 10,
    storm_window: int = 25,
    storm_z: float = 3.0,
    storm_min_actions: int = 5,
    hotspot_factor: float = 2.0,
) -> list[Anomaly]:
    """All three detectors over one event stream, in epoch order."""
    stream = list(events)
    found = [
        *detect_pingpong(stream, k=pingpong_k),
        *detect_replication_storms(
            stream,
            window=storm_window,
            z_threshold=storm_z,
            min_actions=storm_min_actions,
        ),
        *detect_churn_hotspots(stream, factor=hotspot_factor),
    ]
    found.sort(key=lambda a: (a.epoch, a.kind))
    return found
