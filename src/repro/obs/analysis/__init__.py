"""Post-hoc trace analytics over the observability layer's artifacts.

Four pieces, surfaced through ``repro analyze TRACE.jsonl`` and the
``--analyze`` flag of ``run`` / ``compare``:

* :mod:`~repro.obs.analysis.lineage` — per-partition replica lifecycles
  (create → migrations → failure/suicide) rebuilt from the event
  stream, with lifetime / migration-count / inter-dc-hop distributions;
* :mod:`~repro.obs.analysis.rootcause` — every SLA violation walked
  backwards within an epoch window and attributed to its nearest
  correlated cause with a confidence score;
* :mod:`~repro.obs.analysis.anomalies` — migration ping-pong,
  replication storms (rolling z-score) and per-datacenter churn
  hotspots;
* :mod:`~repro.obs.analysis.exporters` — Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``) and Prometheus text exposition.

Everything operates on plain :class:`~repro.obs.trace.TraceEvent`
streams: a file written by ``--trace-out``, a ``RingBufferTracer``'s
buffer, or any list built in tests.
"""

from .anomalies import (
    Anomaly,
    detect_anomalies,
    detect_churn_hotspots,
    detect_pingpong,
    detect_replication_storms,
)
from .exporters import (
    chrome_trace_from_events,
    chrome_trace_from_profiler,
    registry_from_events,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
)
from .lineage import Lineage, ReplicaLifecycle, ReplicaStay, build_lineage, distribution
from .pipeline import (
    AnalysisOptions,
    PolicyAnalysis,
    TraceAnalysis,
    analyze_events,
    analyze_trace,
    render_markdown,
    render_text,
)
from .rootcause import (
    Attribution,
    CauseSummary,
    attribute_violations,
    top_causes,
)

__all__ = [
    "AnalysisOptions",
    "Anomaly",
    "Attribution",
    "CauseSummary",
    "Lineage",
    "PolicyAnalysis",
    "ReplicaLifecycle",
    "ReplicaStay",
    "TraceAnalysis",
    "analyze_events",
    "analyze_trace",
    "attribute_violations",
    "build_lineage",
    "chrome_trace_from_events",
    "chrome_trace_from_profiler",
    "detect_anomalies",
    "detect_churn_hotspots",
    "detect_pingpong",
    "detect_replication_storms",
    "distribution",
    "registry_from_events",
    "render_markdown",
    "render_text",
    "to_chrome_trace",
    "to_prometheus",
    "top_causes",
    "write_chrome_trace",
]
