"""The analysis pipeline: events in, structured findings + reports out.

:func:`analyze_trace` reads a JSONL trace (tolerating truncation) and
:func:`analyze_events` runs the full stack — lineage reconstruction,
root-cause attribution, anomaly detection — once per policy found in
the stream (a ``compare`` trace interleaves all four algorithms; each
is analysed against its own events).  The result renders as a CLI text
report, a markdown section for EXPERIMENTS.md, or plain JSON.
"""

from __future__ import annotations

import pathlib
import warnings
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..trace import TraceEvent, TraceReadWarning, read_jsonl
from .anomalies import Anomaly, detect_anomalies
from .lineage import Lineage, build_lineage
from .rootcause import Attribution, CauseSummary, attribute_violations, top_causes

__all__ = [
    "AnalysisOptions",
    "PolicyAnalysis",
    "TraceAnalysis",
    "analyze_events",
    "analyze_trace",
    "render_text",
    "render_markdown",
]


@dataclass(frozen=True)
class AnalysisOptions:
    """Tunables of the three analysis stages (CLI flags map here)."""

    window: int = 20  # root-cause look-back, epochs
    pingpong_k: int = 10
    storm_window: int = 25
    storm_z: float = 3.0
    storm_min_actions: int = 5
    hotspot_factor: float = 2.0


@dataclass
class PolicyAnalysis:
    """Everything derived from one policy's slice of the stream."""

    policy: str
    events: int
    first_epoch: int
    last_epoch: int
    lineage: Lineage
    attributions: list[Attribution]
    causes: list[CauseSummary]
    anomalies: list[Anomaly]

    def to_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "events": self.events,
            "epochs": [self.first_epoch, self.last_epoch],
            "lineage": self.lineage.summary(),
            "sla_violations": len(self.attributions),
            "top_causes": [
                {
                    "cause": row.cause,
                    "violations": row.violations,
                    "misses": row.misses,
                    "mean_confidence": row.mean_confidence,
                    "median_lag": row.median_lag,
                }
                for row in self.causes
            ],
            "anomalies": [
                {
                    "kind": anomaly.kind,
                    "epoch": anomaly.epoch,
                    "severity": anomaly.severity,
                    "description": anomaly.description,
                    **anomaly.detail,
                }
                for anomaly in self.anomalies
            ],
        }


@dataclass
class TraceAnalysis:
    """The whole trace's analysis, one section per policy."""

    source: str
    total_events: int
    skipped_lines: int = 0
    policies: dict[str, PolicyAnalysis] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "total_events": self.total_events,
            "skipped_lines": self.skipped_lines,
            "policies": {name: pa.to_dict() for name, pa in self.policies.items()},
        }


def analyze_events(
    events: Iterable[TraceEvent],
    *,
    options: AnalysisOptions | None = None,
    source: str = "<memory>",
) -> TraceAnalysis:
    """Run lineage + root-cause + anomaly analysis per policy."""
    opts = options or AnalysisOptions()
    per_policy: dict[str, list[TraceEvent]] = {}
    total = 0
    for event in events:
        total += 1
        per_policy.setdefault(event.policy or "unknown", []).append(event)
    analysis = TraceAnalysis(source=source, total_events=total)
    for policy, stream in per_policy.items():
        attributions = attribute_violations(stream, window=opts.window)
        analysis.policies[policy] = PolicyAnalysis(
            policy=policy,
            events=len(stream),
            first_epoch=min(e.epoch for e in stream),
            last_epoch=max(e.epoch for e in stream),
            lineage=build_lineage(stream),
            attributions=attributions,
            causes=top_causes(attributions),
            anomalies=detect_anomalies(
                stream,
                pingpong_k=opts.pingpong_k,
                storm_window=opts.storm_window,
                storm_z=opts.storm_z,
                storm_min_actions=opts.storm_min_actions,
                hotspot_factor=opts.hotspot_factor,
            ),
        )
    return analysis


def analyze_trace(
    path: str | pathlib.Path, *, options: AnalysisOptions | None = None
) -> TraceAnalysis:
    """Read a JSONL trace file and analyse it.

    Malformed lines (an interrupted writer) are skipped and counted in
    ``skipped_lines`` rather than aborting the analysis — a partial
    trace still yields a partial answer.
    """
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", TraceReadWarning)
        events = list(read_jsonl(path))
    skipped = sum(1 for w in caught if issubclass(w.category, TraceReadWarning))
    analysis = analyze_events(events, options=options, source=str(path))
    analysis.skipped_lines = skipped
    return analysis


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_dist(dist: dict[str, float], unit: str = "") -> str:
    if not dist["count"]:
        return "(no samples)"
    suffix = f" {unit}" if unit else ""
    return (
        f"n={dist['count']}  mean={dist['mean']:.1f}  p50={dist['p50']:.0f}  "
        f"p95={dist['p95']:.0f}  max={dist['max']:.0f}{suffix}"
    )


def _kind_counts(counts: dict[str, int]) -> str:
    return ", ".join(f"{kind} {count}" for kind, count in counts.items()) or "none"


def render_text(analysis: TraceAnalysis) -> str:
    """The ``repro analyze`` terminal report."""
    lines = [
        f"trace: {analysis.source} — {analysis.total_events} events, "
        f"{len(analysis.policies)} polic{'y' if len(analysis.policies) == 1 else 'ies'}"
    ]
    if analysis.skipped_lines:
        lines.append(
            f"warning: skipped {analysis.skipped_lines} malformed line(s) "
            "(truncated trace?) — results cover the readable prefix"
        )
    for policy in sorted(analysis.policies):
        pa = analysis.policies[policy]
        summary = pa.lineage.summary()
        lines += [
            "",
            f"[{policy}] epochs {pa.first_epoch}-{pa.last_epoch}, {pa.events} events",
            "  replica lineage:",
            f"    lifecycles {summary['lifecycles']} "
            f"(alive {summary['alive']}, closed {summary['closed']}); "
            f"births: {_kind_counts(summary['births_by_kind'])}; "  # type: ignore[arg-type]
            f"deaths: {_kind_counts(summary['deaths_by_kind'])}",  # type: ignore[arg-type]
            f"    lifetime epochs:     {_fmt_dist(summary['lifetime_epochs'])}",  # type: ignore[arg-type]
            f"    migrations/life:     {_fmt_dist(summary['migrations_per_lifecycle'])}",  # type: ignore[arg-type]
            f"    inter-dc hops (of {summary['migrated_lifecycles']} migrated): "
            f"{_fmt_dist(summary['dc_hops_per_migrated_lifecycle'])}",  # type: ignore[arg-type]
        ]
        for warning in summary["warnings"]:  # type: ignore[union-attr]
            lines.append(f"    warning: {warning}")
        lines.append(f"  root causes ({len(pa.attributions)} SLA-violation epochs):")
        if pa.causes:
            lines.append(
                f"    {'cause':<24} {'violations':>10} {'misses':>8} "
                f"{'confidence':>10} {'median lag':>10}"
            )
            for row in pa.causes:
                lag = f"{row.median_lag:.0f}ep" if row.median_lag is not None else "-"
                lines.append(
                    f"    {row.cause:<24} {row.violations:>10d} {row.misses:>8.0f} "
                    f"{row.mean_confidence:>10.2f} {lag:>10}"
                )
        else:
            lines.append("    (no SLA violations traced)")
        lines.append(f"  anomalies ({len(pa.anomalies)}):")
        for anomaly in pa.anomalies:
            lines.append(f"    [{anomaly.kind}] {anomaly.description}")
        if not pa.anomalies:
            lines.append("    (none detected)")
    return "\n".join(lines)


def render_markdown(analysis: TraceAnalysis, *, heading: str = "### Trace analysis") -> str:
    """Markdown section for experiment reports / EXPERIMENTS.md."""
    lines = [heading, ""]
    lines.append(
        f"`{analysis.source}` — {analysis.total_events} events"
        + (
            f", **{analysis.skipped_lines} malformed line(s) skipped**"
            if analysis.skipped_lines
            else ""
        )
    )
    lines.append("")
    for policy in sorted(analysis.policies):
        pa = analysis.policies[policy]
        summary = pa.lineage.summary()
        lifetime = summary["lifetime_epochs"]
        migrations = summary["migrations_per_lifecycle"]
        lines += [
            f"**{policy}** (epochs {pa.first_epoch}-{pa.last_epoch})",
            "",
            "| lineage | value |",
            "|---|---|",
            f"| lifecycles (alive / closed) | {summary['lifecycles']} "
            f"({summary['alive']} / {summary['closed']}) |",
            f"| lifetime epochs (mean / p50 / p95) | {lifetime['mean']:.1f} / "  # type: ignore[index]
            f"{lifetime['p50']:.0f} / {lifetime['p95']:.0f} |",  # type: ignore[index]
            f"| migrations per lifecycle (mean / max) | {migrations['mean']:.2f} / "  # type: ignore[index]
            f"{migrations['max']:.0f} |",  # type: ignore[index]
            "",
        ]
        if pa.causes:
            lines += [
                "| top cause | violations | misses | confidence | median lag |",
                "|---|---|---|---|---|",
            ]
            for row in pa.causes:
                lag = f"{row.median_lag:.0f} ep" if row.median_lag is not None else "-"
                lines.append(
                    f"| {row.cause} | {row.violations} | {row.misses:.0f} "
                    f"| {row.mean_confidence:.2f} | {lag} |"
                )
            lines.append("")
        else:
            lines += ["(no SLA violations traced)", ""]
        if pa.anomalies:
            lines += ["Anomalies:", ""]
            lines += [
                f"- **{anomaly.kind}** — {anomaly.description}"
                for anomaly in pa.anomalies
            ]
            lines.append("")
    return "\n".join(lines)
